"""Self-contained HTML rendering of attribution + forensics documents.

``repro analyze`` feeds this module a bench snapshot, a serve snapshot,
or a bare attribution report and gets back one HTML file with no
external assets — inline CSS only, no JavaScript — so the artifact can
be archived from CI and opened anywhere:

- a **frame-time waterfall**: one stacked horizontal bar per frame,
  scaled to the slowest frame, decomposed into the exact attribution
  components plus the untraced lookup and render shares;
- **attribution stacked bars** summarizing where each run's total time
  went, with the per-component table next to it;
- the **top-10 premature evictions** table from the eviction lineage
  (who evicted the block, how soon it was wanted back);
- the **regret vs Belady** table (actual fast-level misses minus the
  offline MIN bound, negative when a warm preload beats cold Belady).

Rendering is deterministic for a given document: components sort by
name, runs keep snapshot order, and nothing samples a clock.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["render_report", "write_report"]

# Fixed palette: named components first, then positional fallbacks for
# per-level channels (miss_transfer:ssd, ...), keyed by first-seen order.
_COMPONENT_COLORS = {
    "hit_service": "#4caf50",
    "fault_penalty": "#b71c1c",
    "retry_backoff": "#8e24aa",
    "lookup": "#9e9e9e",
    "render": "#26a69a",
}
_MISS_SHADES = ("#e65100", "#ef6c00", "#f57c00", "#fb8c00", "#ffa726")
_PREFETCH_SHADES = ("#1565c0", "#1e88e5", "#42a5f5", "#64b5f6", "#90caf9")


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    return f"{float(value):.6g}"


def _color_for(component: str, seen: Dict[str, str]) -> str:
    color = _COMPONENT_COLORS.get(component)
    if color is not None:
        return color
    cached = seen.get(component)
    if cached is not None:
        return cached
    if component.startswith("prefetch_transfer:"):
        shades = _PREFETCH_SHADES
        n = sum(1 for k in seen if k.startswith("prefetch_transfer:"))
    else:
        shades = _MISS_SHADES
        n = sum(1 for k in seen if not k.startswith("prefetch_transfer:"))
    color = shades[n % len(shades)]
    seen[component] = color
    return color


def _badge(label: str, ok: Optional[bool]) -> str:
    cls = "ok" if ok else ("warn" if ok is None else "bad")
    text = {True: "yes", False: "NO", None: "n/a"}[ok]
    return f'<span class="badge {cls}">{_esc(label)}: {text}</span>'


def _stacked_bar(
    parts: List[Tuple[str, float, str]], width_frac: float = 1.0
) -> str:
    """One horizontal stacked bar; parts are (label, seconds, color)."""
    total = sum(p[1] for p in parts)
    if total <= 0:
        return '<div class="bar"></div>'
    spans = []
    for label, seconds, color in parts:
        if seconds <= 0:
            continue
        pct = 100.0 * width_frac * seconds / total
        spans.append(
            f'<span class="seg" style="width:{pct:.3f}%;background:{color}" '
            f'title="{_esc(label)}: {_fmt(seconds)}s"></span>'
        )
    return f'<div class="bar">{"".join(spans)}</div>'


def _frame_parts(frame: Mapping, palette: Dict[str, str]) -> List[Tuple[str, float, str]]:
    parts: List[Tuple[str, float, str]] = []
    for name in sorted(frame.get("components", {})):
        parts.append(
            (name, float(frame["components"][name]), _color_for(name, palette))
        )
    lookup = float(frame.get("lookup_time_s", 0.0))
    if lookup:
        parts.append(("lookup", lookup, _COMPONENT_COLORS["lookup"]))
    render = float(frame.get("render_time_s", 0.0))
    if render:
        parts.append(("render", render, _COMPONENT_COLORS["render"]))
    return parts


def _waterfall(frames: List[Mapping], palette: Dict[str, str], cap: int = 240) -> str:
    """The per-frame waterfall table (stacked bar per step)."""
    if not frames:
        return "<p>No per-frame rows in this document.</p>"
    shown = frames[:cap]
    peak = max(float(f.get("frame_time_s", 0.0)) for f in shown) or 1.0
    rows = []
    for f in shown:
        ft = float(f.get("frame_time_s", 0.0))
        flags = []
        if f.get("n_re_miss"):
            flags.append(f"re-miss ×{f['n_re_miss']}")
        if f.get("reconciled") is False:
            flags.append("NOT RECONCILED")
        if not f.get("exact", True):
            flags.append("inexact")
        rows.append(
            "<tr>"
            f"<td class='num'>{_esc(f.get('step'))}</td>"
            f"<td class='barcell'>{_stacked_bar(_frame_parts(f, palette), ft / peak)}</td>"
            f"<td class='num'>{_fmt(ft)}</td>"
            f"<td class='flags'>{_esc(', '.join(flags))}</td>"
            "</tr>"
        )
    note = (
        f"<p class='note'>showing first {cap} of {len(frames)} frames</p>"
        if len(frames) > cap
        else ""
    )
    return (
        "<table class='waterfall'><thead><tr>"
        "<th>step</th><th>frame time decomposition</th><th>s</th><th></th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>" + note
    )


def _components_table(doc: Mapping, palette: Dict[str, str]) -> str:
    """Totals stacked bar + component table for one attribution doc."""
    totals = doc.get("totals", {})
    parts: List[Tuple[str, float, str]] = []
    rows = []
    for name in sorted(doc.get("demand_components", {})):
        v = float(doc["demand_components"][name])
        color = _color_for(name, palette)
        parts.append((name, v, color))
        rows.append((name, v, color, "demand"))
    lookup = float(totals.get("lookup_time_s", 0.0))
    if lookup:
        parts.append(("lookup", lookup, _COMPONENT_COLORS["lookup"]))
        rows.append(("lookup", lookup, _COMPONENT_COLORS["lookup"], "ledger"))
    render = float(totals.get("render_time_s", 0.0))
    if render:
        parts.append(("render", render, _COMPONENT_COLORS["render"]))
        rows.append(("render", render, _COMPONENT_COLORS["render"], "ledger"))
    for name in sorted(doc.get("prefetch_components", {})):
        v = float(doc["prefetch_components"][name])
        color = _color_for(name, palette)
        rows.append((name, v, color, "overlapped"))
    table = "".join(
        "<tr>"
        f"<td><span class='swatch' style='background:{color}'></span>{_esc(name)}</td>"
        f"<td class='num'>{_fmt(v)}</td><td>{_esc(channel)}</td></tr>"
        for name, v, color, channel in rows
    )
    extra = (
        f"<p class='note'>overlap saving {_fmt(totals.get('overlap_saving_s', 0.0))}s · "
        f"re-misses {doc.get('n_re_miss', 0)} · degraded {doc.get('n_degraded', 0)} "
        f"(+{_fmt(doc.get('degraded_extra_s', 0.0))}s outside ledger)</p>"
    )
    return (
        f"<h4>Total {_fmt(totals.get('frame_time_s', 0.0))}s over "
        f"{doc.get('n_frames', len(doc.get('frames', [])))} frames</h4>"
        + _stacked_bar(parts)
        + "<table><thead><tr><th>component</th><th>seconds</th><th>channel</th></tr>"
        "</thead><tbody>" + table + "</tbody></table>" + extra
    )


def _forensics_table(forensics: Mapping) -> str:
    rows = forensics.get("top_premature", [])
    header = (
        f"<p>{forensics.get('n_evictions', 0)} evictions · "
        f"{forensics.get('n_re_misses', 0)} re-misses · "
        f"{forensics.get('n_premature', 0)} premature "
        f"(window {forensics.get('premature_window', '?')} steps)</p>"
    )
    if not rows:
        return header + "<p class='note'>no premature evictions recorded</p>"
    body = "".join(
        "<tr>"
        f"<td class='num'>{_esc(r['block'])}</td>"
        f"<td class='num'>{_esc(r['count'])}</td>"
        f"<td class='num'>{_esc(r['min_age_steps'])}</td>"
        f"<td class='num'>{_esc(r['last_step'])}</td>"
        f"<td>{_esc(r['evicted_from'])}</td>"
        f"<td>{_esc(r['policy'] + (':' + r['tenant'] if r.get('tenant') else ''))}</td>"
        f"<td class='num'>{_esc(r['rank'])}</td>"
        "</tr>"
        for r in rows
    )
    return (
        header
        + "<table><thead><tr><th>block</th><th>premature re-misses</th>"
        "<th>min age (steps)</th><th>last step</th><th>evicted from</th>"
        "<th>by</th><th>queue rank</th></tr></thead><tbody>"
        + body
        + "</tbody></table>"
    )


def _regret_table(rows: List[Tuple[str, Mapping]]) -> str:
    if not rows:
        return ""
    body = "".join(
        "<tr>"
        f"<td>{_esc(label)}</td><td>{_esc(r.get('policy'))}</td>"
        f"<td class='num'>{_esc(r.get('fast_capacity'))}</td>"
        f"<td class='num'>{_esc(r.get('actual_fast_misses'))}</td>"
        f"<td class='num'>{_esc(r.get('belady_misses'))}</td>"
        f"<td class='num'>{_esc(r.get('regret'))}</td>"
        "</tr>"
        for label, r in rows
    )
    return (
        "<h2>Regret vs Belady</h2>"
        "<p class='note'>actual fast-level misses minus the offline MIN bound "
        "over the same demand keys; negative when a warm preload beats cold "
        "Belady.</p>"
        "<table><thead><tr><th>run</th><th>policy</th><th>fast capacity</th>"
        "<th>actual misses</th><th>Belady misses</th><th>regret</th></tr>"
        "</thead><tbody>" + body + "</tbody></table>"
    )


def _attribution_section(title: str, doc: Mapping) -> str:
    palette: Dict[str, str] = {}
    badges = " ".join(
        (
            _badge("reconciled", doc.get("reconciled")),
            _badge("exact", bool(doc.get("exact", True))),
            _badge("complete", not doc.get("incomplete", False)),
        )
    )
    parts = [f"<details open><summary><h3>{_esc(title)}</h3> {badges}</summary>"]
    if doc.get("incomplete"):
        parts.append(
            "<p class='warnline'>tracer dropped events inside the attributed "
            "window — component values are lower bounds.</p>"
        )
    parts.append(_components_table(doc, palette))
    frames = doc.get("frames")
    if frames:
        parts.append("<h4>Frame-time waterfall</h4>")
        parts.append(_waterfall(list(frames), palette))
    forensics = doc.get("forensics")
    if forensics:
        parts.append("<h4>Eviction forensics</h4>")
        parts.append(_forensics_table(forensics))
    parts.append("</details>")
    return "".join(parts)


_STYLE = """
body{font-family:-apple-system,'Segoe UI',Roboto,Helvetica,Arial,sans-serif;
     margin:2em auto;max-width:70em;padding:0 1em;color:#212121}
h1{border-bottom:2px solid #212121;padding-bottom:.2em}
h3{display:inline;font-size:1.1em}
table{border-collapse:collapse;margin:.6em 0;font-size:.92em}
th,td{border:1px solid #bbb;padding:.25em .6em;text-align:left}
th{background:#eee}
td.num{text-align:right;font-variant-numeric:tabular-nums}
td.flags{color:#b71c1c;font-size:.85em}
.bar{display:flex;height:14px;background:#f5f5f5;border:1px solid #ddd;
     min-width:2px}
.seg{display:block;height:100%}
.barcell{min-width:28em;border:none}
.waterfall td{border:none;padding:.1em .5em}
.waterfall th{border:none}
.swatch{display:inline-block;width:.8em;height:.8em;margin-right:.4em;
        border:1px solid #888;vertical-align:baseline}
.badge{padding:.1em .5em;border-radius:.6em;font-size:.8em;color:#fff}
.badge.ok{background:#2e7d32}.badge.bad{background:#b71c1c}
.badge.warn{background:#9e9e9e}
.note{color:#616161;font-size:.85em}
.warnline{color:#b71c1c}
details{margin:1em 0;border:1px solid #ddd;padding:.5em 1em;border-radius:4px}
summary{cursor:pointer}
"""


def render_report(doc: Mapping, title: Optional[str] = None) -> str:
    """Render a bench/serve snapshot or bare attribution doc as HTML.

    Dispatch is structural: a ``"runs"`` key means a bench snapshot, a
    ``"multi_tenant"`` key (without runs) a serve snapshot, anything with
    ``"demand_components"`` a bare :class:`AttributionReport` document.
    """
    sections: List[str] = []
    regret_rows: List[Tuple[str, Mapping]] = []

    def add_attr(label: str, attr: Optional[Mapping]) -> None:
        if not attr:
            return
        sections.append(_attribution_section(label, attr))
        regret = attr.get("regret")
        if regret:
            regret_rows.append((label, regret))

    if "runs" in doc:
        kind = f"bench snapshot {doc.get('label', '')}".strip()
        for run_key in doc["runs"]:
            add_attr(run_key, doc["runs"][run_key].get("attribution"))
        mt = doc.get("multi_tenant") or {}
        for tenant, attr in sorted((mt.get("attribution") or {}).get("tenants", {}).items()):
            add_attr(f"tenant {tenant}", attr)
    elif "multi_tenant" in doc:
        kind = "serve snapshot"
        mt = doc["multi_tenant"]
        for tenant, attr in sorted((mt.get("attribution") or {}).get("tenants", {}).items()):
            add_attr(f"tenant {tenant}", attr)
        if not sections:
            sections.append(
                "<p>This serve snapshot carries no attribution section — "
                "re-run with <code>attribution=True</code>.</p>"
            )
    elif "demand_components" in doc:
        kind = "attribution report"
        add_attr("run", doc)
    else:
        kind = "document"
        sections.append("<p>No attribution data found in this document.</p>")

    page_title = title or f"repro analyze — {kind}"
    body = [f"<h1>{_esc(page_title)}</h1>"]
    body.extend(sections)
    body.append(_regret_table(regret_rows))
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(page_title)}</title><style>{_STYLE}</style></head>"
        f"<body>{''.join(body)}</body></html>\n"
    )


def write_report(doc: Mapping, path, title: Optional[str] = None) -> Path:
    """Write :func:`render_report` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(render_report(doc, title=title), encoding="utf-8")
    return path
