"""Labelled counters, gauges, and fixed-bucket histograms.

The registry mirrors the tracer's two-implementation pattern
(:mod:`repro.trace.tracer`): :class:`MetricsRegistry` records, and the
shared :data:`NULL_REGISTRY` is a do-nothing stand-in whose ``enabled``
flag is ``False`` — instrumented hot paths guard recording with
``if registry.enabled:`` so an unmetered run costs one attribute load and
a branch, and its outputs stay byte-identical to the uninstrumented code.

Design notes:

- Metric instances are interned by ``(kind, name, labels)``: asking for
  the same metric twice returns the same object, so components can bind
  metrics once at setup time and the per-event path is a plain method
  call on a held reference — no dict lookups, no allocation.
- :class:`Histogram` uses fixed upper-bound buckets (Prometheus style)
  plus exact min/max/sum/count.  Quantiles are estimated by linear
  interpolation inside the owning bucket and clamped to the observed
  ``[min, max]``, which makes them (a) bounded by the true extremes and
  (b) monotone in the quantile — properties the test suite pins with
  hypothesis.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "default_latency_buckets",
]


def default_latency_buckets() -> Tuple[float, ...]:
    """1-2.5-5 decade series from 100 ns to 100 s (simulated seconds).

    Spans the hierarchy's device cost range: DRAM reads land in the
    sub-microsecond buckets, SSD in the tens-of-microseconds, HDD seeks
    in the milliseconds, and whole-step aggregates up to seconds.
    """
    bounds: List[float] = []
    for exp in range(-7, 3):
        for mant in (1.0, 2.5, 5.0):
            bounds.append(mant * 10.0**exp)
    return tuple(bounds)


DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = default_latency_buckets()


class Counter:
    """A monotonically increasing count (events, bytes, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease by {amount}")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (occupancy, queue depth, ...).

    Tracks the current value plus the high-water mark, which is what a
    bench snapshot actually wants from a queue-depth or occupancy gauge.
    """

    __slots__ = ("name", "labels", "value", "max_value", "n_sets")

    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0
        self.n_sets = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value
        self.n_sets += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def set_n(self, value: float, n: int) -> None:
        """Collapse ``n`` consecutive sets that end at ``value``.

        The caller guarantees no intermediate value exceeded
        ``max(max_value, value)`` — true for occupancy-style walks, where
        an eviction's dip is always followed by an insert back up.  Then
        value, high-water mark and ``n_sets`` all match ``n`` scalar
        :meth:`set` calls exactly.
        """
        self.value = value
        if value > self.max_value:
            self.max_value = value
        self.n_sets += n

    def as_dict(self) -> Dict[str, object]:
        return {"value": self.value, "max": self.max_value, "n_sets": self.n_sets}


class Histogram:
    """Fixed-bucket histogram with exact extremes and estimated quantiles.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Observing is O(log B)
    (bisect into a precomputed bound list) with zero allocation.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name}: bucket bounds must be strictly ascending")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` observations of the same ``value`` in O(log B).

        Bucket counts, count, min and max — everything quantiles are
        computed from — match ``n`` scalar :meth:`observe` calls exactly;
        only ``sum`` may differ in float association.
        """
        if n <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Bounded by the observed min/max and monotone non-decreasing in
        ``q``; returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Exact endpoints and the degenerate single-point distribution:
        # these also guard the interpolation below against ever leaving
        # [min, max] when all mass sits in the overflow bucket.
        if q == 0.0 or self.min == self.max:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.min if i == 0 else max(self.min, self.bounds[i - 1])
                hi = self.max if i >= len(self.bounds) else min(self.max, self.bounds[i])
                if hi < lo:  # all mass of this bucket sits at one point
                    hi = lo
                frac = (target - cum) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            cum += n
        return self.max

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        d.update(self.percentiles())
        # Sparse bucket encoding: only non-empty buckets, keyed by their
        # upper bound ("+Inf" for the overflow bucket).
        d["buckets"] = {
            ("+Inf" if i >= len(self.bounds) else repr(self.bounds[i])): n
            for i, n in enumerate(self.counts)
            if n
        }
        return d


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Interned store of labelled metrics with a flat JSON snapshot."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    # -- creation / lookup ---------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {format_metric_key(*key)!r} already registered "
                f"as {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def get(self, name: str, **labels: str):
        """The metric registered under ``name``/``labels``, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def metrics(self) -> Iterable[object]:
        return self._metrics.values()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """JSON-ready dump grouped by metric kind, keyed by flat name."""
        out: Dict[str, Dict[str, Dict[str, object]]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (name, labels), metric in sorted(self._metrics.items()):
            out[metric.kind + "s"][format_metric_key(name, labels)] = metric.as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._metrics)} metrics)"


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    name = ""
    labels = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"value": 0}


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    labels = ()
    value = 0.0
    max_value = 0.0
    n_sets = 0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set_n(self, value: float, n: int) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"value": 0.0, "max": 0.0, "n_sets": 0}


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    labels = ()
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, n: int) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def as_dict(self) -> Dict[str, object]:
        return {"count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled registry: every factory returns a shared no-op metric.

    ``enabled`` is ``False`` so instrumented code skips recording
    entirely; binding metrics from it at setup time is free and safe.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def get(self, name: str, **labels: str):
        return None

    def metrics(self) -> Iterable[object]:
        return ()

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullRegistry()"


#: Shared disabled registry; instrumented components default to this.
NULL_REGISTRY = NullRegistry()
