"""Observability: metrics registry, phase profiler, regression bench.

Three layers, mirroring the tracer's opt-in design (every instrumented
component defaults to a shared no-op so unmetered runs stay byte-identical):

- :mod:`repro.obs.metrics` — labelled counters, gauges, and fixed-bucket
  histograms with p50/p95/p99, behind :class:`MetricsRegistry` /
  :data:`NULL_REGISTRY`;
- :mod:`repro.obs.profiler` — nested wall-clock spans next to the
  simulated clock (:class:`PhaseProfiler` / :data:`NULL_PROFILER`), and
  span ids stamped onto trace events;
- :mod:`repro.obs.bench` — the pinned ``repro bench`` suite emitting
  schema-versioned ``BENCH_<label>.json`` snapshots and the threshold
  comparison behind ``repro bench --compare``.  (Imported lazily — see
  the module — to keep this package import-light for the storage layer.)

:mod:`repro.obs.fairness` adds the multi-tenant summaries (Jain fairness
index, per-tenant frame-time tails) the session scheduler reports.

Like ``bench``, the forensics/report layer stays lazy (import the
modules directly, they pull in the runtime engine):

- :mod:`repro.obs.attribution` — exact per-frame latency attribution
  reconciled bit-for-bit against the engine's time ledger;
- :mod:`repro.obs.report` — self-contained HTML rendering for
  ``repro analyze``;
- :mod:`repro.obs.prometheus` — text-exposition dump of a registry
  snapshot (``repro analyze --prom``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    DEFAULT_LATENCY_BUCKETS,
    default_latency_buckets,
)
from repro.obs.fairness import TenantFrameStats, jain_index, percentile_summary
from repro.obs.profiler import NullProfiler, NULL_PROFILER, PhaseProfiler

__all__ = [
    "TenantFrameStats",
    "jain_index",
    "percentile_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "default_latency_buckets",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
]
