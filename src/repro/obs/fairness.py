"""Fairness and tail-latency summaries for multi-tenant runs.

A shared :class:`~repro.storage.hierarchy.MemoryHierarchy` serves many
concurrent viewer sessions; what matters at that scale is not one
stream's mean latency but the *distribution across tenants* — does a hot
session starve its neighbours?  Two standard summaries cover this:

- **Jain's fairness index** on a per-tenant quality signal (hit rate,
  throughput): ``J = (Σx)² / (n·Σx²)``, which is 1 when every tenant gets
  the same share and ``1/n`` when one tenant gets everything.
- **Tail percentiles** (p50/p95/p99) of per-tenant frame times, the
  interactive-visualization SLO currency.

Both are pure functions of simulated quantities, so their values are
machine-independent and safe to gate CI on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["jain_index", "percentile_summary", "TenantFrameStats"]


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index of an allocation: ``(Σx)² / (n·Σx²)``.

    1.0 means perfectly even; ``1/n`` means one tenant holds everything.
    Empty input and the all-zero allocation both report 1.0 (nothing is
    unfairly shared).  Negative values are rejected — the index is only
    meaningful for non-negative allocations.
    """
    xs = [float(v) for v in values]
    if any(x < 0 for x in xs):
        raise ValueError("jain_index requires non-negative values")
    if not xs:
        return 1.0
    s2 = sum(x * x for x in xs)
    if s2 == 0.0:
        return 1.0
    s = sum(xs)
    return (s * s) / (len(xs) * s2)


def percentile_summary(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 plus mean/max/count of a sample list.

    Quantiles are computed from the raw samples (linear interpolation),
    not histogram buckets, so two runs with identical frame times report
    bit-identical summaries — the property the serve-smoke CI gate relies
    on.  Empty input returns all-zero.
    """
    if len(samples) == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0, "count": 0}
    arr = np.asarray(samples, dtype=np.float64)
    q50, q95, q99 = np.quantile(arr, [0.50, 0.95, 0.99])
    return {
        "p50": float(q50),
        "p95": float(q95),
        "p99": float(q99),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "count": int(arr.size),
    }


class TenantFrameStats:
    """Accumulates per-tenant frame times and hit counts for one run.

    The session scheduler feeds one ``observe`` per completed frame; the
    report side produces per-tenant tail summaries, the pooled summary
    across every frame of every tenant, and the Jain index over per-tenant
    hit rates.  When a registry is supplied, each observation also lands
    in a ``tenant_frame_time_seconds{tenant=...}`` histogram and the final
    fairness value in a ``tenant_fairness_jain`` gauge, so the standard
    metrics surface sees the same numbers.
    """

    def __init__(self, registry=None) -> None:
        self._frames: Dict[str, list] = {}
        self._hits: Dict[str, int] = {}
        self._lookups: Dict[str, int] = {}
        self._registry = registry
        self._hists: Dict[str, object] = {}

    def observe(self, tenant: str, frame_time_s: float, n_visible: int, n_misses: int) -> None:
        """Record one finished frame for ``tenant``."""
        self._frames.setdefault(tenant, []).append(float(frame_time_s))
        self._hits[tenant] = self._hits.get(tenant, 0) + (int(n_visible) - int(n_misses))
        self._lookups[tenant] = self._lookups.get(tenant, 0) + int(n_visible)
        if self._registry is not None and self._registry.enabled:
            hist = self._hists.get(tenant)
            if hist is None:
                hist = self._hists[tenant] = self._registry.histogram(
                    "tenant_frame_time_seconds", tenant=tenant, kind="sim"
                )
            hist.observe(float(frame_time_s))

    @property
    def tenants(self) -> tuple:
        return tuple(self._frames)

    def hit_rates(self) -> Dict[str, float]:
        """Demand hit rate of the fastest level, per tenant."""
        return {
            t: (self._hits[t] / self._lookups[t]) if self._lookups[t] else 0.0
            for t in self._frames
        }

    def fairness(self) -> float:
        """Jain index over per-tenant hit rates (1.0 with no tenants)."""
        value = jain_index(self.hit_rates().values())
        if self._registry is not None and self._registry.enabled:
            self._registry.gauge("tenant_fairness_jain").set(value)
        return value

    def per_tenant(self) -> Dict[str, Dict[str, float]]:
        """Frame-time tail summary per tenant."""
        return {t: percentile_summary(frames) for t, frames in self._frames.items()}

    def pooled(self) -> Dict[str, float]:
        """Frame-time tail summary across every tenant's frames."""
        merged: list = []
        for frames in self._frames.values():
            merged.extend(frames)
        return percentile_summary(merged)

    def as_dict(self) -> Dict[str, object]:
        """JSON-plain report: per-tenant tails, pooled tails, fairness."""
        return {
            "per_tenant": self.per_tenant(),
            "pooled": self.pooled(),
            "hit_rates": self.hit_rates(),
            "fairness_jain": self.fairness(),
        }
