"""Per-frame latency attribution over the trace event stream.

Answers "where did this frame's time go?" by decomposing each step's
simulated frame time into named components — fastest-level hit service,
per-level miss transfer, prefetch transfer, failed-attempt penalty,
retry backoff — reconstructed *exactly* from the trace events, and
reconciled bit-for-bit against the engine's per-step time ledger.

Two invariants make the decomposition trustworthy rather than merely
plausible:

**Invariant A (fold fidelity).**  The engine accumulates each channel's
time with a specific float fold: per fetch its attempts/backoffs/serve
are summed in emission order (``total_t += ...`` in
:meth:`~repro.storage.hierarchy.MemoryHierarchy._fetch_one_resilient`),
and per step the per-fetch totals are left-folded in id order
(``io += r.time_s`` / ``np.add.accumulate``).  Float addition is not
associative, so the reconstruction repeats the *same two-level fold*:
an inner fold over each fetch group's events, an outer fold over the
group totals.  ``reconciled`` is then a float ``==`` against the
ledger, not a tolerance check.

**Invariant B (exact partition).**  Component shares are telescoping
marginals in :class:`fractions.Fraction` (binary floats are dyadic
rationals, so every marginal is exact): each event's share is
``F(inner_after) − F(inner_before)``, each group's share of the channel
total is ``F(outer_after) − F(outer_before)``, and the rounding *dust*
between a group's outer marginal and the sum of its inner marginals is
assigned to the group's dominant component (the closing movement's,
else the fault penalty).  The components therefore sum to the channel
total **exactly** — asserted by the test suite, no epsilon anywhere.

A fetch *group* is the maximal event run charged to one block fetch:
zero or more ``fault``/``retry`` events followed by the closing
``hit``/``fetch``/``prefetch`` movement, or — when every source failed
and the block was dropped — fault/retry events with no closing
movement.  Fault-free fetches are single-event groups, so the two-level
fold degenerates to the flat left fold and produces no dust.
``degraded`` and ``re_miss`` events sit outside every time ledger and
are only counted; ``lookup_time_s`` is not traced and is taken from the
ledger row.

Orphan groups (dropped blocks) are assigned a channel by the profiler
span stamped on their events (``"prefetch"`` substring checked before
``"fetch"`` — the former contains the latter), falling back to the
previous group's channel; a fallback marks the frame ``exact=False``.
Aggregated traces (``count > 1``) also clear ``exact`` — the per-block
fold cannot be replayed from a roll-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.engine import Collector
from repro.trace.events import MOVEMENT_KINDS, TraceEvent

__all__ = [
    "ATTRIBUTION_SCHEMA_VERSION",
    "FrameAttribution",
    "AttributionReport",
    "AttributionCollector",
    "attribute_run",
    "attribute_frames",
]

#: Version stamp of the ``attribution`` snapshot sections (bench/serve).
ATTRIBUTION_SCHEMA_VERSION = 1

_MOVEMENT = frozenset(MOVEMENT_KINDS)
_ZERO = Fraction(0)


def _component_of(event: TraceEvent) -> str:
    if event.kind == "hit":
        return "hit_service"
    if event.kind == "fetch":
        return f"miss_transfer:{event.level}"
    if event.kind == "prefetch":
        return f"prefetch_transfer:{event.level}"
    if event.kind == "xfer":
        return f"peer_transfer:{event.level}"
    if event.kind == "fault":
        return "fault_penalty"
    return "retry_backoff"  # retry


def _span_channel(span: str) -> Optional[str]:
    """Channel hinted by a profiler span path, if any.

    ``"prefetch"`` must be checked before ``"fetch"`` — it contains it.
    """
    if "prefetch" in span or "preload" in span:
        return "prefetch"
    if "fetch" in span:
        return "demand"
    return None


@dataclass
class FrameAttribution:
    """One step's frame time, decomposed into exact components.

    ``components`` partitions ``io_time_s`` (the demand channel) and
    ``prefetch_components`` partitions ``prefetch_time_s``; each sums to
    its channel total exactly (invariant B).  ``lookup_time_s`` comes
    from the ledger (prediction cost is not traced).  ``reconciled`` is
    ``True`` when all three reconstructed channel folds equal the ledger
    row bit-for-bit, ``False`` when any differs, and ``None`` when no
    ledger row was available or the frame is not ``exact``.
    """

    step: int
    io_time_s: float
    lookup_time_s: float
    prefetch_time_s: float
    render_time_s: float
    #: Exact rational shares (``fractions.Fraction``) in memory — their
    #: sum equals ``Fraction(io_time_s)`` with NO rounding; ``as_dict``
    #: rounds each to float for JSON (display only — the float sums may
    #: differ from the total by sub-ulp dust).
    components: Dict[str, Fraction] = field(default_factory=dict)
    prefetch_components: Dict[str, Fraction] = field(default_factory=dict)
    overlap_saving_s: float = 0.0
    n_re_miss: int = 0
    n_degraded: int = 0
    degraded_extra_s: float = 0.0
    reconciled: Optional[bool] = None
    exact: bool = True

    @property
    def frame_time_s(self) -> float:
        """The serial frame clock: ``io + lookup + render``."""
        return self.io_time_s + self.lookup_time_s + self.render_time_s

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "io_time_s": self.io_time_s,
            "lookup_time_s": self.lookup_time_s,
            "prefetch_time_s": self.prefetch_time_s,
            "render_time_s": self.render_time_s,
            "frame_time_s": self.frame_time_s,
            "components": {k: float(v) for k, v in self.components.items()},
            "prefetch_components": {
                k: float(v) for k, v in self.prefetch_components.items()
            },
            "overlap_saving_s": self.overlap_saving_s,
            "n_re_miss": self.n_re_miss,
            "n_degraded": self.n_degraded,
            "degraded_extra_s": self.degraded_extra_s,
            "reconciled": self.reconciled,
            "exact": self.exact,
        }


@dataclass
class AttributionReport:
    """A run's attribution: per-frame rows plus exact component totals.

    ``reconciled`` is the conjunction over frames that could be checked
    (``None`` when none could); ``incomplete`` means the tracer ring
    dropped events inside the attributed window, so reconstructed folds
    may be missing contributions — treat component values as lower
    bounds, not ground truth.
    """

    frames: List[FrameAttribution] = field(default_factory=list)
    #: Exact ``Fraction`` shares, like :attr:`FrameAttribution.components`.
    demand_components: Dict[str, Fraction] = field(default_factory=dict)
    prefetch_components: Dict[str, Fraction] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)
    n_re_miss: int = 0
    n_degraded: int = 0
    degraded_extra_s: float = 0.0
    reconciled: Optional[bool] = None
    exact: bool = True
    incomplete: bool = False
    drop_stats: Optional[Dict[str, int]] = None

    def as_dict(self, include_frames: bool = True) -> dict:
        doc = {
            "schema_version": ATTRIBUTION_SCHEMA_VERSION,
            "n_frames": len(self.frames),
            "demand_components": {
                k: float(v) for k, v in self.demand_components.items()
            },
            "prefetch_components": {
                k: float(v) for k, v in self.prefetch_components.items()
            },
            "totals": dict(self.totals),
            "n_re_miss": self.n_re_miss,
            "n_degraded": self.n_degraded,
            "degraded_extra_s": self.degraded_extra_s,
            "reconciled": self.reconciled,
            "exact": self.exact,
            "incomplete": self.incomplete,
        }
        if self.drop_stats is not None:
            doc["drop_stats"] = dict(self.drop_stats)
        if include_frames:
            doc["frames"] = [f.as_dict() for f in self.frames]
        return doc


# -- group parsing -------------------------------------------------------------


def _parse_groups(
    events: Sequence[TraceEvent],
) -> Tuple[List[Tuple[Optional[str], List[TraceEvent]]], List[TraceEvent], int, int, float]:
    """Split one step's events into fetch groups.

    Returns ``(groups, render_events, n_re_miss, n_degraded,
    degraded_extra_s)`` where each group is ``(channel, events)`` —
    channel ``"demand"``/``"prefetch"`` when a movement closed the
    group, ``None`` for an orphan (dropped block, resolved later).
    ``evict``/``bypass``/``preload`` events carry no charged time and
    are skipped; ``degraded``/``re_miss`` markers are counted only.
    """
    groups: List[Tuple[Optional[str], List[TraceEvent]]] = []
    render_events: List[TraceEvent] = []
    pending: List[TraceEvent] = []
    pending_key: Optional[int] = None
    n_re_miss = 0
    n_degraded = 0
    degraded_extra = 0.0
    for e in events:
        kind = e.kind
        if kind in ("fault", "retry"):
            if pending and pending_key != e.key:
                groups.append((None, pending))  # previous block was dropped
                pending = []
            pending_key = e.key
            pending.append(e)
        elif kind in _MOVEMENT:
            channel = "prefetch" if kind == "prefetch" else "demand"
            if pending and pending_key == e.key:
                pending.append(e)
                groups.append((channel, pending))
            else:
                if pending:
                    groups.append((None, pending))
                groups.append((channel, [e]))
            pending = []
            pending_key = None
        elif kind == "xfer":
            # A peer transfer is charged right after the movement it
            # ships, in the same per-block fold — append it to the group
            # that movement just closed so the inner fold replays
            # ``node_time + link_time`` in emission order.
            if (
                groups
                and groups[-1][0] is not None
                and groups[-1][1][-1].kind in _MOVEMENT
                and groups[-1][1][-1].key == e.key
            ):
                groups[-1][1].append(e)
            else:  # defensive: an xfer with no matching movement is an orphan
                groups.append((None, [e]))
        elif kind == "render":
            render_events.append(e)
        elif kind == "re_miss":
            n_re_miss += e.count
        elif kind == "degraded":
            n_degraded += e.count
            degraded_extra += e.time_s
        # evict / bypass / preload: no charged time, nothing to fold.
    if pending:
        groups.append((None, pending))
    return groups, render_events, n_re_miss, n_degraded, degraded_extra


def _resolve_orphans(
    groups: List[Tuple[Optional[str], List[TraceEvent]]],
) -> Tuple[List[Tuple[str, List[TraceEvent]]], bool]:
    """Assign a channel to every orphan group; returns (groups, all_hinted).

    Span hint first (exact — the profiler stamped the issuing stage),
    then the previous resolved group's channel, then demand.  Any
    non-span fallback clears the frame's ``exact`` flag: the orphan's
    fold position is only provably right when the hint was authoritative.
    """
    resolved: List[Tuple[str, List[TraceEvent]]] = []
    all_hinted = True
    prev = "demand"
    for channel, g in groups:
        if channel is None:
            channel = _span_channel(g[0].span)
            if channel is None:
                channel = prev
                all_hinted = False
        resolved.append((channel, g))
        prev = channel
    return resolved, all_hinted


def _fold_channel(
    groups: Iterable[List[TraceEvent]],
) -> Tuple[float, Dict[str, Fraction]]:
    """Invariants A and B for one channel.

    Inner float fold per group (emission order), outer float fold over
    group totals — reproducing the engine's accumulation bit-for-bit —
    plus the exact ``Fraction`` marginal partition with per-group dust
    assigned to the closing movement's component (fault penalty for
    orphans).
    """
    total = 0.0
    comps: Dict[str, Fraction] = {}
    for g in groups:
        inner = 0.0
        marginals: List[Tuple[str, Fraction]] = []
        for e in g:
            before = inner
            inner = inner + e.time_s
            marginals.append((_component_of(e), Fraction(inner) - Fraction(before)))
        outer_before = total
        total = total + inner
        group_share = Fraction(total) - Fraction(outer_before)
        dust = group_share - Fraction(inner)
        for comp, m in marginals:
            comps[comp] = comps.get(comp, _ZERO) + m
        if dust:
            last = g[-1]
            comp = (
                _component_of(last)
                if (last.kind in _MOVEMENT or last.kind == "xfer")
                else "fault_penalty"
            )
            comps[comp] = comps.get(comp, _ZERO) + dust
    return total, comps


def _attribute_one(
    step: int,
    events: Sequence[TraceEvent],
    ledger: Optional[Tuple[float, float, float, float]],
) -> Tuple[FrameAttribution, Dict[str, Fraction], Dict[str, Fraction]]:
    """Attribute one step; ledger is ``(io, lookup, prefetch, render)``."""
    groups, render_events, n_re_miss, n_degraded, degraded_extra = _parse_groups(events)
    resolved, all_hinted = _resolve_orphans(groups)
    exact = all_hinted and all(
        e.count == 1 for _, g in resolved for e in g
    )
    io_total, demand = _fold_channel(g for ch, g in resolved if ch == "demand")
    pf_total, prefetch = _fold_channel(g for ch, g in resolved if ch == "prefetch")
    render_total = 0.0
    for e in render_events:
        render_total = render_total + e.time_s
    if ledger is not None:
        lg_io, lg_lookup, lg_prefetch, lg_render = ledger
        reconciled: Optional[bool] = (
            io_total == lg_io and pf_total == lg_prefetch and render_total == lg_render
        )
        if not exact and reconciled:
            # An inexact fold that happens to match is luck, not proof.
            reconciled = None
        lookup = lg_lookup
    else:
        reconciled = None
        lookup = 0.0
    frame = FrameAttribution(
        step=step,
        io_time_s=io_total,
        lookup_time_s=lookup,
        prefetch_time_s=pf_total,
        render_time_s=render_total,
        components=dict(demand),
        prefetch_components=dict(prefetch),
        overlap_saving_s=min(pf_total, render_total),
        n_re_miss=n_re_miss,
        n_degraded=n_degraded,
        degraded_extra_s=degraded_extra,
        reconciled=reconciled,
        exact=exact,
    )
    return frame, demand, prefetch


def _ledger_tuple(row) -> Tuple[float, float, float, float]:
    """``(io, lookup, prefetch, render)`` from a StepMetrics or a dict."""
    if isinstance(row, dict):
        return (
            float(row.get("io_time_s", 0.0)),
            float(row.get("lookup_time_s", 0.0)),
            float(row.get("prefetch_time_s", 0.0)),
            float(row.get("render_time_s", 0.0)),
        )
    return (
        float(row.io_time_s),
        float(getattr(row, "lookup_time_s", 0.0)),
        float(getattr(row, "prefetch_time_s", 0.0)),
        float(getattr(row, "render_time_s", 0.0)),
    )


def attribute_frames(
    rows: Iterable[Tuple[int, Sequence[TraceEvent], Optional[Tuple[float, float, float, float]]]],
    drop_stats: Optional[Dict[str, int]] = None,
    incomplete: bool = False,
) -> AttributionReport:
    """Build a report from explicit ``(step, events, ledger)`` rows.

    The session scheduler uses this directly (it slices the shared
    tracer per frame); :func:`attribute_run` is the flat-stream wrapper.
    ``incomplete`` forces the flag on (e.g. events dropped mid-window);
    it is also derived from ``drop_stats["n_dropped"]``.
    """
    frames: List[FrameAttribution] = []
    demand_tot: Dict[str, Fraction] = {}
    prefetch_tot: Dict[str, Fraction] = {}
    io = lookup = prefetch = render = saving = _ZERO
    n_re_miss = n_degraded = 0
    degraded_extra = 0.0
    for step, events, ledger in rows:
        frame, demand_f, prefetch_f = _attribute_one(step, events, ledger)
        frames.append(frame)
        for k, v in demand_f.items():
            demand_tot[k] = demand_tot.get(k, _ZERO) + v
        for k, v in prefetch_f.items():
            prefetch_tot[k] = prefetch_tot.get(k, _ZERO) + v
        io += Fraction(frame.io_time_s)
        lookup += Fraction(frame.lookup_time_s)
        prefetch += Fraction(frame.prefetch_time_s)
        render += Fraction(frame.render_time_s)
        saving += Fraction(frame.overlap_saving_s)
        n_re_miss += frame.n_re_miss
        n_degraded += frame.n_degraded
        degraded_extra += frame.degraded_extra_s
    checkable = [f.reconciled for f in frames if f.reconciled is not None]
    if incomplete or (drop_stats is not None and drop_stats.get("n_dropped", 0) > 0):
        incomplete = True
    return AttributionReport(
        frames=frames,
        demand_components=demand_tot,
        prefetch_components=prefetch_tot,
        totals={
            "io_time_s": float(io),
            "lookup_time_s": float(lookup),
            "prefetch_time_s": float(prefetch),
            "render_time_s": float(render),
            "frame_time_s": float(io + lookup + render),
            "overlap_saving_s": float(saving),
        },
        n_re_miss=n_re_miss,
        n_degraded=n_degraded,
        degraded_extra_s=degraded_extra,
        reconciled=(all(checkable) if checkable else None),
        exact=all(f.exact for f in frames) if frames else True,
        incomplete=incomplete,
        drop_stats=dict(drop_stats) if drop_stats is not None else None,
    )


def attribute_run(
    events: Iterable[TraceEvent],
    steps: Optional[Sequence] = None,
    drop_stats: Optional[Dict[str, int]] = None,
) -> AttributionReport:
    """Attribute a whole run from its flat trace stream.

    ``steps`` are the run's :class:`~repro.core.metrics.StepMetrics`
    rows (or their ``as_dict`` forms, as found in bench snapshots) —
    they supply the per-step time ledger the folds reconcile against
    and the untraced ``lookup_time_s``.  Events with ``step < 0``
    (preload) carry no charged frame time and are skipped.
    """
    by_step: Dict[int, List[TraceEvent]] = {}
    for e in events:
        if e.step < 0:
            continue
        by_step.setdefault(e.step, []).append(e)
    ledgers: Dict[int, Tuple[float, float, float, float]] = {}
    if steps is not None:
        for row in steps:
            key = int(row["step"]) if isinstance(row, dict) else int(row.step)
            ledgers[key] = _ledger_tuple(row)
    all_steps = sorted(set(by_step) | set(ledgers))
    rows = [(s, by_step.get(s, ()), ledgers.get(s)) for s in all_steps]
    return attribute_frames(rows, drop_stats=drop_stats)


# -- engine integration --------------------------------------------------------


class AttributionCollector(Collector):
    """Wraps any :class:`~repro.runtime.engine.Collector` and attributes
    each frame as it completes.

    The engine calls ``collect`` after every stage wrote the frame, so
    slicing the tracer between consecutive collects yields exactly the
    events charged to that frame.  ``finish`` returns the inner
    collector's result unchanged and leaves the report on ``.report``
    — strictly observational, like the forensics hooks.
    """

    def __init__(self, inner: Collector) -> None:
        self.inner = inner
        self.report: Optional[AttributionReport] = None
        self._rows: List[Tuple[int, Sequence[TraceEvent], Tuple[float, float, float, float]]] = []
        self._seq = 0
        self._dropped0 = 0

    def start(self, engine) -> None:
        self.inner.start(engine)
        tracer = engine.ctx.tracer
        self._rows = []
        self._seq = tracer.n_recorded
        self._dropped0 = tracer.n_dropped

    def collect(self, engine, frame) -> None:
        self.inner.collect(engine, frame)
        tracer = engine.ctx.tracer
        events = [e for e in tracer.events_since(self._seq) if e.step == frame.step]
        self._seq = tracer.n_recorded
        self._rows.append(
            (
                frame.step,
                events,
                (
                    frame.io_time_s,
                    frame.lookup_time_s,
                    frame.prefetch_time_s,
                    frame.render_time_s,
                ),
            )
        )

    def finish(self, engine):
        result = self.inner.finish(engine)
        tracer = engine.ctx.tracer
        self.report = attribute_frames(
            self._rows,
            drop_stats=tracer.drop_stats(),
            incomplete=(tracer.n_dropped > self._dropped0) or not tracer.enabled,
        )
        return result
