"""Nested wall-clock span profiling, aligned with the simulated clock.

The experiments measure *simulated* time (device cost models on a
:class:`~repro.utils.timers.SimClock`); the reproduction itself spends
*wall* time building tables, preloading, and replaying.  The
:class:`PhaseProfiler` records both sides in one place so a bench report
can show the sim-vs-wall phase breakdown:

- :meth:`PhaseProfiler.span` opens a nested wall-clock span (built on
  :class:`~repro.utils.timers.WallTimer`); spans aggregate by their
  ``/``-joined path, accumulating total seconds and a call count.
- :meth:`PhaseProfiler.charge_sim` forwards to an internal
  :class:`~repro.utils.timers.SimClock`, so a driver's simulated channel
  totals land next to the wall numbers in :meth:`report`.

When a :class:`~repro.trace.tracer.Tracer` is attached, entering a span
publishes the span path on ``tracer.current_span`` — every event recorded
while the span is open carries the span id, linking the trace timeline to
the profile (events gain span ids).

The shared :data:`NULL_PROFILER` mirrors ``NULL_TRACER`` /
``NULL_REGISTRY``: ``span`` returns a reusable no-op context manager, so
unprofiled hot paths cost one attribute load and a branch.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.utils.timers import SimClock

__all__ = ["PhaseProfiler", "NullProfiler", "NULL_PROFILER"]


class _Span:
    """Context manager for one entry of a named span (reused per path)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._profiler._enter(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._exit(time.perf_counter() - self._t0)


class PhaseProfiler:
    """Aggregating wall-clock span recorder with a sim-clock side channel."""

    enabled = True

    def __init__(self, tracer=None, keep_timeline: bool = False) -> None:
        #: path -> [total_seconds, n_calls]
        self._wall: Dict[str, List[float]] = {}
        self._stack: List[str] = []
        self._paths: List[str] = []  # parallel to _stack: joined paths
        self.sim = SimClock()
        # Only a real tracer can carry span ids (NullTracer has no state).
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        #: With keep_timeline, every span close appends (path, start_s, dur_s)
        #: relative to profiler construction — the raw material for a Chrome
        #: trace.  Off by default: the aggregate view costs O(paths), the
        #: timeline costs O(calls).
        self._t_origin = time.perf_counter()
        self._timeline: Optional[List[Tuple[str, float, float]]] = (
            [] if keep_timeline else None
        )

    # -- spans ---------------------------------------------------------------

    def span(self, name: str) -> _Span:
        """Open a (nested) wall-clock span: ``with profiler.span("preload"):``."""
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        return _Span(self, name)

    def _enter(self, name: str) -> float:
        path = f"{self._paths[-1]}/{name}" if self._stack else name
        self._stack.append(name)
        self._paths.append(path)
        if self._tracer is not None:
            self._tracer.current_span = path
        return time.perf_counter()

    def _exit(self, dt: float) -> None:
        path = self._paths.pop()
        self._stack.pop()
        if self._tracer is not None:
            self._tracer.current_span = self._paths[-1] if self._paths else ""
        entry = self._wall.get(path)
        if entry is None:
            entry = self._wall[path] = [0.0, 0]
        entry[0] += dt
        entry[1] += 1
        if self._timeline is not None:
            start = time.perf_counter() - self._t_origin - dt
            self._timeline.append((path, start, dt))

    @property
    def current_path(self) -> str:
        """The open span path (``""`` outside any span)."""
        return self._paths[-1] if self._paths else ""

    # -- sim side ------------------------------------------------------------

    def charge_sim(self, channel: str, seconds: float) -> None:
        """Accumulate simulated seconds next to the wall-clock spans."""
        self.sim.charge(channel, seconds)

    # -- queries / export ----------------------------------------------------

    def wall_seconds(self, path: str) -> float:
        entry = self._wall.get(path)
        return entry[0] if entry else 0.0

    def n_calls(self, path: str) -> int:
        entry = self._wall.get(path)
        return int(entry[1]) if entry else 0

    def timeline(self) -> List[Tuple[str, float, float]]:
        """Recorded ``(path, start_s, dur_s)`` spans (``keep_timeline`` only)."""
        return list(self._timeline) if self._timeline is not None else []

    def write_chrome_trace(self, path) -> Path:
        """Write the timeline as a Chrome-trace JSON (``keep_timeline`` only).

        Emits complete ("X") events in microseconds, viewable in
        chrome://tracing or https://ui.perfetto.dev.  Raises if the
        profiler was constructed without ``keep_timeline=True`` — the
        aggregate view cannot be turned back into a timeline.
        """
        if self._timeline is None:
            raise RuntimeError(
                "write_chrome_trace requires PhaseProfiler(keep_timeline=True)"
            )
        events = [
            {
                "name": span_path.rsplit("/", 1)[-1],
                "cat": "wall",
                "ph": "X",
                "ts": start * 1e6,
                "dur": dur * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {"path": span_path},
            }
            for span_path, start, dur in self._timeline
        ]
        out = Path(path)
        out.write_text(
            json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}),
            encoding="utf-8",
        )
        return out

    def report(self) -> Dict[str, object]:
        """JSON-ready sim-vs-wall breakdown.

        ``wall`` maps span path to total seconds / call count / mean;
        ``sim`` is the simulated channel totals charged so far.
        """
        wall = {
            path: {
                "seconds": secs,
                "count": int(n),
                "mean_seconds": secs / n if n else 0.0,
            }
            for path, (secs, n) in sorted(self._wall.items())
        }
        return {"wall": wall, "sim": self.sim.channels()}

    def format_report(self) -> str:
        """Monospace table of the report (for CLI output)."""
        rep = self.report()
        lines = [f"{'phase (wall)':<40} {'calls':>7} {'total s':>12} {'mean s':>12}"]
        lines.append("-" * len(lines[0]))
        for path, row in rep["wall"].items():
            indent = "  " * path.count("/")
            label = indent + path.rsplit("/", 1)[-1]
            lines.append(
                f"{label:<40} {row['count']:>7} {row['seconds']:>12.6f} "
                f"{row['mean_seconds']:>12.6f}"
            )
        sim = rep["sim"]
        if sim:
            lines.append("")
            lines.append(f"{'channel (sim)':<40} {'total s':>12}")
            for channel, secs in sorted(sim.items()):
                lines.append(f"{channel:<40} {secs:>12.6f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseProfiler({len(self._wall)} span paths, depth={len(self._stack)})"


class _NullSpan:
    """Reusable, reentrant no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """The disabled profiler: spans are shared no-ops, queries are empty."""

    __slots__ = ()

    enabled = False
    current_path = ""

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def charge_sim(self, channel: str, seconds: float) -> None:
        pass

    def wall_seconds(self, path: str) -> float:
        return 0.0

    def n_calls(self, path: str) -> int:
        return 0

    def timeline(self) -> List[Tuple[str, float, float]]:
        return []

    def report(self) -> Dict[str, object]:
        return {"wall": {}, "sim": {}}

    def format_report(self) -> str:
        return "(profiling disabled)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullProfiler()"


#: Shared disabled profiler; instrumented drivers default to this.
NULL_PROFILER = NullProfiler()


def resolve_profiler(profiler: Optional[PhaseProfiler]):
    """``profiler`` or the shared null profiler."""
    return profiler if profiler is not None else NULL_PROFILER
