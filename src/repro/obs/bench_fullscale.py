"""The ``repro bench --tier fullscale`` wall-clock tier.

The default bench tier gates *simulated*-clock metrics, which are
byte-identical across machines but say nothing about how fast the code
itself runs.  This tier runs paper-scale geometry (Table I block counts:
``scale=0.5`` grids of ~16k blocks by default, hundreds of path steps)
and records the raw-speed numbers the culled visibility kernels exist
for — table-build wall time, per-step replay wall time, and peak RSS —
alongside the usual simulated summary, so raw performance becomes a
tracked, ratcheting number.

Wall-clock metrics are machine-dependent: :func:`repro.obs.bench.compare_bench`
compares them with a widened threshold
(:data:`repro.obs.bench.WALL_THRESHOLD_FACTOR` × the sim threshold), so
same-machine CI catches multi-x slowdowns without flaking on scheduler
noise, while the simulated metrics in the same snapshot still gate
bit-exactly.

Cells are deliberately lightweight compared to the default tier: no
eviction forensics, no per-frame attribution, and aggregated trace
roll-ups — those are diagnostic features with their own costs, and this
tier measures the production replay path.
"""

from __future__ import annotations

import resource
import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.camera.frustum import resolve_kernel
from repro.camera.sampling import SamplingConfig
from repro.core.pipeline import PipelineContext
from repro.experiments.matrix import (
    MatrixCell,
    MatrixSpec,
    expand_cells,
    register_cell_runner,
    setup_for,
)
from repro.experiments.runner import ExperimentSetup
from repro.obs.bench import BENCH_SCHEMA_VERSION, PROFILE_CELL, _paths
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.parallel.preprocess import build_visible_table_parallel
from repro.runtime.config import REPLAY_ENGINES
from repro.runtime.drivers import run_baseline
from repro.tables.builder import build_importance_table, build_visible_table
from repro.trace import Tracer

__all__ = ["FullscaleConfig", "fullscale_matrix_spec", "run_fullscale"]


@dataclass(frozen=True)
class FullscaleConfig:
    """Pinned parameters of the fullscale tier (recorded into the snapshot).

    The default is a ``scale=0.5`` 3d_ball (512³ voxels, ~500 MB of
    float32) over ~16k blocks — the paper's Fig. 9 upper range — with a
    240-step path per cell.  ``smoke()`` is the CI variant: a quarter-scale
    grid and short paths, same shape, a few minutes end-to-end.
    """

    dataset: str = "3d_ball"
    blocks: int = 16384
    scale: float = 0.5
    steps: int = 240
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 256
    n_distances: int = 2
    degrees_per_step: float = 3.0
    tracer_capacity: int = 500_000
    #: Visibility kernel for table build and replay ground truth — the
    #: point of this tier; ``"dense"`` measures the un-culled baseline.
    kernel: str = "culled"

    @classmethod
    def smoke(cls) -> "FullscaleConfig":
        """The CI `fullscale-smoke` variant (reduced scale, short paths)."""
        return cls(blocks=4096, scale=0.25, steps=48, n_directions=64, n_distances=1)


def _peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux (bytes on macOS, where this tier is not
    # gated); monotone over the process lifetime, sampled at suite end.
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024


def _run_cell(
    setup: ExperimentSetup,
    context: PipelineContext,
    policy: str,
    config: FullscaleConfig,
    engine: str,
    profiler: Optional[PhaseProfiler] = None,
) -> Dict[str, object]:
    """One lightweight (path, policy) cell: summary + wall timings only."""
    registry = MetricsRegistry()
    tracer = Tracer(capacity=config.tracer_capacity)
    if profiler is None:
        profiler = PhaseProfiler(tracer=tracer)
    hierarchy = setup.hierarchy("lru" if policy == "app-aware" else policy)
    # Aggregated roll-ups bound the event count at fullscale step counts;
    # the forensic per-block stream is the default tier's job.
    hierarchy.aggregate_trace = True
    t0 = time.perf_counter()
    with profiler.span("replay"):
        if policy == "app-aware":
            result = setup.optimizer().run(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )
        else:
            result = run_baseline(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )
    wall = time.perf_counter() - t0
    return {
        "engine": engine,
        "wall_s": wall,
        "per_step_wall_s": wall / max(1, config.steps),
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
        "phases": profiler.report(),
    }


def fullscale_matrix_spec(config: FullscaleConfig, engine: str = "batched") -> MatrixSpec:
    """The fullscale tier's cell grid as a matrix spec.

    The same 2×2 (workload × policy) grid as the default bench tier at
    paper-scale geometry, run by the ``fullscale-cell`` runner (registered
    below), which builds its tables and contexts with the tier's
    visibility ``kernel``.  ``run_fullscale`` expands this spec for its
    cell loop; the committed ``specs/fullscale-smoke.toml`` runs the same
    cells standalone through ``repro matrix run``.
    """
    return MatrixSpec(
        label="fullscale",
        runner="fullscale-cell",
        base={
            "dataset": config.dataset,
            "blocks": config.blocks,
            "scale": config.scale,
            "steps": config.steps,
            "cache_ratio": config.cache_ratio,
            "seed": config.seed,
            "degrees": (config.degrees_per_step, config.degrees_per_step),
            "engine": engine,
        },
        axes={
            "workload": ("spherical", "zoom"),
            "policy": ("lru", "app-aware"),
        },
        labels={"workload": {"spherical": "orbit"}},
        setup={
            "n_directions": config.n_directions,
            "n_distances": config.n_distances,
            "tracer_capacity": config.tracer_capacity,
            "kernel": config.kernel,
        },
    )


#: Per-process context cache of the standalone ``fullscale-cell`` runner
#: (kernel-aware, so it cannot share the replay runner's context cache).
_CELL_CONTEXTS: Dict[tuple, PipelineContext] = {}


def _fullscale_cell(cell: MatrixCell, extras) -> Dict[str, object]:
    """Standalone matrix runner for fullscale cells.

    Builds the kernel-aware tables/contexts lazily (serial, untimed —
    the timed, optionally parallel build preamble is ``run_fullscale``'s
    job) and then runs the same lightweight cell as the tier.
    """
    run_config = cell.config
    fconfig = FullscaleConfig(
        dataset=run_config.dataset,
        blocks=run_config.blocks,
        scale=run_config.scale if run_config.scale is not None else 0.5,
        steps=run_config.steps,
        cache_ratio=run_config.cache_ratio,
        seed=run_config.seed,
        n_directions=int(extras.get("n_directions", 256)),
        n_distances=int(extras.get("n_distances", 2)),
        degrees_per_step=run_config.degrees[0],
        tracer_capacity=int(extras.get("tracer_capacity", 500_000)),
        kernel=str(extras.get("kernel", "culled")),
    )
    setup = setup_for(
        run_config,
        {
            **dict(extras),
            "n_directions": fconfig.n_directions,
            "n_distances": fconfig.n_distances,
        },
    )
    if setup._vtable is None:
        setup._itable = build_importance_table(setup.volume, setup.grid)
        setup._vtable = build_visible_table(
            setup.grid, setup.sampling, setup.view_angle_deg,
            cache_ratio=fconfig.cache_ratio,
            importance=setup.importance_table,
            seed=fconfig.seed,
            kernel=fconfig.kernel,
        )
    path_name = "orbit" if run_config.workload == "spherical" else "zoom"
    ckey = (id(setup), path_name, fconfig.steps, fconfig.kernel)
    if ckey not in _CELL_CONTEXTS:
        path = _paths(fconfig, setup.view_angle_deg)[path_name]
        _CELL_CONTEXTS[ckey] = PipelineContext.create(
            path, setup.grid, setup.render_model, kernel=fconfig.kernel
        )
    return _run_cell(
        setup, _CELL_CONTEXTS[ckey], run_config.policy, fconfig, run_config.engine
    )


register_cell_runner("fullscale-cell", _fullscale_cell)


def run_fullscale(
    config: Optional[FullscaleConfig] = None,
    label: str = "fullscale",
    quick: bool = False,
    progress=None,
    workers: int = 1,
    engine: str = "batched",
    profile_path=None,
) -> Dict[str, object]:
    """Run the fullscale tier; returns the JSON-ready snapshot document.

    The document shares the bench schema (``write_bench``/``load_bench``/
    ``compare_bench`` all apply) and adds ``"tier": "fullscale"`` plus a
    ``fullscale`` section of wall-clock build metrics, which the
    comparison includes — at the widened wall threshold — only for
    fullscale-tier snapshots.
    """
    if config is None:
        config = FullscaleConfig.smoke() if quick else FullscaleConfig()
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {REPLAY_ENGINES}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    notify = progress if progress is not None else (lambda msg: None)
    t0 = time.perf_counter()

    notify(
        f"setup: {config.dataset} scale={config.scale}, "
        f"~{config.blocks} blocks, {config.steps} steps, kernel={config.kernel}"
    )
    setup = ExperimentSetup.for_dataset(
        config.dataset,
        target_n_blocks=config.blocks,
        scale=config.scale,
        cache_ratio=config.cache_ratio,
        sampling=SamplingConfig(
            n_directions=config.n_directions, n_distances=config.n_distances
        ),
        seed=config.seed,
    )
    resolved_kernel = resolve_kernel(config.kernel, setup.grid.n_blocks)

    notify("building T_important")
    t_imp = time.perf_counter()
    setup._itable = build_importance_table(setup.volume, setup.grid)
    importance_wall_s = time.perf_counter() - t_imp

    n_samples = config.n_directions * config.n_distances
    notify(f"building T_visible ({n_samples} samples, workers={workers})")
    t_tab = time.perf_counter()
    build_kwargs = dict(
        cache_ratio=config.cache_ratio,
        importance=setup.importance_table,
        seed=config.seed,
        kernel=config.kernel,
    )
    if workers > 1:
        setup._vtable = build_visible_table_parallel(
            setup.grid, setup.sampling, setup.view_angle_deg,
            n_workers=workers, **build_kwargs,
        )
    else:
        setup._vtable = build_visible_table(
            setup.grid, setup.sampling, setup.view_angle_deg, **build_kwargs
        )
    table_build_wall_s = time.perf_counter() - t_tab

    paths = _paths(config, setup.view_angle_deg)
    contexts: Dict[str, PipelineContext] = {}
    runs: Dict[str, Dict[str, object]] = {}
    for cell in expand_cells(fullscale_matrix_spec(config, engine=engine)):
        path_name = "orbit" if cell.config.workload == "spherical" else "zoom"
        if path_name not in contexts:
            notify(f"visible sets: {path_name} path ({config.steps} steps)")
            contexts[path_name] = PipelineContext.create(
                paths[path_name], setup.grid, setup.render_model,
                kernel=config.kernel,
            )
        notify(f"run: {cell.key}")
        runs[cell.key] = _run_cell(
            setup, contexts[path_name], cell.config.policy, config, engine
        )

    vtable = setup.visible_table
    sizes = vtable.entry_sizes()
    doc: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "fullscale",
        "label": label,
        "quick": quick,
        "engine": engine,
        "workers": int(workers),
        "config": asdict(config),
        "fullscale": {
            "kernel": config.kernel,
            "resolved_kernel": resolved_kernel,
            "n_blocks": int(setup.grid.n_blocks),
            "volume_voxels": int(setup.volume.n_voxels),
            "n_samples": int(vtable.n_entries),
            "mean_set_size": float(sizes.mean()) if sizes.size else 0.0,
            "importance_wall_s": importance_wall_s,
            "table_build_wall_s": table_build_wall_s,
            "peak_rss_bytes": _peak_rss_bytes(),
        },
        "runs": runs,
        "suite_wall_s": time.perf_counter() - t0,
    }

    if profile_path is not None:
        notify(f"profile: re-running {PROFILE_CELL} with span timeline")
        path_name, policy = PROFILE_CELL.split("/")
        run_profiler = PhaseProfiler(keep_timeline=True)
        _run_cell(
            setup, contexts[path_name], policy, config, engine,
            profiler=run_profiler,
        )
        out = run_profiler.write_chrome_trace(profile_path)
        doc["profile"] = {"cell": PROFILE_CELL, "path": str(out)}
    return doc
