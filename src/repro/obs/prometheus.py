"""Prometheus text-exposition rendering of a metrics snapshot.

:meth:`repro.obs.metrics.MetricsRegistry.snapshot` flattens metrics to
``name{k=v,...}`` keys; this module re-renders that dict (or any
equally-shaped dict, e.g. the synthetic one ``repro analyze`` builds
from an attribution report) in the Prometheus text exposition format —
counters and gauges as single samples, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.

The output is deterministic: metric families sort by name, samples by
label signature, buckets by upper bound — so a dump can be diffed or
pinned byte-for-byte in tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "prometheus_text",
    "write_prometheus",
    "labeled_key",
    "relabel_snapshot",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a snapshot key ``name{k=v,...}`` into (name, labels)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels: Dict[str, str] = {}
    if rest:
        for part in rest.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def labeled_key(name: str, labels: Mapping[str, str]) -> str:
    """Build a snapshot key ``name{k=v,...}`` with deterministically sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def relabel_snapshot(
    snapshot: Mapping[str, Mapping[str, dict]], extra_labels: Mapping[str, str]
) -> Dict[str, Dict[str, dict]]:
    """A copy of ``snapshot`` with ``extra_labels`` merged into every key.

    Used to pool several runs' registries into one exposition without
    duplicating ``# TYPE`` lines: each run's samples get a ``run=...``
    label and the merged snapshot renders as one family per metric.
    """
    out: Dict[str, Dict[str, dict]] = {}
    for section, metrics in snapshot.items():
        sec = out.setdefault(section, {})
        for key, data in (metrics or {}).items():
            name, labels = _parse_key(key)
            labels.update(extra_labels)
            sec[labeled_key(name, labels)] = data
    return out


def merge_snapshots(*snapshots: Mapping[str, Mapping[str, dict]]) -> Dict[str, Dict[str, dict]]:
    """Union several snapshots (later keys win on collision)."""
    out: Dict[str, Dict[str, dict]] = {}
    for snap in snapshots:
        for section, metrics in (snap or {}).items():
            out.setdefault(section, {}).update(metrics or {})
    return out


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(k)}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    # Integral floats render as integers (Prometheus accepts either; the
    # shorter form diffs cleanly), everything else as repr — lossless.
    if isinstance(value, bool):
        return "1" if value else "0"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(
    snapshot: Mapping[str, Mapping[str, dict]],
    namespace: str = "repro",
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``snapshot`` is the dict from ``MetricsRegistry.snapshot()``:
    ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` (any
    section may be absent).  ``extra_labels`` are merged into every
    sample (e.g. ``{"run": "orbit-lru"}``); ``namespace`` prefixes every
    metric name.
    """
    extra = dict(extra_labels or {})
    prefix = f"{_sanitize(namespace)}_" if namespace else ""

    # family name -> (type, [(sorted label sig, lines)])
    families: Dict[str, Tuple[str, List[Tuple[str, List[str]]]]] = {}

    def family(name: str, kind: str) -> List[Tuple[str, List[str]]]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        return entry[1]

    for key, data in (snapshot.get("counters") or {}).items():
        name, labels = _parse_key(key)
        name = prefix + _sanitize(name)
        labels.update(extra)
        sig = _label_str(labels)
        family(name, "counter").append(
            (sig, [f"{name}{sig} {_fmt(data['value'])}"])
        )

    for key, data in (snapshot.get("gauges") or {}).items():
        name, labels = _parse_key(key)
        name = prefix + _sanitize(name)
        labels.update(extra)
        sig = _label_str(labels)
        family(name, "gauge").append(
            (sig, [f"{name}{sig} {_fmt(data['value'])}"])
        )

    for key, data in (snapshot.get("histograms") or {}).items():
        name, labels = _parse_key(key)
        name = prefix + _sanitize(name)
        labels.update(extra)
        sig = _label_str(labels)
        lines: List[str] = []
        cumulative = 0
        buckets = data.get("buckets") or {}
        for bound, count in sorted(buckets.items(), key=lambda kv: float(kv[0])):
            cumulative += int(count)
            blabels = dict(labels)
            blabels["le"] = str(bound)
            lines.append(f"{name}_bucket{_label_str(blabels)} {cumulative}")
        blabels = dict(labels)
        blabels["le"] = "+Inf"
        lines.append(f"{name}_bucket{_label_str(blabels)} {int(data['count'])}")
        lines.append(f"{name}_sum{sig} {_fmt(data['sum'])}")
        lines.append(f"{name}_count{sig} {int(data['count'])}")
        family(name, "histogram").append((sig, lines))

    out: List[str] = []
    for name in sorted(families):
        kind, samples = families[name]
        out.append(f"# TYPE {name} {kind}")
        for _, lines in sorted(samples, key=lambda s: s[0]):
            out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(snapshot, path, namespace: str = "repro", extra_labels=None):
    """Write :func:`prometheus_text` to ``path``; returns the path."""
    from pathlib import Path

    path = Path(path)
    path.write_text(
        prometheus_text(snapshot, namespace=namespace, extra_labels=extra_labels),
        encoding="utf-8",
    )
    return path
