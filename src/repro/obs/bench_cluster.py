"""The ``repro bench --tier cluster`` sharded-replay tier.

The default tier gates the single-box replay; this tier pins the
:mod:`repro.cluster` surface: a 4-node :class:`~repro.cluster.ShardedHierarchy`
replaying the orbit path, fault-free and under the pinned
``link-partition`` cluster fault profile.  The snapshot records the
per-route byte split (local / ghost / peer / cold), the per-link network
ledger, and the shard map's locality score — all *simulated*-clock
quantities, byte-identical across machines, so the comparison gates
bit-exactly like the default tier.

Three cells share one orbit context:

- ``orbit/K1`` — a one-node sharded hierarchy, which delegates wholesale
  to the single-box :class:`~repro.storage.hierarchy.MemoryHierarchy`
  (the shard-equivalence suite pins this bit-for-bit);
- ``orbit/K4`` — four slab-sharded nodes, fault-free;
- ``orbit/K4-partition`` — the same four nodes with the home node's
  first peer link partitioned, exercising the cold-store fallback path.

The ``cluster`` section is the partition cell's
:meth:`~repro.cluster.ShardedHierarchy.cluster_ledger` plus
``ledger_reconciles``, the exact conservation check CI asserts:
``bytes_moved == local + ghost + peer + cold`` and
``peer == sum(per-link bytes)``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.experiments.matrix import MatrixSpec, expand_cells, run_matrix_cell
from repro.obs.bench import BENCH_SCHEMA_VERSION
from repro.runtime.config import REPLAY_ENGINES

__all__ = ["ClusterConfig", "cluster_matrix_spec", "ledger_reconciles", "run_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Pinned parameters of the cluster tier (recorded into the snapshot)."""

    dataset: str = "3d_ball"
    blocks: int = 256
    scale: float = 0.08
    steps: int = 40
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 32
    n_distances: int = 1
    degrees_per_step: float = 5.0
    tracer_capacity: int = 500_000
    n_nodes: int = 4
    strategy: str = "slab"
    ghost_ratio: float = 0.05
    #: Cluster fault profile of the partition cell
    #: (see :data:`repro.cluster.CLUSTER_FAULT_PROFILES`).
    faults: str = "link-partition"
    fault_seed: int = 0

    @classmethod
    def smoke(cls) -> "ClusterConfig":
        """The CI `cluster-smoke` variant: same shape, a fraction of the work."""
        return cls(blocks=64, scale=0.04, steps=12, n_directions=16)


def ledger_reconciles(hierarchy) -> bool:
    """Exact (integer ``==``) conservation check over a sharded run.

    Every byte the hierarchy served must appear in exactly one route of the
    split ledger, and every peer byte must be charged to exactly one link:

    - ``bytes_moved`` (``backing_bytes`` + every cache level's
      ``bytes_read``) equals ``local + ghost + peer + cold``;
    - ``peer`` equals the fabric total, which equals the per-link sum.
    """
    ledger = hierarchy.cluster_ledger()
    split = ledger["split_bytes"]
    bytes_moved = hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
    link_bytes = sum(row["bytes"] for row in ledger["links"].values())
    return (
        bytes_moved == sum(split.values())
        and split["peer"] == ledger["peer_bytes"] == link_bytes
    )


def cluster_matrix_spec(config: ClusterConfig, engine: str = "batched") -> MatrixSpec:
    """The cluster tier as a matrix spec.

    Two axes — shard count and fault profile — with the fault-free K1
    combination of the partition profile pruned by a constraint, expand
    to the tier's three pinned cells in run order (``orbit/K1``,
    ``orbit/K<n>``, ``orbit/K<n>/partition``); all three share one orbit
    context through the replay runner's caches, exactly like the legacy
    single-setup loop.  ``force_sharded`` keeps the K1 cell on a one-node
    :class:`~repro.cluster.ShardedHierarchy` (the shard-equivalence
    surface) instead of the plain single-box hierarchy.
    """
    return MatrixSpec(
        label="cluster",
        runner="replay",
        base={
            "dataset": config.dataset,
            "blocks": config.blocks,
            "scale": config.scale,
            "steps": config.steps,
            "cache_ratio": config.cache_ratio,
            "seed": config.seed,
            "workload": "spherical",
            "degrees": (config.degrees_per_step, config.degrees_per_step),
            "distance": 2.5,
            "policy": "lru",
            "engine": engine,
            "fault_seed": config.fault_seed,
            "shard_map": config.strategy,
        },
        axes={
            "shards": (1, config.n_nodes),
            "faults": ("none", config.faults),
        },
        constraints=({"shards": 1, "faults": config.faults},),
        labels={
            "shards": {"1": "K1", str(config.n_nodes): f"K{config.n_nodes}"},
            "faults": {"none": "", config.faults: "partition"},
        },
        key_prefix="orbit",
        setup={
            "n_directions": config.n_directions,
            "n_distances": config.n_distances,
            "tracer_capacity": config.tracer_capacity,
            "ghost_ratio": config.ghost_ratio,
            "force_sharded": True,
        },
        figures=(
            {
                "x": "shards",
                "metric": "total_miss_rate",
                "group_by": "faults",
                "title": "miss rate vs shard count",
            },
        ),
    )


def run_cluster(
    config: Optional[ClusterConfig] = None,
    label: str = "cluster",
    quick: bool = False,
    progress=None,
    engine: str = "batched",
) -> Dict[str, object]:
    """Run the cluster tier; returns the JSON-ready snapshot document.

    The document shares the bench schema (``write_bench``/``load_bench``/
    ``compare_bench`` all apply) and adds ``"tier": "cluster"`` plus a
    ``cluster`` section — the partition cell's
    :meth:`~repro.cluster.ShardedHierarchy.cluster_ledger` with the
    ``ledger_reconciles`` conservation bit the CI smoke job asserts.
    """
    if config is None:
        config = ClusterConfig.smoke() if quick else ClusterConfig()
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {REPLAY_ENGINES}")
    notify = progress if progress is not None else (lambda msg: None)
    t0 = time.perf_counter()

    notify(
        f"setup: {config.dataset}, ~{config.blocks} blocks, {config.steps} steps, "
        f"{config.n_nodes} nodes ({config.strategy})"
    )
    # The tier is a committed matrix spec; the replay runner's caches give
    # the three cells one shared setup + orbit context, like the legacy
    # single-setup loop.  The per-cell run dicts are reshaped to the
    # tier's historical layout (n_nodes/faults scalars, no nested ledger)
    # so committed baselines stay byte-identical.
    spec = cluster_matrix_spec(config, engine=engine)
    runs: Dict[str, Dict[str, object]] = {}
    cluster_section = None
    for cell in expand_cells(spec):
        faults = cell.axes["faults"]
        key = cell.key.replace("/partition", "-partition")
        notify(f"run: {key}")
        run = run_matrix_cell(cell, spec)
        ledger = run.pop("cluster")
        run.pop("faults", None)
        run["n_nodes"] = cell.config.shards
        run["faults"] = faults
        runs[key] = run
        if faults != "none":
            cluster_section = ledger
            cluster_section["ledger_reconciles"] = run["ledger_reconciles"]

    assert cluster_section is not None

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "cluster",
        "label": label,
        "quick": quick,
        "engine": engine,
        "config": asdict(config),
        "cluster": cluster_section,
        "runs": runs,
        "suite_wall_s": time.perf_counter() - t0,
    }
