"""The ``repro bench --tier cluster`` sharded-replay tier.

The default tier gates the single-box replay; this tier pins the
:mod:`repro.cluster` surface: a 4-node :class:`~repro.cluster.ShardedHierarchy`
replaying the orbit path, fault-free and under the pinned
``link-partition`` cluster fault profile.  The snapshot records the
per-route byte split (local / ghost / peer / cold), the per-link network
ledger, and the shard map's locality score — all *simulated*-clock
quantities, byte-identical across machines, so the comparison gates
bit-exactly like the default tier.

Three cells share one orbit context:

- ``orbit/K1`` — a one-node sharded hierarchy, which delegates wholesale
  to the single-box :class:`~repro.storage.hierarchy.MemoryHierarchy`
  (the shard-equivalence suite pins this bit-for-bit);
- ``orbit/K4`` — four slab-sharded nodes, fault-free;
- ``orbit/K4-partition`` — the same four nodes with the home node's
  first peer link partitioned, exercising the cold-store fallback path.

The ``cluster`` section is the partition cell's
:meth:`~repro.cluster.ShardedHierarchy.cluster_ledger` plus
``ledger_reconciles``, the exact conservation check CI asserts:
``bytes_moved == local + ghost + peer + cold`` and
``peer == sum(per-link bytes)``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.camera.path import spherical_path
from repro.camera.sampling import SamplingConfig
from repro.cluster import cluster_fault_plan, make_sharded_hierarchy
from repro.core.pipeline import PipelineContext
from repro.experiments.runner import ExperimentSetup
from repro.faults import FaultInjector
from repro.obs.bench import BENCH_SCHEMA_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.runtime.config import REPLAY_ENGINES
from repro.runtime.context import RunContext
from repro.runtime.drivers import run_baseline
from repro.trace import Tracer

__all__ = ["ClusterConfig", "ledger_reconciles", "run_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Pinned parameters of the cluster tier (recorded into the snapshot)."""

    dataset: str = "3d_ball"
    blocks: int = 256
    scale: float = 0.08
    steps: int = 40
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 32
    n_distances: int = 1
    degrees_per_step: float = 5.0
    tracer_capacity: int = 500_000
    n_nodes: int = 4
    strategy: str = "slab"
    ghost_ratio: float = 0.05
    #: Cluster fault profile of the partition cell
    #: (see :data:`repro.cluster.CLUSTER_FAULT_PROFILES`).
    faults: str = "link-partition"
    fault_seed: int = 0

    @classmethod
    def smoke(cls) -> "ClusterConfig":
        """The CI `cluster-smoke` variant: same shape, a fraction of the work."""
        return cls(blocks=64, scale=0.04, steps=12, n_directions=16)


def ledger_reconciles(hierarchy) -> bool:
    """Exact (integer ``==``) conservation check over a sharded run.

    Every byte the hierarchy served must appear in exactly one route of the
    split ledger, and every peer byte must be charged to exactly one link:

    - ``bytes_moved`` (``backing_bytes`` + every cache level's
      ``bytes_read``) equals ``local + ghost + peer + cold``;
    - ``peer`` equals the fabric total, which equals the per-link sum.
    """
    ledger = hierarchy.cluster_ledger()
    split = ledger["split_bytes"]
    bytes_moved = hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
    link_bytes = sum(row["bytes"] for row in ledger["links"].values())
    return (
        bytes_moved == sum(split.values())
        and split["peer"] == ledger["peer_bytes"] == link_bytes
    )


def _run_cell(
    setup: ExperimentSetup,
    context: PipelineContext,
    config: ClusterConfig,
    engine: str,
    n_nodes: int,
    faults: str,
):
    """One sharded orbit cell; returns (run-dict, hierarchy)."""
    hierarchy = make_sharded_hierarchy(
        setup.grid,
        n_nodes,
        strategy=config.strategy,
        cache_ratio=config.cache_ratio,
        policy="lru",
        ghost_ratio=config.ghost_ratio if n_nodes > 1 else 0.0,
        seed=config.seed,
    )
    injector = None
    if faults != "none":
        injector = FaultInjector(
            cluster_fault_plan(faults, n_nodes, seed=config.fault_seed)
        )
    ctx = RunContext(
        tracer=Tracer(capacity=config.tracer_capacity),
        registry=MetricsRegistry(),
        fault_injector=injector,
    )
    t0 = time.perf_counter()
    result = run_baseline(context, hierarchy, engine=engine, ctx=ctx)
    wall = time.perf_counter() - t0
    ledger = hierarchy.cluster_ledger()
    run = {
        "engine": engine,
        "n_nodes": n_nodes,
        "faults": faults,
        "wall_s": wall,
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
        "split_bytes": dict(ledger["split_bytes"]),
        "peer_transfers": ledger["peer_transfers"],
        "link_fallbacks": ledger["link_fallbacks"],
        "ledger_reconciles": ledger_reconciles(hierarchy),
    }
    return run, hierarchy


def run_cluster(
    config: Optional[ClusterConfig] = None,
    label: str = "cluster",
    quick: bool = False,
    progress=None,
    engine: str = "batched",
) -> Dict[str, object]:
    """Run the cluster tier; returns the JSON-ready snapshot document.

    The document shares the bench schema (``write_bench``/``load_bench``/
    ``compare_bench`` all apply) and adds ``"tier": "cluster"`` plus a
    ``cluster`` section — the partition cell's
    :meth:`~repro.cluster.ShardedHierarchy.cluster_ledger` with the
    ``ledger_reconciles`` conservation bit the CI smoke job asserts.
    """
    if config is None:
        config = ClusterConfig.smoke() if quick else ClusterConfig()
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {REPLAY_ENGINES}")
    notify = progress if progress is not None else (lambda msg: None)
    t0 = time.perf_counter()

    notify(
        f"setup: {config.dataset}, ~{config.blocks} blocks, {config.steps} steps, "
        f"{config.n_nodes} nodes ({config.strategy})"
    )
    setup = ExperimentSetup.for_dataset(
        config.dataset,
        target_n_blocks=config.blocks,
        scale=config.scale,
        cache_ratio=config.cache_ratio,
        sampling=SamplingConfig(
            n_directions=config.n_directions, n_distances=config.n_distances
        ),
        seed=config.seed,
    )
    path = spherical_path(
        config.steps,
        degrees_per_step=config.degrees_per_step,
        distance=2.5,
        view_angle_deg=setup.view_angle_deg,
        seed=config.seed,
    )
    context = setup.context(path)

    cells = (
        ("orbit/K1", 1, "none"),
        (f"orbit/K{config.n_nodes}", config.n_nodes, "none"),
        (f"orbit/K{config.n_nodes}-partition", config.n_nodes, config.faults),
    )
    runs: Dict[str, Dict[str, object]] = {}
    partition_hierarchy = None
    for key, n_nodes, faults in cells:
        notify(f"run: {key}")
        runs[key], hierarchy = _run_cell(
            setup, context, config, engine, n_nodes, faults
        )
        if faults != "none":
            partition_hierarchy = hierarchy

    assert partition_hierarchy is not None
    cluster_section = partition_hierarchy.cluster_ledger()
    cluster_section["ledger_reconciles"] = ledger_reconciles(partition_hierarchy)

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "cluster",
        "label": label,
        "quick": quick,
        "engine": engine,
        "config": asdict(config),
        "cluster": cluster_section,
        "runs": runs,
        "suite_wall_s": time.perf_counter() - t0,
    }
