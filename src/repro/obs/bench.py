"""The ``repro bench`` regression harness.

Runs a pinned suite — two camera paths (an orbit and a zoom) × two
policies (the LRU baseline and the paper's app-aware optimizer) on one
synthetic dataset — with the metrics registry, event tracer, and phase
profiler all attached, and emits a schema-versioned ``BENCH_<label>.json``
snapshot.  Everything the comparison looks at is *simulated*-clock
derived, so two snapshots of the same code are bit-identical regardless
of the machine; wall-clock phase timings ride along for human inspection
but are never compared.

``compare_bench`` diffs two snapshots against per-direction relative
thresholds and reports regressions (``repro bench --compare`` exits
non-zero when any metric regresses past threshold).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.camera.path import spherical_path, zoom_path
from repro.camera.sampling import SamplingConfig
from repro.core.pipeline import run_baseline
from repro.experiments.runner import ExperimentSetup
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.trace import Tracer, aggregate

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "run_bench",
    "write_bench",
    "load_bench",
    "comparable_metrics",
    "compare_bench",
    "format_comparison",
]

#: Bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

PathLike = Union[str, Path]


@dataclass(frozen=True)
class BenchConfig:
    """Pinned parameters of the bench suite (recorded into the snapshot)."""

    dataset: str = "3d_ball"
    blocks: int = 256
    scale: float = 0.08
    steps: int = 40
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 64
    n_distances: int = 2
    degrees_per_step: float = 5.0
    tracer_capacity: int = 500_000

    @classmethod
    def quick(cls) -> "BenchConfig":
        """The CI-smoke variant: same shape, a fraction of the work."""
        return cls(blocks=64, scale=0.04, steps=8, n_directions=16, n_distances=1)


def _paths(config: BenchConfig, view_angle_deg: float):
    return {
        "orbit": spherical_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            distance=2.5,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
        "zoom": zoom_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
    }


def _ratio(numer: Optional[object], denom: Optional[object]) -> Optional[float]:
    if numer is None or denom is None or not denom.value:
        return None
    return numer.value / denom.value


def _histogram_percentiles(registry: MetricsRegistry, name: str) -> Dict[str, Dict[str, float]]:
    """``{flat-label: {count, p50, p95, p99}}`` for every histogram ``name``."""
    out: Dict[str, Dict[str, float]] = {}
    for metric in registry.metrics():
        if isinstance(metric, Histogram) and metric.name == name:
            key = ",".join(f"{k}={v}" for k, v in metric.labels) or "all"
            out[key] = {"count": metric.count, **metric.percentiles()}
    return out


def _run_one(setup: ExperimentSetup, path, policy: str, config: BenchConfig) -> Dict[str, object]:
    """One (path, policy) cell: run instrumented, snapshot everything."""
    registry = MetricsRegistry()
    tracer = Tracer(capacity=config.tracer_capacity)
    profiler = PhaseProfiler(tracer=tracer)
    context = setup.context(path)
    hierarchy = setup.hierarchy("lru" if policy == "app-aware" else policy)
    with profiler.span("replay"):
        if policy == "app-aware":
            result = setup.optimizer().run(
                context, hierarchy, tracer=tracer, registry=registry, profiler=profiler
            )
        else:
            result = run_baseline(
                context, hierarchy, tracer=tracer, registry=registry, profiler=profiler
            )

    summary = aggregate(tracer.events())
    precision = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_evaluated_total")
    )
    recall = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_demand_window_total")
    )
    return {
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
        "derived": {
            "prefetch_precision": precision,
            "prefetch_recall": recall,
            "fetch_latency_seconds": _histogram_percentiles(
                registry, "fetch_latency_seconds"
            ),
            "frame_time_seconds": _histogram_percentiles(registry, "frame_time_seconds"),
        },
        "metrics": registry.snapshot(),
        "trace": {
            **tracer.drop_stats(),
            "total_bytes": summary.total_bytes,
            "ledger_agrees": (
                tracer.n_dropped == 0
                and float(summary.total_bytes) == float(result.extras["bytes_moved"])
            ),
        },
        "phases": profiler.report(),
    }


def run_bench(
    config: Optional[BenchConfig] = None,
    label: str = "local",
    quick: bool = False,
    progress=None,
) -> Dict[str, object]:
    """Run the pinned suite; returns the JSON-ready snapshot document.

    ``progress`` is an optional ``str -> None`` callback (the CLI passes
    ``print``) invoked before each phase.
    """
    if config is None:
        config = BenchConfig.quick() if quick else BenchConfig()
    notify = progress if progress is not None else (lambda msg: None)

    suite_profiler = PhaseProfiler()
    with suite_profiler.span("bench"):
        notify(f"setup: {config.dataset}, ~{config.blocks} blocks, {config.steps} steps")
        with suite_profiler.span("setup"):
            setup = ExperimentSetup.for_dataset(
                config.dataset,
                target_n_blocks=config.blocks,
                scale=config.scale,
                cache_ratio=config.cache_ratio,
                sampling=SamplingConfig(
                    n_directions=config.n_directions, n_distances=config.n_distances
                ),
                seed=config.seed,
            )
        notify("building T_visible / T_important tables")
        with suite_profiler.span("table_build"):
            setup.importance_table  # noqa: B018 - builds and caches
            setup.visible_table  # noqa: B018 - builds and caches

        runs: Dict[str, Dict[str, object]] = {}
        for path_name, path in _paths(config, setup.view_angle_deg).items():
            for policy in ("lru", "app-aware"):
                key = f"{path_name}/{policy}"
                notify(f"run: {key}")
                with suite_profiler.span(f"run {path_name}:{policy}"):
                    runs[key] = _run_one(setup, path, policy, config)

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "config": asdict(config),
        "runs": runs,
        "phases": suite_profiler.report(),
    }


def write_bench(doc: Dict[str, object], out_dir: PathLike = ".") -> Path:
    """Write ``BENCH_<label>.json`` under ``out_dir``; returns the path."""
    label = str(doc["label"]).replace("/", "-")
    path = Path(out_dir) / f"BENCH_{label}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench(path: PathLike) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {BENCH_SCHEMA_VERSION}"
        )
    return doc


# -- comparison ---------------------------------------------------------------

#: metric suffix -> direction ("lower" = increases are regressions).
_SUMMARY_METRICS = {
    "total_miss_rate": "lower",
    "fast_miss_rate": "lower",
    "io_time_s": "lower",
    "total_time_s": "lower",
    "bytes_moved": "lower",
}
_DERIVED_METRICS = {
    "prefetch_precision": "higher",
    "prefetch_recall": "higher",
}


def comparable_metrics(doc: Dict[str, object]) -> Dict[str, Tuple[float, str]]:
    """Flatten a snapshot to ``{metric-name: (value, direction)}``.

    Only simulated-clock quantities are included — wall-clock phases and
    event counts are reported but never compared, so a comparison of two
    runs of identical code is machine-independent.
    """
    out: Dict[str, Tuple[float, str]] = {}
    for run_key, run in sorted(doc["runs"].items()):
        summary = run["summary"]
        for name, direction in _SUMMARY_METRICS.items():
            value = summary.get(name)
            if isinstance(value, (int, float)):
                out[f"{run_key}.{name}"] = (float(value), direction)
        derived = run.get("derived", {})
        for name, direction in _DERIVED_METRICS.items():
            value = derived.get(name)
            if isinstance(value, (int, float)):
                out[f"{run_key}.{name}"] = (float(value), direction)
        for hist_name in ("fetch_latency_seconds", "frame_time_seconds"):
            for labels, row in sorted(derived.get(hist_name, {}).items()):
                for pct in ("p50", "p95", "p99"):
                    value = row.get(pct)
                    if isinstance(value, (int, float)):
                        out[f"{run_key}.{hist_name}{{{labels}}}.{pct}"] = (
                            float(value),
                            "lower",
                        )
        drops = run.get("trace", {}).get("n_dropped")
        if isinstance(drops, int):
            out[f"{run_key}.trace.n_dropped"] = (float(drops), "lower")
    return out


def compare_bench(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.10,
    abs_floor: float = 1e-12,
) -> List[Dict[str, object]]:
    """Diff two snapshots; one row per metric present in both.

    A metric regresses when it moves in its bad direction by more than
    ``threshold`` (relative, against ``max(|old|, abs_floor)``).  Metrics
    missing from either side are reported with status ``"missing"`` and
    do not regress.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_metrics = comparable_metrics(old)
    new_metrics = comparable_metrics(new)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old_metrics) | set(new_metrics)):
        if name not in old_metrics or name not in new_metrics:
            rows.append({"metric": name, "status": "missing",
                         "old": old_metrics.get(name, (None,))[0],
                         "new": new_metrics.get(name, (None,))[0]})
            continue
        old_value, direction = old_metrics[name]
        new_value = new_metrics[name][0]
        denom = max(abs(old_value), abs_floor)
        change = (new_value - old_value) / denom
        bad = change > threshold if direction == "lower" else change < -threshold
        good = change < 0 if direction == "lower" else change > 0
        rows.append({
            "metric": name,
            "old": old_value,
            "new": new_value,
            "rel_change": change,
            "direction": direction,
            "status": "regression" if bad else ("improved" if good and change != 0 else "ok"),
        })
    return rows


def format_comparison(rows: List[Dict[str, object]], verbose: bool = False) -> str:
    """Human-readable comparison; non-ok rows always shown."""
    lines = [f"{'metric':<58} {'old':>12} {'new':>12} {'change':>9}  status"]
    lines.append("-" * len(lines[0]))
    shown = 0
    for row in rows:
        if row["status"] == "ok" and not verbose:
            continue
        shown += 1
        old = "-" if row.get("old") is None else f"{row['old']:.6g}"
        new = "-" if row.get("new") is None else f"{row['new']:.6g}"
        change = (
            f"{row['rel_change']:+.1%}" if "rel_change" in row else "-"
        )
        lines.append(f"{row['metric']:<58} {old:>12} {new:>12} {change:>9}  {row['status']}")
    n_reg = sum(1 for r in rows if r["status"] == "regression")
    lines.append(
        f"{len(rows)} metrics compared, {n_reg} regression(s), "
        f"{len(rows) - shown} unchanged/ok hidden"
        if not verbose
        else f"{len(rows)} metrics compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)
