"""The ``repro bench`` regression harness.

Runs a pinned suite — two camera paths (an orbit and a zoom) × two
policies (the LRU baseline and the paper's app-aware optimizer) on one
synthetic dataset — with the metrics registry, event tracer, and phase
profiler all attached, and emits a schema-versioned ``BENCH_<label>.json``
snapshot.  Everything the comparison looks at is *simulated*-clock
derived, so two snapshots of the same code are bit-identical regardless
of the machine; wall-clock phase timings (and the per-run ``wall_s`` /
suite ``suite_wall_s`` fields) ride along for human inspection but are
never compared.

Cells run on the batched replay engine with exact per-block trace
emission (``engine="scalar"`` replays the per-block compatibility path —
every simulated metric is identical by construction); eviction forensics
(:class:`~repro.storage.forensics.EvictionLineage`) and the per-frame
latency attribution of :mod:`repro.obs.attribution` ride along in each
run's informational ``attribution`` section.  ``workers > 1``
fans the four independent cells out over worker processes, each building
its own tables from the pinned config, so snapshots are byte-identical
regardless of parallelism.

``compare_bench`` diffs two snapshots against per-direction relative
thresholds and reports regressions (``repro bench --compare`` exits
non-zero when any metric regresses past threshold).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.camera.path import spherical_path, zoom_path
from repro.runtime.config import REPLAY_ENGINES
from repro.runtime.drivers import run_baseline
from repro.experiments.gating import (
    WALL_THRESHOLD_FACTOR,
    GateRule,
    MetricSet,
    compare_metric_sets,
    flatten_cluster_section,
    flatten_multi_tenant,
    flatten_run_summary,
)
from repro.experiments.matrix import (
    MatrixSpec,
    execute_cells,
    expand_cells,
    run_matrix_cell,
    setup_for,
)
from repro.experiments.runner import ExperimentSetup
from repro.faults import FAULT_PROFILES, FaultInjector, FaultPlan
from repro.obs.attribution import attribute_run
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.storage.forensics import EvictionLineage, optimal_miss_count
from repro.trace import Tracer, aggregate
from repro.utils.rng import derive_seed

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "WALL_THRESHOLD_FACTOR",
    "BENCH_CELLS",
    "PROFILE_CELL",
    "BenchConfig",
    "bench_matrix_spec",
    "derive_fault_seed",
    "run_bench",
    "write_bench",
    "load_bench",
    "comparable_metrics",
    "compare_bench",
    "format_comparison",
]

#: Bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

PathLike = Union[str, Path]


@dataclass(frozen=True)
class BenchConfig:
    """Pinned parameters of the bench suite (recorded into the snapshot)."""

    dataset: str = "3d_ball"
    blocks: int = 256
    scale: float = 0.08
    steps: int = 40
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 64
    n_distances: int = 2
    degrees_per_step: float = 5.0
    tracer_capacity: int = 500_000
    #: Named fault profile (see :data:`repro.faults.FAULT_PROFILES`);
    #: ``"none"`` keeps the fault-free fast path and a byte-identical
    #: snapshot layout (no ``faults`` section in the runs).
    faults: str = "none"
    fault_seed: int = 0

    @classmethod
    def quick(cls) -> "BenchConfig":
        """The CI-smoke variant: same shape, a fraction of the work."""
        return cls(blocks=64, scale=0.04, steps=8, n_directions=16, n_distances=1)


def _paths(config: BenchConfig, view_angle_deg: float):
    return {
        "orbit": spherical_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            distance=2.5,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
        "zoom": zoom_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
    }


def _ratio(numer: Optional[object], denom: Optional[object]) -> Optional[float]:
    if numer is None or denom is None or not denom.value:
        return None
    return numer.value / denom.value


def _histogram_percentiles(registry: MetricsRegistry, name: str) -> Dict[str, Dict[str, float]]:
    """``{flat-label: {count, p50, p95, p99}}`` for every histogram ``name``."""
    out: Dict[str, Dict[str, float]] = {}
    for metric in registry.metrics():
        if isinstance(metric, Histogram) and metric.name == name:
            key = ",".join(f"{k}={v}" for k, v in metric.labels) or "all"
            out[key] = {"count": metric.count, **metric.percentiles()}
    return out


#: The pinned (path, policy) cells of the suite, in run order.
BENCH_CELLS: Tuple[Tuple[str, str], ...] = (
    ("orbit", "lru"),
    ("orbit", "app-aware"),
    ("zoom", "lru"),
    ("zoom", "app-aware"),
)

#: The cell ``repro bench --profile`` re-runs with a span timeline kept.
PROFILE_CELL = "orbit/app-aware"


def derive_fault_seed(base: int, index: int) -> int:
    """Deterministic per-cell fault seed: hash of ``(base, cell index)``.

    Every suite cell must see a *distinct* fault draw (seeding each cell's
    injector with the raw base seed would fire the identical fault
    schedule into four different workloads), yet the derivation has to be
    a pure function of the pinned config so serial and ``--workers N``
    runs produce byte-identical snapshots.  Delegates to the shared
    :func:`repro.utils.rng.derive_seed` (SeedSequence spawn-stable
    hashing), which the matrix runtime uses for the same purpose.
    """
    return derive_seed(int(base), int(index))


def _run_one(
    setup: ExperimentSetup,
    path,
    policy: str,
    config: BenchConfig,
    engine: str = "batched",
    profiler: Optional[PhaseProfiler] = None,
    cell_index: int = 0,
) -> Dict[str, object]:
    """One (path, policy) cell: run instrumented, snapshot everything."""
    t0 = time.perf_counter()
    registry = MetricsRegistry()
    tracer = Tracer(capacity=config.tracer_capacity)
    if profiler is None:
        profiler = PhaseProfiler(tracer=tracer)
    context = setup.context(path)
    hierarchy = setup.hierarchy("lru" if policy == "app-aware" else policy)
    # Per-block trace emission on both engines: the attribution section
    # replays the engine's exact per-fetch time folds from the event
    # stream, which an aggregated (count > 1) roll-up cannot support.
    hierarchy.aggregate_trace = False
    lineage = EvictionLineage()
    hierarchy.set_forensics(lineage)
    injector = None
    derived_seed = derive_fault_seed(config.fault_seed, cell_index)
    if config.faults != "none":
        injector = FaultInjector(FaultPlan.from_profile(config.faults, seed=derived_seed))
        hierarchy.set_fault_injector(injector)
    with profiler.span("replay"):
        if policy == "app-aware":
            result = setup.optimizer().run(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )
        else:
            result = run_baseline(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )

    summary = aggregate(tracer.events())
    precision = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_evaluated_total")
    )
    recall = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_demand_window_total")
    )
    run: Dict[str, object] = {
        "engine": engine,
        "wall_s": time.perf_counter() - t0,  # informational; never compared
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
        "derived": {
            "prefetch_precision": precision,
            "prefetch_recall": recall,
            "fetch_latency_seconds": _histogram_percentiles(
                registry, "fetch_latency_seconds"
            ),
            "frame_time_seconds": _histogram_percentiles(registry, "frame_time_seconds"),
        },
        "metrics": registry.snapshot(),
        "trace": {
            **tracer.drop_stats(),
            "total_bytes": summary.total_bytes,
            "ledger_agrees": (
                tracer.n_dropped == 0
                and float(summary.total_bytes) == float(result.extras["bytes_moved"])
            ),
        },
        "phases": profiler.report(),
    }
    # Forensics + per-frame latency attribution (informational: the
    # comparison allowlist never reads this section).  The regret is the
    # demand stream's actual fast-level misses vs the Belady offline bound
    # over the same keys and capacity; a warm importance preload can make
    # it negative (see repro.storage.forensics), so it is reported raw.
    attribution = attribute_run(
        tracer.events(), result.steps, drop_stats=tracer.drop_stats()
    )
    capacity = hierarchy.fastest.capacity
    actual_misses = hierarchy.fastest.stats.misses
    belady_misses = optimal_miss_count(
        [int(k) for k in context.demand_trace()], capacity
    )
    doc = attribution.as_dict(include_frames=True)
    doc["forensics"] = lineage.as_dict()
    doc["regret"] = {
        "policy": policy,
        "fast_capacity": capacity,
        "actual_fast_misses": int(actual_misses),
        "belady_misses": int(belady_misses),
        "regret": int(actual_misses) - int(belady_misses),
    }
    run["attribution"] = doc
    if injector is not None:
        # Gated on the injector so fault-free snapshots stay byte-identical
        # to pre-faults baselines.
        run["faults"] = {
            "profile": config.faults,
            "seed": config.fault_seed,
            "derived_seed": derived_seed,
            "stats": injector.stats.as_dict(),
            "trace": {
                "faults": summary.total_faults,
                "retries": summary.total_retries,
                "degraded": summary.total_degraded,
                "fault_time_s": summary.fault_time_s,
            },
        }
    return run


def bench_matrix_spec(config: BenchConfig, engine: str = "batched") -> MatrixSpec:
    """The bench suite as a matrix spec.

    Expanding this spec reproduces :data:`BENCH_CELLS` exactly — same
    keys, same run order, same per-cell fault-seed derivation — so the
    committed ``specs/bench*.toml`` files and ``repro bench`` are two
    spellings of one suite (a test pins them equal).
    """
    return MatrixSpec(
        label="bench",
        runner="bench-cell",
        base={
            "dataset": config.dataset,
            "blocks": config.blocks,
            "scale": config.scale,
            "steps": config.steps,
            "cache_ratio": config.cache_ratio,
            "seed": config.seed,
            "degrees": (config.degrees_per_step, config.degrees_per_step),
            "engine": engine,
            "faults": config.faults,
            "fault_seed": config.fault_seed,
        },
        axes={
            "workload": ("spherical", "zoom"),
            "policy": ("lru", "app-aware"),
        },
        labels={"workload": {"spherical": "orbit"}},
        setup={
            "n_directions": config.n_directions,
            "n_distances": config.n_distances,
            "tracer_capacity": config.tracer_capacity,
        },
        figures=(
            {
                "x": "policy",
                "metric": "total_miss_rate",
                "group_by": "workload",
                "title": "miss rate: LRU baseline vs app-aware",
            },
        ),
    )


def run_bench(
    config: Optional[BenchConfig] = None,
    label: str = "local",
    quick: bool = False,
    progress=None,
    workers: int = 1,
    engine: str = "batched",
    profile_path: Optional[PathLike] = None,
    faults: Optional[str] = None,
    fault_seed: Optional[int] = None,
) -> Dict[str, object]:
    """Run the pinned suite; returns the JSON-ready snapshot document.

    ``progress`` is an optional ``str -> None`` callback (the CLI passes
    ``print``) invoked before each phase.  ``workers > 1`` runs the four
    cells in that many worker processes (capped at the cell count); every
    simulated metric is identical to a serial run.  ``engine`` selects the
    replay fast path (``"batched"``, the default) or the per-block
    ``"scalar"`` compatibility path.  ``profile_path``, when given,
    re-runs the :data:`PROFILE_CELL` with a span timeline kept and writes
    a Chrome-trace JSON there.

    ``faults``/``fault_seed`` (when not None) override the config's fault
    profile: each cell then runs with a seeded
    :class:`~repro.faults.FaultInjector` installed on its hierarchy, and
    every run grows a ``faults`` section (injector stats + trace fault
    totals).  The default (``"none"``) keeps fault-free snapshots
    byte-identical to pre-faults baselines.
    """
    if config is None:
        config = BenchConfig.quick() if quick else BenchConfig()
    if faults is not None or fault_seed is not None:
        config = replace(
            config,
            faults=faults if faults is not None else config.faults,
            fault_seed=fault_seed if fault_seed is not None else config.fault_seed,
        )
    if config.faults not in FAULT_PROFILES:
        raise ValueError(
            f"unknown fault profile {config.faults!r}; expected one of {FAULT_PROFILES}"
        )
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {REPLAY_ENGINES}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    notify = progress if progress is not None else (lambda msg: None)
    t0 = time.perf_counter()

    # The suite is a committed matrix spec; expanding it reproduces the
    # pinned BENCH_CELLS keys, order, and per-cell seed derivation.
    spec = bench_matrix_spec(config, engine=engine)
    cells = expand_cells(spec)

    suite_profiler = PhaseProfiler()
    with suite_profiler.span("bench"):
        notify(f"setup: {config.dataset}, ~{config.blocks} blocks, {config.steps} steps")
        with suite_profiler.span("setup"):
            setup = setup_for(cells[0].config, spec.setup)

        runs: Dict[str, Dict[str, object]] = {}
        n_workers = min(workers, len(cells))
        if n_workers > 1:
            notify(f"runs: {len(cells)} cells on {n_workers} workers")
            with suite_profiler.span("runs"):
                runs = execute_cells(
                    cells, spec.runner, spec.setup, workers=n_workers, progress=notify
                )
        else:
            notify("building T_visible / T_important tables")
            with suite_profiler.span("table_build"):
                setup.importance_table  # noqa: B018 - builds and caches
                setup.visible_table  # noqa: B018 - builds and caches
            for cell in cells:
                notify(f"run: {cell.key}")
                with suite_profiler.span(f"run {cell.key.replace('/', ':')}"):
                    runs[cell.key] = run_matrix_cell(cell, spec)

        # The multi-tenant serving scenario: a pinned 8-session
        # orbit/zoom/flythrough mix over one shared hierarchy with equal
        # tenant quotas, capped so the DRAM level can hold at least one
        # block per tenant on the tiniest configs.  Every number in it is
        # simulated-clock derived, so per-tenant tail latencies and the
        # fairness gauge gate the same way the single-stream cells do.
        from repro.experiments.loadgen import LoadGenConfig, run_load

        dram_capacity = max(
            1, int(round(setup.grid.n_blocks * config.cache_ratio**2))
        )
        n_sessions = min(4 if quick else 8, dram_capacity)
        notify(f"multi-tenant: {n_sessions}-session mixed serve scenario")
        with suite_profiler.span("multi_tenant"):
            serve_doc = run_load(
                LoadGenConfig(
                    n_sessions=n_sessions,
                    steps=6 if quick else 12,
                    blocks=config.blocks,
                    scale=config.scale,
                    cache_ratio=config.cache_ratio,
                    seed=config.seed,
                ),
                engine=engine,
                attribution=True,
            )
        multi_tenant = {
            "config": serve_doc["config"],
            "workloads": serve_doc["workloads"],
            **serve_doc["multi_tenant"],
        }

    doc: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "engine": engine,
        "workers": n_workers,
        "config": asdict(config),
        "runs": runs,
        "multi_tenant": multi_tenant,
        "suite_wall_s": time.perf_counter() - t0,  # informational; never compared
        "phases": suite_profiler.report(),
    }

    if profile_path is not None:
        notify(f"profile: re-running {PROFILE_CELL} with span timeline")
        path_name, policy = PROFILE_CELL.split("/")
        run_profiler = PhaseProfiler(keep_timeline=True)
        _run_one(
            setup,
            _paths(config, setup.view_angle_deg)[path_name],
            policy,
            config,
            engine=engine,
            profiler=run_profiler,
            cell_index=BENCH_CELLS.index((path_name, policy)),
        )
        out = run_profiler.write_chrome_trace(profile_path)
        doc["profile"] = {"cell": PROFILE_CELL, "path": str(out)}

    return doc


def write_bench(doc: Dict[str, object], out_dir: PathLike = ".") -> Path:
    """Write ``BENCH_<label>.json`` under ``out_dir``; returns the path."""
    label = str(doc["label"]).replace("/", "-")
    path = Path(out_dir) / f"BENCH_{label}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench(path: PathLike) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {BENCH_SCHEMA_VERSION}"
        )
    return doc


# -- comparison ---------------------------------------------------------------
# The flattening/threshold logic lives in repro.experiments.gating (shared
# with the serve gate and the matrix runner); this section translates the
# canonical metric sets and rows back into the bench tier's historical
# shapes so committed baselines keep gating with bit-identical verdicts.

#: Wall-clock metrics included in the comparison — fullscale tier only.
_FULLSCALE_WALL_METRICS = ("importance_wall_s", "table_build_wall_s", "peak_rss_bytes")


def _gating_metric_set(doc: Dict[str, object]) -> MetricSet:
    """Flatten a bench snapshot (any tier) into a gating metric set."""
    out: MetricSet = {}
    tier = doc.get("tier")
    if tier == "fullscale":
        section = doc.get("fullscale", {})
        for name in _FULLSCALE_WALL_METRICS:
            value = section.get(name)
            if isinstance(value, (int, float)):
                out[f"fullscale.{name}"] = (
                    float(value), GateRule("lower", scale=WALL_THRESHOLD_FACTOR),
                )
    if tier == "cluster":
        # Cluster-tier network ledger: all simulated-clock/byte quantities,
        # deterministic for pinned config, so they gate at the sim threshold.
        out.update(flatten_cluster_section(doc.get("cluster", {})))
    wall_metrics = ("wall_s", "per_step_wall_s") if tier == "fullscale" else ()
    for run_key, run in sorted(doc["runs"].items()):
        out.update(flatten_run_summary(run, run_key, wall_metrics=wall_metrics))
    # Multi-tenant serving metrics (absent from pre-multi-tenant snapshots:
    # they then report "missing" on one side and never regress).  The bench
    # tier gates fairness/cross-evictions relatively, unlike the serve gate.
    mt = doc.get("multi_tenant")
    if mt:
        out.update(flatten_multi_tenant(mt, relative=True))
    return out


def comparable_metrics(doc: Dict[str, object]) -> Dict[str, Tuple[float, str]]:
    """Flatten a snapshot to ``{metric-name: (value, direction)}``.

    For the default tier, only simulated-clock quantities are included —
    wall-clock phases and event counts are reported but never compared, so
    a comparison of two runs of identical code is machine-independent.
    Fullscale-tier snapshots (``doc["tier"] == "fullscale"``) additionally
    compare their wall-clock and peak-RSS metrics, which
    :func:`compare_bench` holds to the widened
    ``threshold * WALL_THRESHOLD_FACTOR``.
    """
    return {
        name: (value, rule.direction)
        for name, (value, rule) in _gating_metric_set(doc).items()
    }


def compare_bench(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.10,
    abs_floor: float = 1e-12,
) -> List[Dict[str, object]]:
    """Diff two snapshots; one row per metric present in both.

    A metric regresses when it moves in its bad direction by more than
    ``threshold`` (relative, against ``max(|old|, abs_floor)``).  Metrics
    missing from either side are reported with status ``"missing"`` and
    do not regress.  Wall-clock/RSS metrics (present in fullscale-tier
    snapshots only) regress at ``threshold * WALL_THRESHOLD_FACTOR`` —
    they ratchet raw speed while tolerating machine noise.
    """
    rows = compare_metric_sets(
        _gating_metric_set(old), _gating_metric_set(new),
        threshold=threshold, abs_floor=abs_floor,
    )
    out: List[Dict[str, object]] = []
    for row in rows:
        if row["status"] == "missing":
            out.append(dict(row))
        else:
            out.append({
                "metric": row["metric"],
                "old": row["old"],
                "new": row["new"],
                "rel_change": row["change"],
                "direction": row["direction"],
                "status": row["status"],
            })
    return out


def format_comparison(rows: List[Dict[str, object]], verbose: bool = False) -> str:
    """Human-readable comparison; non-ok rows always shown."""
    lines = [f"{'metric':<58} {'old':>12} {'new':>12} {'change':>9}  status"]
    lines.append("-" * len(lines[0]))
    shown = 0
    for row in rows:
        if row["status"] == "ok" and not verbose:
            continue
        shown += 1
        old = "-" if row.get("old") is None else f"{row['old']:.6g}"
        new = "-" if row.get("new") is None else f"{row['new']:.6g}"
        change = (
            f"{row['rel_change']:+.1%}" if "rel_change" in row else "-"
        )
        lines.append(f"{row['metric']:<58} {old:>12} {new:>12} {change:>9}  {row['status']}")
    n_reg = sum(1 for r in rows if r["status"] == "regression")
    lines.append(
        f"{len(rows)} metrics compared, {n_reg} regression(s), "
        f"{len(rows) - shown} unchanged/ok hidden"
        if not verbose
        else f"{len(rows)} metrics compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)
