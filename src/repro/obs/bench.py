"""The ``repro bench`` regression harness.

Runs a pinned suite — two camera paths (an orbit and a zoom) × two
policies (the LRU baseline and the paper's app-aware optimizer) on one
synthetic dataset — with the metrics registry, event tracer, and phase
profiler all attached, and emits a schema-versioned ``BENCH_<label>.json``
snapshot.  Everything the comparison looks at is *simulated*-clock
derived, so two snapshots of the same code are bit-identical regardless
of the machine; wall-clock phase timings (and the per-run ``wall_s`` /
suite ``suite_wall_s`` fields) ride along for human inspection but are
never compared.

Cells run on the batched replay engine with exact per-block trace
emission (``engine="scalar"`` replays the per-block compatibility path —
every simulated metric is identical by construction); eviction forensics
(:class:`~repro.storage.forensics.EvictionLineage`) and the per-frame
latency attribution of :mod:`repro.obs.attribution` ride along in each
run's informational ``attribution`` section.  ``workers > 1``
fans the four independent cells out over worker processes, each building
its own tables from the pinned config, so snapshots are byte-identical
regardless of parallelism.

``compare_bench`` diffs two snapshots against per-direction relative
thresholds and reports regressions (``repro bench --compare`` exits
non-zero when any metric regresses past threshold).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.camera.path import spherical_path, zoom_path
from repro.camera.sampling import SamplingConfig
from repro.runtime.config import REPLAY_ENGINES
from repro.runtime.drivers import run_baseline
from repro.experiments.runner import ExperimentSetup
from repro.faults import FAULT_PROFILES, FaultInjector, FaultPlan
from repro.obs.attribution import attribute_run
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.storage.forensics import EvictionLineage, optimal_miss_count
from repro.trace import Tracer, aggregate

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "WALL_THRESHOLD_FACTOR",
    "BENCH_CELLS",
    "PROFILE_CELL",
    "BenchConfig",
    "derive_fault_seed",
    "run_bench",
    "write_bench",
    "load_bench",
    "comparable_metrics",
    "compare_bench",
    "format_comparison",
]

#: Bump when the BENCH_*.json layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Wall-clock/RSS metrics (fullscale tier only) are machine-noisy; they are
#: compared at ``threshold * WALL_THRESHOLD_FACTOR`` so same-machine CI
#: catches multi-x slowdowns without flaking on scheduler jitter.
WALL_THRESHOLD_FACTOR = 4.0

PathLike = Union[str, Path]


@dataclass(frozen=True)
class BenchConfig:
    """Pinned parameters of the bench suite (recorded into the snapshot)."""

    dataset: str = "3d_ball"
    blocks: int = 256
    scale: float = 0.08
    steps: int = 40
    cache_ratio: float = 0.5
    seed: int = 0
    n_directions: int = 64
    n_distances: int = 2
    degrees_per_step: float = 5.0
    tracer_capacity: int = 500_000
    #: Named fault profile (see :data:`repro.faults.FAULT_PROFILES`);
    #: ``"none"`` keeps the fault-free fast path and a byte-identical
    #: snapshot layout (no ``faults`` section in the runs).
    faults: str = "none"
    fault_seed: int = 0

    @classmethod
    def quick(cls) -> "BenchConfig":
        """The CI-smoke variant: same shape, a fraction of the work."""
        return cls(blocks=64, scale=0.04, steps=8, n_directions=16, n_distances=1)


def _paths(config: BenchConfig, view_angle_deg: float):
    return {
        "orbit": spherical_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            distance=2.5,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
        "zoom": zoom_path(
            config.steps,
            degrees_per_step=config.degrees_per_step,
            view_angle_deg=view_angle_deg,
            seed=config.seed,
        ),
    }


def _ratio(numer: Optional[object], denom: Optional[object]) -> Optional[float]:
    if numer is None or denom is None or not denom.value:
        return None
    return numer.value / denom.value


def _histogram_percentiles(registry: MetricsRegistry, name: str) -> Dict[str, Dict[str, float]]:
    """``{flat-label: {count, p50, p95, p99}}`` for every histogram ``name``."""
    out: Dict[str, Dict[str, float]] = {}
    for metric in registry.metrics():
        if isinstance(metric, Histogram) and metric.name == name:
            key = ",".join(f"{k}={v}" for k, v in metric.labels) or "all"
            out[key] = {"count": metric.count, **metric.percentiles()}
    return out


#: The pinned (path, policy) cells of the suite, in run order.
BENCH_CELLS: Tuple[Tuple[str, str], ...] = (
    ("orbit", "lru"),
    ("orbit", "app-aware"),
    ("zoom", "lru"),
    ("zoom", "app-aware"),
)

#: The cell ``repro bench --profile`` re-runs with a span timeline kept.
PROFILE_CELL = "orbit/app-aware"


def derive_fault_seed(base: int, index: int) -> int:
    """Deterministic per-cell fault seed: hash of ``(base, cell index)``.

    Every suite cell must see a *distinct* fault draw (seeding each cell's
    injector with the raw base seed would fire the identical fault
    schedule into four different workloads), yet the derivation has to be
    a pure function of the pinned config so serial and ``--workers N``
    runs produce byte-identical snapshots.  SeedSequence's spawn-stable
    hashing gives both.
    """
    import numpy as np

    seq = np.random.SeedSequence([int(base) & (2**63 - 1), int(index)])
    return int(seq.generate_state(1, dtype=np.uint64)[0] & (2**63 - 1))


def _run_one(
    setup: ExperimentSetup,
    path,
    policy: str,
    config: BenchConfig,
    engine: str = "batched",
    profiler: Optional[PhaseProfiler] = None,
    cell_index: int = 0,
) -> Dict[str, object]:
    """One (path, policy) cell: run instrumented, snapshot everything."""
    t0 = time.perf_counter()
    registry = MetricsRegistry()
    tracer = Tracer(capacity=config.tracer_capacity)
    if profiler is None:
        profiler = PhaseProfiler(tracer=tracer)
    context = setup.context(path)
    hierarchy = setup.hierarchy("lru" if policy == "app-aware" else policy)
    # Per-block trace emission on both engines: the attribution section
    # replays the engine's exact per-fetch time folds from the event
    # stream, which an aggregated (count > 1) roll-up cannot support.
    hierarchy.aggregate_trace = False
    lineage = EvictionLineage()
    hierarchy.set_forensics(lineage)
    injector = None
    derived_seed = derive_fault_seed(config.fault_seed, cell_index)
    if config.faults != "none":
        injector = FaultInjector(FaultPlan.from_profile(config.faults, seed=derived_seed))
        hierarchy.set_fault_injector(injector)
    with profiler.span("replay"):
        if policy == "app-aware":
            result = setup.optimizer().run(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )
        else:
            result = run_baseline(
                context, hierarchy, tracer=tracer, registry=registry,
                profiler=profiler, engine=engine,
            )

    summary = aggregate(tracer.events())
    precision = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_evaluated_total")
    )
    recall = _ratio(
        registry.get("prefetch_useful_total"), registry.get("prefetch_demand_window_total")
    )
    run: Dict[str, object] = {
        "engine": engine,
        "wall_s": time.perf_counter() - t0,  # informational; never compared
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
        "derived": {
            "prefetch_precision": precision,
            "prefetch_recall": recall,
            "fetch_latency_seconds": _histogram_percentiles(
                registry, "fetch_latency_seconds"
            ),
            "frame_time_seconds": _histogram_percentiles(registry, "frame_time_seconds"),
        },
        "metrics": registry.snapshot(),
        "trace": {
            **tracer.drop_stats(),
            "total_bytes": summary.total_bytes,
            "ledger_agrees": (
                tracer.n_dropped == 0
                and float(summary.total_bytes) == float(result.extras["bytes_moved"])
            ),
        },
        "phases": profiler.report(),
    }
    # Forensics + per-frame latency attribution (informational: the
    # comparison allowlist never reads this section).  The regret is the
    # demand stream's actual fast-level misses vs the Belady offline bound
    # over the same keys and capacity; a warm importance preload can make
    # it negative (see repro.storage.forensics), so it is reported raw.
    attribution = attribute_run(
        tracer.events(), result.steps, drop_stats=tracer.drop_stats()
    )
    capacity = hierarchy.fastest.capacity
    actual_misses = hierarchy.fastest.stats.misses
    belady_misses = optimal_miss_count(
        [int(k) for k in context.demand_trace()], capacity
    )
    doc = attribution.as_dict(include_frames=True)
    doc["forensics"] = lineage.as_dict()
    doc["regret"] = {
        "policy": policy,
        "fast_capacity": capacity,
        "actual_fast_misses": int(actual_misses),
        "belady_misses": int(belady_misses),
        "regret": int(actual_misses) - int(belady_misses),
    }
    run["attribution"] = doc
    if injector is not None:
        # Gated on the injector so fault-free snapshots stay byte-identical
        # to pre-faults baselines.
        run["faults"] = {
            "profile": config.faults,
            "seed": config.fault_seed,
            "derived_seed": derived_seed,
            "stats": injector.stats.as_dict(),
            "trace": {
                "faults": summary.total_faults,
                "retries": summary.total_retries,
                "degraded": summary.total_degraded,
                "fault_time_s": summary.fault_time_s,
            },
        }
    return run


def _build_setup(config: BenchConfig) -> ExperimentSetup:
    return ExperimentSetup.for_dataset(
        config.dataset,
        target_n_blocks=config.blocks,
        scale=config.scale,
        cache_ratio=config.cache_ratio,
        sampling=SamplingConfig(
            n_directions=config.n_directions, n_distances=config.n_distances
        ),
        seed=config.seed,
    )


# -- worker-process plumbing --------------------------------------------------
# Each worker builds the full setup (dataset + tables) once from the pinned
# config in its initializer, then serves cells from it.  Nothing non-trivial
# crosses the process boundary: the config in, plain-JSON run dicts out, so
# snapshots are byte-identical to a serial run.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(config: BenchConfig) -> None:
    setup = _build_setup(config)
    setup.importance_table  # noqa: B018 - builds and caches
    setup.visible_table  # noqa: B018 - builds and caches
    _WORKER_STATE["config"] = config
    _WORKER_STATE["setup"] = setup


def _worker_cell(cell: Tuple[int, str, str, str]) -> Tuple[str, Dict[str, object]]:
    index, path_name, policy, engine = cell
    config: BenchConfig = _WORKER_STATE["config"]  # type: ignore[assignment]
    setup: ExperimentSetup = _WORKER_STATE["setup"]  # type: ignore[assignment]
    path = _paths(config, setup.view_angle_deg)[path_name]
    return f"{path_name}/{policy}", _run_one(
        setup, path, policy, config, engine=engine, cell_index=index
    )


def run_bench(
    config: Optional[BenchConfig] = None,
    label: str = "local",
    quick: bool = False,
    progress=None,
    workers: int = 1,
    engine: str = "batched",
    profile_path: Optional[PathLike] = None,
    faults: Optional[str] = None,
    fault_seed: Optional[int] = None,
) -> Dict[str, object]:
    """Run the pinned suite; returns the JSON-ready snapshot document.

    ``progress`` is an optional ``str -> None`` callback (the CLI passes
    ``print``) invoked before each phase.  ``workers > 1`` runs the four
    cells in that many worker processes (capped at the cell count); every
    simulated metric is identical to a serial run.  ``engine`` selects the
    replay fast path (``"batched"``, the default) or the per-block
    ``"scalar"`` compatibility path.  ``profile_path``, when given,
    re-runs the :data:`PROFILE_CELL` with a span timeline kept and writes
    a Chrome-trace JSON there.

    ``faults``/``fault_seed`` (when not None) override the config's fault
    profile: each cell then runs with a seeded
    :class:`~repro.faults.FaultInjector` installed on its hierarchy, and
    every run grows a ``faults`` section (injector stats + trace fault
    totals).  The default (``"none"``) keeps fault-free snapshots
    byte-identical to pre-faults baselines.
    """
    if config is None:
        config = BenchConfig.quick() if quick else BenchConfig()
    if faults is not None or fault_seed is not None:
        config = replace(
            config,
            faults=faults if faults is not None else config.faults,
            fault_seed=fault_seed if fault_seed is not None else config.fault_seed,
        )
    if config.faults not in FAULT_PROFILES:
        raise ValueError(
            f"unknown fault profile {config.faults!r}; expected one of {FAULT_PROFILES}"
        )
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {REPLAY_ENGINES}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    notify = progress if progress is not None else (lambda msg: None)
    t0 = time.perf_counter()

    suite_profiler = PhaseProfiler()
    with suite_profiler.span("bench"):
        notify(f"setup: {config.dataset}, ~{config.blocks} blocks, {config.steps} steps")
        with suite_profiler.span("setup"):
            setup = _build_setup(config)

        runs: Dict[str, Dict[str, object]] = {}
        n_workers = min(workers, len(BENCH_CELLS))
        if n_workers > 1:
            notify(f"runs: {len(BENCH_CELLS)} cells on {n_workers} workers")
            cells = [(i, p, pol, engine) for i, (p, pol) in enumerate(BENCH_CELLS)]
            with suite_profiler.span("runs"):
                with ProcessPoolExecutor(
                    max_workers=n_workers,
                    initializer=_init_worker,
                    initargs=(config,),
                ) as pool:
                    for key, run in pool.map(_worker_cell, cells):
                        notify(f"done: {key}")
                        runs[key] = run
        else:
            notify("building T_visible / T_important tables")
            with suite_profiler.span("table_build"):
                setup.importance_table  # noqa: B018 - builds and caches
                setup.visible_table  # noqa: B018 - builds and caches
            paths = _paths(config, setup.view_angle_deg)
            for index, (path_name, policy) in enumerate(BENCH_CELLS):
                key = f"{path_name}/{policy}"
                notify(f"run: {key}")
                with suite_profiler.span(f"run {path_name}:{policy}"):
                    runs[key] = _run_one(
                        setup, paths[path_name], policy, config,
                        engine=engine, cell_index=index,
                    )

        # The multi-tenant serving scenario: a pinned 8-session
        # orbit/zoom/flythrough mix over one shared hierarchy with equal
        # tenant quotas, capped so the DRAM level can hold at least one
        # block per tenant on the tiniest configs.  Every number in it is
        # simulated-clock derived, so per-tenant tail latencies and the
        # fairness gauge gate the same way the single-stream cells do.
        from repro.experiments.loadgen import LoadGenConfig, run_load

        dram_capacity = max(
            1, int(round(setup.grid.n_blocks * config.cache_ratio**2))
        )
        n_sessions = min(4 if quick else 8, dram_capacity)
        notify(f"multi-tenant: {n_sessions}-session mixed serve scenario")
        with suite_profiler.span("multi_tenant"):
            serve_doc = run_load(
                LoadGenConfig(
                    n_sessions=n_sessions,
                    steps=6 if quick else 12,
                    blocks=config.blocks,
                    scale=config.scale,
                    cache_ratio=config.cache_ratio,
                    seed=config.seed,
                ),
                engine=engine,
                attribution=True,
            )
        multi_tenant = {
            "config": serve_doc["config"],
            "workloads": serve_doc["workloads"],
            **serve_doc["multi_tenant"],
        }

    doc: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "engine": engine,
        "workers": n_workers,
        "config": asdict(config),
        "runs": runs,
        "multi_tenant": multi_tenant,
        "suite_wall_s": time.perf_counter() - t0,  # informational; never compared
        "phases": suite_profiler.report(),
    }

    if profile_path is not None:
        notify(f"profile: re-running {PROFILE_CELL} with span timeline")
        path_name, policy = PROFILE_CELL.split("/")
        run_profiler = PhaseProfiler(keep_timeline=True)
        _run_one(
            setup,
            _paths(config, setup.view_angle_deg)[path_name],
            policy,
            config,
            engine=engine,
            profiler=run_profiler,
            cell_index=BENCH_CELLS.index((path_name, policy)),
        )
        out = run_profiler.write_chrome_trace(profile_path)
        doc["profile"] = {"cell": PROFILE_CELL, "path": str(out)}

    return doc


def write_bench(doc: Dict[str, object], out_dir: PathLike = ".") -> Path:
    """Write ``BENCH_<label>.json`` under ``out_dir``; returns the path."""
    label = str(doc["label"]).replace("/", "-")
    path = Path(out_dir) / f"BENCH_{label}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench(path: PathLike) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {BENCH_SCHEMA_VERSION}"
        )
    return doc


# -- comparison ---------------------------------------------------------------

#: metric suffix -> direction ("lower" = increases are regressions).
_SUMMARY_METRICS = {
    "total_miss_rate": "lower",
    "fast_miss_rate": "lower",
    "io_time_s": "lower",
    "total_time_s": "lower",
    "bytes_moved": "lower",
}
_DERIVED_METRICS = {
    "prefetch_precision": "higher",
    "prefetch_recall": "higher",
}


#: Wall-clock metrics included in the comparison — fullscale tier only.
_FULLSCALE_WALL_METRICS = ("importance_wall_s", "table_build_wall_s", "peak_rss_bytes")


def _is_wall_metric(name: str) -> bool:
    return name.endswith("wall_s") or name.endswith("_rss_bytes")


def comparable_metrics(doc: Dict[str, object]) -> Dict[str, Tuple[float, str]]:
    """Flatten a snapshot to ``{metric-name: (value, direction)}``.

    For the default tier, only simulated-clock quantities are included —
    wall-clock phases and event counts are reported but never compared, so
    a comparison of two runs of identical code is machine-independent.
    Fullscale-tier snapshots (``doc["tier"] == "fullscale"``) additionally
    compare their wall-clock and peak-RSS metrics, which
    :func:`compare_bench` holds to the widened
    ``threshold * WALL_THRESHOLD_FACTOR``.
    """
    out: Dict[str, Tuple[float, str]] = {}
    fullscale_tier = doc.get("tier") == "fullscale"
    if fullscale_tier:
        section = doc.get("fullscale", {})
        for name in _FULLSCALE_WALL_METRICS:
            value = section.get(name)
            if isinstance(value, (int, float)):
                out[f"fullscale.{name}"] = (float(value), "lower")
    if doc.get("tier") == "cluster":
        # Cluster-tier network ledger: all simulated-clock/byte quantities,
        # deterministic for pinned config, so they gate at the sim threshold.
        section = doc.get("cluster", {})
        for route, value in sorted(section.get("split_bytes", {}).items()):
            if isinstance(value, (int, float)):
                out[f"cluster.split_bytes.{route}"] = (float(value), "lower")
        locality = section.get("shard_map", {}).get("locality_score")
        if isinstance(locality, (int, float)):
            out["cluster.locality_score"] = (float(locality), "higher")
        for name, direction in (
            ("peer_bytes", "lower"),
            ("peer_time_s", "lower"),
            ("peer_transfers", "lower"),
            ("link_fallbacks", "lower"),
            ("fallback_reads", "lower"),
        ):
            value = section.get(name)
            if isinstance(value, (int, float)):
                out[f"cluster.{name}"] = (float(value), direction)
        for link, row in sorted(section.get("links", {}).items()):
            for field in ("bytes", "time_s"):
                value = row.get(field)
                if isinstance(value, (int, float)):
                    out[f"cluster.link.{link}.{field}"] = (float(value), "lower")
    for run_key, run in sorted(doc["runs"].items()):
        summary = run["summary"]
        for name, direction in _SUMMARY_METRICS.items():
            value = summary.get(name)
            if isinstance(value, (int, float)):
                out[f"{run_key}.{name}"] = (float(value), direction)
        derived = run.get("derived", {})
        for name, direction in _DERIVED_METRICS.items():
            value = derived.get(name)
            if isinstance(value, (int, float)):
                out[f"{run_key}.{name}"] = (float(value), direction)
        for hist_name in ("fetch_latency_seconds", "frame_time_seconds"):
            for labels, row in sorted(derived.get(hist_name, {}).items()):
                for pct in ("p50", "p95", "p99"):
                    value = row.get(pct)
                    if isinstance(value, (int, float)):
                        out[f"{run_key}.{hist_name}{{{labels}}}.{pct}"] = (
                            float(value),
                            "lower",
                        )
        drops = run.get("trace", {}).get("n_dropped")
        if isinstance(drops, int):
            out[f"{run_key}.trace.n_dropped"] = (float(drops), "lower")
        if fullscale_tier:
            for name in ("wall_s", "per_step_wall_s"):
                value = run.get(name)
                if isinstance(value, (int, float)):
                    out[f"{run_key}.{name}"] = (float(value), "lower")
    # Multi-tenant serving metrics (absent from pre-multi-tenant snapshots:
    # they then report "missing" on one side and never regress).
    mt = doc.get("multi_tenant")
    if mt:
        frames = mt["frame_times"]
        out["multi_tenant.fairness_jain"] = (float(frames["fairness_jain"]), "higher")
        out["multi_tenant.cross_evictions"] = (float(mt["cross_evictions"]), "lower")
        out["multi_tenant.makespan_s"] = (float(mt["makespan_s"]), "lower")
        for pct in ("p50", "p95", "p99"):
            out[f"multi_tenant.pooled.{pct}"] = (float(frames["pooled"][pct]), "lower")
        for tenant, row in sorted(frames["per_tenant"].items()):
            for pct in ("p50", "p95", "p99"):
                out[f"multi_tenant.{tenant}.{pct}"] = (float(row[pct]), "lower")
    return out


def compare_bench(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.10,
    abs_floor: float = 1e-12,
) -> List[Dict[str, object]]:
    """Diff two snapshots; one row per metric present in both.

    A metric regresses when it moves in its bad direction by more than
    ``threshold`` (relative, against ``max(|old|, abs_floor)``).  Metrics
    missing from either side are reported with status ``"missing"`` and
    do not regress.  Wall-clock/RSS metrics (present in fullscale-tier
    snapshots only) regress at ``threshold * WALL_THRESHOLD_FACTOR`` —
    they ratchet raw speed while tolerating machine noise.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_metrics = comparable_metrics(old)
    new_metrics = comparable_metrics(new)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old_metrics) | set(new_metrics)):
        if name not in old_metrics or name not in new_metrics:
            rows.append({"metric": name, "status": "missing",
                         "old": old_metrics.get(name, (None,))[0],
                         "new": new_metrics.get(name, (None,))[0]})
            continue
        old_value, direction = old_metrics[name]
        new_value = new_metrics[name][0]
        denom = max(abs(old_value), abs_floor)
        change = (new_value - old_value) / denom
        limit = threshold * WALL_THRESHOLD_FACTOR if _is_wall_metric(name) else threshold
        bad = change > limit if direction == "lower" else change < -limit
        good = change < 0 if direction == "lower" else change > 0
        rows.append({
            "metric": name,
            "old": old_value,
            "new": new_value,
            "rel_change": change,
            "direction": direction,
            "status": "regression" if bad else ("improved" if good and change != 0 else "ok"),
        })
    return rows


def format_comparison(rows: List[Dict[str, object]], verbose: bool = False) -> str:
    """Human-readable comparison; non-ok rows always shown."""
    lines = [f"{'metric':<58} {'old':>12} {'new':>12} {'change':>9}  status"]
    lines.append("-" * len(lines[0]))
    shown = 0
    for row in rows:
        if row["status"] == "ok" and not verbose:
            continue
        shown += 1
        old = "-" if row.get("old") is None else f"{row['old']:.6g}"
        new = "-" if row.get("new") is None else f"{row['new']:.6g}"
        change = (
            f"{row['rel_change']:+.1%}" if "rel_change" in row else "-"
        )
        lines.append(f"{row['metric']:<58} {old:>12} {new:>12} {change:>9}  {row['status']}")
    n_reg = sum(1 for r in rows if r["status"] == "regression")
    lines.append(
        f"{len(rows)} metrics compared, {n_reg} regression(s), "
        f"{len(rows) - shown} unchanged/ok hidden"
        if not verbose
        else f"{len(rows)} metrics compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)
