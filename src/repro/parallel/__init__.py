"""Parallel data fetching and importance-aware distribution.

The paper's future work (§VI): "extend our method for parallel data
fetching and rendering ... study data partitioning and distribution
schemes by leveraging data importance information".  This package builds
both pieces:

- :class:`ParallelBlockFetcher` — a thread-pool fetcher over any
  :class:`~repro.volume.store.BlockStore`, overlapping real block reads
  (numpy releases the GIL during I/O and large copies);
- :func:`build_visible_table_parallel` — the Step 1 preprocessing
  parallelised over sample positions, bit-identical to the serial build;
- :func:`partition_by_importance` — distribute blocks across render nodes
  balancing total importance (greedy LPT), plus spatially-contiguous
  variants for comparison.
"""

from repro.parallel.fetcher import ParallelBlockFetcher
from repro.parallel.preprocess import build_visible_table_parallel
from repro.parallel.distribution import (
    partition_by_importance,
    partition_spatial,
    partition_stats,
)
from repro.parallel.multinode import MultiNodeResult, run_multinode

__all__ = [
    "ParallelBlockFetcher",
    "build_visible_table_parallel",
    "partition_by_importance",
    "partition_spatial",
    "partition_stats",
    "MultiNodeResult",
    "run_multinode",
]
