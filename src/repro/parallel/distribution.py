"""Importance-aware data distribution across render nodes.

The paper's future work proposes "data partitioning and distribution
schemes by leveraging data importance information" (§VI).  For parallel
rendering, each node owns a subset of blocks; balanced *importance* (not
just block count) balances the expected interactive load, because the
important blocks are the ones users look at and re-fetch.

Two schemes:

- :func:`partition_by_importance` — greedy LPT (longest-processing-time)
  over importance scores: near-optimal load balance, ignores locality;
- :func:`partition_spatial` — contiguous slabs along the longest axis:
  perfect locality, whatever balance the data gives.

:func:`partition_stats` quantifies the trade-off (imbalance vs scatter).
"""

from __future__ import annotations

import heapq
from typing import Dict

import numpy as np

from repro.volume.blocks import BlockGrid

__all__ = ["partition_by_importance", "partition_spatial", "partition_stats"]


def _check_args(n_blocks: int, n_nodes: int) -> None:
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_blocks < n_nodes:
        raise ValueError(f"{n_blocks} blocks cannot fill {n_nodes} nodes")


def partition_by_importance(scores: np.ndarray, n_nodes: int) -> np.ndarray:
    """Assign each block to a node, balancing summed importance (greedy LPT).

    Returns an ``(n_blocks,)`` int array of node ids.  Blocks are placed in
    descending importance onto the currently-lightest node — the classic
    4/3-approximation for makespan, which for importance loads means no
    node carries much more "interesting" data than another.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1D, got shape {scores.shape}")
    _check_args(scores.size, n_nodes)
    order = np.argsort(-scores, kind="stable")
    assignment = np.empty(scores.size, dtype=np.int64)
    heap = [(0.0, node) for node in range(n_nodes)]  # (load, node)
    heapq.heapify(heap)
    for bid in order:
        load, node = heapq.heappop(heap)
        assignment[bid] = node
        heapq.heappush(heap, (load + float(scores[bid]), node))
    return assignment


def partition_spatial(grid: BlockGrid, n_nodes: int) -> np.ndarray:
    """Contiguous slabs along the grid's longest block axis.

    The conventional distribution baseline: each node gets a spatially
    compact region (good for halo exchange / compositing), with no regard
    to importance.
    """
    _check_args(grid.n_blocks, n_nodes)
    axis = int(np.argmax(grid.blocks_per_axis))
    extent = grid.blocks_per_axis[axis]
    assignment = np.empty(grid.n_blocks, dtype=np.int64)
    for bid in grid.iter_ids():
        idx = grid.block_index(bid)[axis]
        assignment[bid] = min(idx * n_nodes // extent, n_nodes - 1)
    return assignment


def partition_stats(
    assignment: np.ndarray,
    scores: np.ndarray,
    grid: BlockGrid,
) -> Dict[str, float]:
    """Balance and locality metrics of a partition.

    - ``imbalance``: max node importance / mean node importance (1.0 is
      perfect balance);
    - ``count_imbalance``: same over block counts;
    - ``mean_scatter``: mean distance of a block to its node's centroid in
      normalized coordinates (lower = more spatially compact).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if assignment.shape != scores.shape or assignment.size != grid.n_blocks:
        raise ValueError("assignment/scores must both cover every block")
    n_nodes = int(assignment.max()) + 1
    loads = np.zeros(n_nodes)
    counts = np.zeros(n_nodes)
    np.add.at(loads, assignment, scores)
    np.add.at(counts, assignment, 1.0)
    centers = grid.centers()
    scatter = 0.0
    for node in range(n_nodes):
        mask = assignment == node
        pts = centers[mask]
        if len(pts):
            centroid = pts.mean(axis=0)
            scatter += float(np.linalg.norm(pts - centroid, axis=1).sum())
    mean_load = loads.mean() if loads.mean() > 0 else 1.0
    return {
        "n_nodes": float(n_nodes),
        "imbalance": float(loads.max() / mean_load) if mean_load else 1.0,
        "count_imbalance": float(counts.max() / counts.mean()),
        "mean_scatter": scatter / grid.n_blocks,
    }
