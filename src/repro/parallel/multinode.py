"""Multi-node parallel rendering simulation (§VI future work, operational).

Sort-last parallel volume rendering: each node *owns* a partition of the
blocks, renders its share of every view, and a compositing barrier joins
the partial images — so the frame time is the **slowest node's** fetch +
render time.  The distribution question the paper poses ("data
partitioning and distribution schemes by leveraging data importance")
becomes measurable: a partition that balances per-view work across nodes
beats one that leaves a node owning the whole hot region.

Each node gets its own cache hierarchy sized for its share; per view, a
node demand-fetches the visible blocks *it owns* and renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.pipeline import PipelineContext
from repro.storage.hierarchy import MemoryHierarchy, make_standard_hierarchy
from repro.volume.blocks import BlockGrid

__all__ = ["MultiNodeResult", "run_multinode"]


@dataclass
class MultiNodeResult:
    """Per-node and per-frame accounting of a multi-node replay."""

    name: str
    n_nodes: int
    frame_times_s: List[float] = field(default_factory=list)
    node_busy_s: List[float] = field(default_factory=list)  # per node, total

    @property
    def total_time_s(self) -> float:
        """Sum of frame times (each frame waits for its slowest node)."""
        return float(sum(self.frame_times_s))

    @property
    def ideal_time_s(self) -> float:
        """Perfectly balanced lower bound: total work / n_nodes."""
        return float(sum(self.node_busy_s)) / self.n_nodes if self.n_nodes else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """ideal / actual — 1.0 means the barrier never waited."""
        total = self.total_time_s
        return self.ideal_time_s / total if total > 0 else 1.0

    @property
    def load_imbalance(self) -> float:
        """max node busy time / mean node busy time."""
        busy = np.asarray(self.node_busy_s)
        mean = busy.mean() if busy.size else 0.0
        return float(busy.max() / mean) if mean > 0 else 1.0


def run_multinode(
    context: PipelineContext,
    assignment: np.ndarray,
    n_nodes: int,
    cache_ratio: float = 0.5,
    policy: str = "lru",
    name: str = "multinode",
) -> MultiNodeResult:
    """Replay a camera path across ``n_nodes`` render nodes.

    ``assignment[block_id] = node`` is the ownership map (from
    :func:`repro.parallel.distribution.partition_by_importance` or
    :func:`partition_spatial`).  Each node's hierarchy is sized for its
    own share of the blocks, and each frame costs
    ``max_over_nodes(fetch + render of the node's visible share)``.
    """
    grid: BlockGrid = context.grid
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.size != grid.n_blocks:
        raise ValueError(
            f"assignment covers {assignment.size} blocks, grid has {grid.n_blocks}"
        )
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if assignment.min() < 0 or assignment.max() >= n_nodes:
        raise ValueError("assignment references nodes outside [0, n_nodes)")

    # One hierarchy per node, sized for the node's own share.
    hierarchies: List[MemoryHierarchy] = []
    for node in range(n_nodes):
        owned = int((assignment == node).sum())
        hierarchies.append(
            make_standard_hierarchy(
                n_blocks=max(owned, 1),
                block_nbytes=grid.uniform_block_nbytes(),
                cache_ratio=cache_ratio,
                policy=policy,
            )
        )

    result = MultiNodeResult(name=name, n_nodes=n_nodes,
                             node_busy_s=[0.0] * n_nodes)
    for i, ids in enumerate(context.visible_sets):
        owners = assignment[ids] if len(ids) else np.empty(0, dtype=np.int64)
        frame = 0.0
        for node in range(n_nodes):
            mine = ids[owners == node]
            io = 0.0
            for b in mine:
                io += hierarchies[node].fetch(int(b), i, min_free_step=i).time_s
            render = context.render_model.render_time(len(mine))
            node_time = io + render
            result.node_busy_s[node] += node_time
            frame = max(frame, node_time)
        result.frame_times_s.append(frame)
    return result
