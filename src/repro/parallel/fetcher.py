"""Thread-pool block fetching.

Real out-of-core sessions read many blocks per view; issuing those reads
concurrently overlaps seek/transfer latency.  The fetcher wraps any
:class:`~repro.volume.store.BlockStore` with a persistent thread pool and
returns results in request order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.volume.store import BlockStore

__all__ = ["ParallelBlockFetcher"]


class ParallelBlockFetcher:
    """Fetch batches of blocks concurrently from a backing store.

    Use as a context manager (or call :meth:`close`) to release the pool.

    >>> with ParallelBlockFetcher(store, n_workers=4) as fetcher:
    ...     blocks = fetcher.fetch_many([0, 5, 9])
    """

    def __init__(self, store: BlockStore, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.store = store
        self.n_workers = int(n_workers)
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="block-fetch"
        )
        self.total_fetched = 0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelBlockFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            raise RuntimeError("fetcher is closed")
        return self._pool

    # -- fetching ---------------------------------------------------------------

    def fetch_many(self, block_ids: Sequence[int]) -> List[np.ndarray]:
        """Blocks in the order requested (duplicates read once, shared)."""
        pool = self._require_pool()
        ids = [int(b) for b in block_ids]
        unique = sorted(set(ids))
        futures = {b: pool.submit(self.store.read_block, b) for b in unique}
        results: Dict[int, np.ndarray] = {b: f.result() for b, f in futures.items()}
        self.total_fetched += len(unique)
        return [results[b] for b in ids]

    def fetch_into(self, block_ids: Sequence[int], out: Dict[int, np.ndarray]) -> int:
        """Fetch only the ids missing from ``out``; returns how many were read."""
        missing = [int(b) for b in block_ids if int(b) not in out]
        if not missing:
            return 0
        blocks = self.fetch_many(missing)
        for b, data in zip(missing, blocks):
            out[b] = data
        return len(set(missing))
