"""Thread-pool block fetching.

Real out-of-core sessions read many blocks per view; issuing those reads
concurrently overlaps seek/transfer latency.  The fetcher wraps any
:class:`~repro.volume.store.BlockStore` with a persistent thread pool and
returns results in request order.

Failure semantics: a read that keeps failing after ``max_retries``
re-reads raises :class:`BlockFetchError` carrying the failing block id
and the underlying cause, and every sibling future still outstanding in
the batch is cancelled — a bad block fails the batch fast instead of
leaving orphan reads running.  With ``on_error="drop"`` the batch
degrades gracefully instead: failed blocks come back as ``None`` (and
are skipped by :meth:`ParallelBlockFetcher.fetch_into`), matching the
renderer's render-with-missing-blocks behaviour under fault injection.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.volume.store import BlockStore

__all__ = ["BlockFetchError", "ParallelBlockFetcher"]

#: ``validate(block_id, block)`` hook; raise to reject a payload (treated
#: as one more transient failure, so it participates in the retry loop).
Validator = Callable[[int, np.ndarray], None]


class BlockFetchError(IOError):
    """A block read failed (after retries); carries the block id and cause."""

    def __init__(self, block_id: int, cause: BaseException) -> None:
        super().__init__(f"failed to fetch block {block_id}: {cause!r}")
        self.block_id = block_id
        self.cause = cause


class ParallelBlockFetcher:
    """Fetch batches of blocks concurrently from a backing store.

    Use as a context manager (or call :meth:`close`) to release the pool.

    >>> with ParallelBlockFetcher(store, n_workers=4) as fetcher:
    ...     blocks = fetcher.fetch_many([0, 5, 9])

    Parameters
    ----------
    store:
        The payload source.
    n_workers:
        Thread-pool size.
    max_retries:
        Extra read attempts per block after the first fails with an
        ``OSError`` (or a validation rejection).  Retries back off
        ``backoff_base_s * 2**attempt`` wall seconds, capped at
        ``backoff_max_s``.
    timeout_s:
        Collection deadline in wall seconds: the batch waits at most this
        long for its reads, and any read still running after the deadline
        counts as a timeout failure (the worker thread itself cannot be
        interrupted, but the batch stops waiting for it).
    validate:
        Optional payload check called as ``validate(block_id, block)``;
        raising rejects the payload (e.g. a checksum mismatch from
        :meth:`repro.faults.store.FaultyBlockStore.make_validator`).
    on_error:
        ``"raise"`` (default) — a block that exhausts its retries raises
        :class:`BlockFetchError` and cancels the batch's outstanding
        futures.  ``"drop"`` — failed blocks are returned as ``None``
        placeholders and the rest of the batch completes.
    """

    def __init__(
        self,
        store: BlockStore,
        n_workers: int = 4,
        max_retries: int = 0,
        timeout_s: Optional[float] = None,
        validate: Optional[Validator] = None,
        on_error: str = "raise",
        backoff_base_s: float = 1e-3,
        backoff_max_s: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if on_error not in ("raise", "drop"):
            raise ValueError(f"on_error must be 'raise' or 'drop', got {on_error!r}")
        self.store = store
        self.n_workers = int(n_workers)
        self.max_retries = int(max_retries)
        self.timeout_s = timeout_s
        self.validate = validate
        self.on_error = on_error
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="block-fetch"
        )
        self.total_fetched = 0
        self.total_retries = 0
        self.total_timeouts = 0
        self.total_dropped = 0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelBlockFetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            raise RuntimeError("fetcher is closed")
        return self._pool

    # -- fetching ---------------------------------------------------------------

    def _read_with_retries(self, block_id: int) -> np.ndarray:
        """One block, retried in the worker thread; raises the last error."""
        last: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.total_retries += 1
                time.sleep(min(self.backoff_base_s * 2 ** (attempt - 1), self.backoff_max_s))
            try:
                block = self.store.read_block(block_id)
                if self.validate is not None:
                    self.validate(block_id, block)
                return block
            except OSError as exc:  # includes IOError and injected faults
                last = exc
        assert last is not None
        raise last

    def fetch_many(self, block_ids: Sequence[int]) -> List[Optional[np.ndarray]]:
        """Blocks in the order requested (duplicates read once, shared).

        On failure: ``on_error="raise"`` cancels the batch's outstanding
        futures and raises :class:`BlockFetchError` for the failing block;
        ``on_error="drop"`` substitutes ``None`` for each failed block.
        """
        pool = self._require_pool()
        ids = [int(b) for b in block_ids]
        unique = sorted(set(ids))
        futures: Dict[int, Future] = {
            b: pool.submit(self._read_with_retries, b) for b in unique
        }
        results: Dict[int, Optional[np.ndarray]] = {}
        try:
            if self.timeout_s is not None:
                # One shared deadline pass: anything not done in time is a
                # timeout failure, without serialising per-future waits.
                wait(futures.values(), timeout=self.timeout_s)
            for b in unique:
                f = futures[b]
                if self.timeout_s is not None and not f.done():
                    self.total_timeouts += 1
                    err: BaseException = TimeoutError(
                        f"block {b}: read exceeded {self.timeout_s}s"
                    )
                else:
                    try:
                        results[b] = f.result()
                        continue
                    except Exception as exc:
                        err = exc
                if self.on_error == "drop":
                    self.total_dropped += 1
                    results[b] = None
                    continue
                raise BlockFetchError(b, err) from err
        except BaseException:
            # Fail fast: don't leave sibling reads running for a batch
            # nobody will consume.  (Running futures cannot be interrupted,
            # but everything still queued is cancelled.)
            for f in futures.values():
                f.cancel()
            raise
        self.total_fetched += sum(1 for b in unique if results[b] is not None)
        return [results[b] for b in ids]

    def fetch_into(self, block_ids: Sequence[int], out: Dict[int, np.ndarray]) -> int:
        """Fetch only the ids missing from ``out``; returns how many were read.

        Dropped blocks (``on_error="drop"``) stay missing, so a later call
        can retry them."""
        missing = [int(b) for b in block_ids if int(b) not in out]
        if not missing:
            return 0
        blocks = self.fetch_many(missing)
        n = 0
        for b, data in zip(missing, blocks):
            if data is not None and b not in out:
                out[b] = data
                n += 1
        return n
