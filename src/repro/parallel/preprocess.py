"""Parallel Step 1 preprocessing.

Building ``T_visible`` is embarrassingly parallel over sample positions.
Workers each run the shared kernel
(:func:`repro.tables.builder.compute_sample_sets`) on a contiguous slice
of the sample indices with the *same* per-sample RNG list, so the parallel
table is bit-identical to the serial one (tested).  Threads suffice: the
visibility kernel spends its time in numpy ufuncs, which release the GIL.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.camera.sampling import SamplingConfig, sample_positions
from repro.tables.builder import SampleSets, compute_sample_sets
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import VisibleTable
from repro.utils.rng import SeedLike, spawn_rngs
from repro.volume.blocks import BlockGrid

__all__ = ["build_visible_table_parallel"]


def build_visible_table_parallel(
    grid: BlockGrid,
    sampling: SamplingConfig,
    view_angle_deg: float,
    n_workers: int = 4,
    cache_ratio: float = 0.5,
    fixed_radius: Optional[float] = None,
    n_vicinal: int = 8,
    importance: Optional[ImportanceTable] = None,
    max_set_size: Optional[int] = None,
    seed: SeedLike = 0,
    include_center: bool = True,
    kernel: str = "auto",
) -> VisibleTable:
    """Drop-in parallel variant of :func:`repro.tables.builder.build_visible_table`."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    positions = sample_positions(sampling)
    n_samples = positions.shape[0]
    rngs = spawn_rngs(seed, n_samples)

    kwargs = dict(
        cache_ratio=cache_ratio,
        fixed_radius=fixed_radius,
        n_vicinal=n_vicinal,
        importance=importance,
        max_set_size=max_set_size,
        include_center=include_center,
        kernel=kernel,
    )

    n_workers = min(n_workers, n_samples)
    bounds = [round(w * n_samples / n_workers) for w in range(n_workers + 1)]
    chunks = [range(bounds[w], bounds[w + 1]) for w in range(n_workers)]

    if n_workers == 1:
        all_sets = compute_sample_sets(
            grid, positions, chunks[0], rngs, view_angle_deg, **kwargs
        )
    else:
        with ThreadPoolExecutor(max_workers=n_workers, thread_name_prefix="tvis") as pool:
            futures = [
                pool.submit(
                    compute_sample_sets,
                    grid, positions, chunk, rngs, view_angle_deg, **kwargs,
                )
                for chunk in chunks
            ]
            # CSR-packed partitions joined in submission (index) order.
            all_sets = SampleSets.concat([f.result() for f in futures])

    meta = {
        "view_angle_deg": float(view_angle_deg),
        "cache_ratio": float(cache_ratio),
        "fixed_radius": None if fixed_radius is None else float(fixed_radius),
        "n_vicinal": int(n_vicinal),
        "n_blocks": int(grid.n_blocks),
        "scheme": sampling.scheme,
        "n_workers": int(n_workers),
    }
    return VisibleTable.from_sets(positions, all_sets, meta)
