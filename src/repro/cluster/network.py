"""Network transfer device + per-link ledger for the simulated cluster.

:class:`NetworkLink` mirrors :class:`~repro.storage.device.StorageDevice`
— a transfer costs ``latency_s * latency_scale + nbytes / bandwidth_bps``
on the same simulated clock as every storage read.  The default link
(50 µs, 1.25 GB/s ≈ 10 GbE) sits between DRAM and SSD: a peer-DRAM fetch
is cheaper than a local SSD read, which is what makes ghost-layer and
replication prefetch worth comparing.

:class:`NetworkFabric` is a full mesh over K nodes with one link per
unordered node pair (``n0-n1``, ``n0-n2``, ...).  It keeps the per-link
byte/time/transfer ledger that the conservation tests reconcile against
``bytes_moved``: every byte a peer serves appears on exactly one link,
and link bytes never double into the storage byte ledger (the ``xfer``
trace kind is outside ``MOVEMENT_KINDS``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.validation import check_positive

__all__ = ["NetworkFabric", "NetworkLink", "link_name"]

#: Default link parameters: ~10 GbE point-to-point (50 us request latency,
#: 1.25 GB/s payload bandwidth).
DEFAULT_LINK_LATENCY_S = 50e-6
DEFAULT_LINK_BANDWIDTH_BPS = 1.25e9


def link_name(a: int, b: int) -> str:
    """Canonical name of the link between nodes ``a`` and ``b``."""
    lo, hi = (a, b) if a <= b else (b, a)
    return f"n{lo}-n{hi}"


@dataclass(frozen=True)
class NetworkLink:
    """One point-to-point link, costed like a storage device."""

    name: str
    latency_s: float = DEFAULT_LINK_LATENCY_S
    bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH_BPS

    def __post_init__(self) -> None:
        check_positive("latency_s", self.latency_s)
        check_positive("bandwidth_bps", self.bandwidth_bps)

    def transfer_time(self, nbytes: int, latency_scale: float = 1.0) -> float:
        """Seconds to move ``nbytes`` across this link.

        ``latency_scale`` amortises the per-request latency for queued
        (prefetch) transfers, exactly as
        :meth:`~repro.storage.device.StorageDevice.read_time` does.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not 0.0 <= latency_scale <= 1.0:
            raise ValueError(f"latency_scale must be in [0, 1], got {latency_scale}")
        return self.latency_s * latency_scale + nbytes / self.bandwidth_bps


class NetworkFabric:
    """Full-mesh links over K nodes plus the exact per-link ledger."""

    def __init__(
        self,
        n_nodes: int,
        latency_s: float = DEFAULT_LINK_LATENCY_S,
        bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH_BPS,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._links: Dict[Tuple[int, int], NetworkLink] = {}
        for a in range(self.n_nodes):
            for b in range(a + 1, self.n_nodes):
                self._links[(a, b)] = NetworkLink(link_name(a, b), latency_s, bandwidth_bps)
        # Per-link ledger: bytes / seconds / transfer count actually moved,
        # plus fallbacks (transfers abandoned to the cold store on a link
        # fault — those bytes never touch the link).
        self._bytes: Dict[str, int] = {lk.name: 0 for lk in self._links.values()}
        self._time_s: Dict[str, float] = {lk.name: 0.0 for lk in self._links.values()}
        self._transfers: Dict[str, int] = {lk.name: 0 for lk in self._links.values()}
        self._fallbacks: Dict[str, int] = {lk.name: 0 for lk in self._links.values()}

    def link(self, a: int, b: int) -> NetworkLink:
        if a == b:
            raise ValueError(f"no self-link for node {a}")
        lo, hi = (a, b) if a < b else (b, a)
        try:
            return self._links[(lo, hi)]
        except KeyError:
            raise ValueError(f"no link between n{a} and n{b} (n_nodes={self.n_nodes})")

    def link_names(self) -> Tuple[str, ...]:
        return tuple(lk.name for lk in self._links.values())

    def charge(self, a: int, b: int, nbytes: int, time_s: float) -> None:
        """Record one completed transfer of ``nbytes`` taking ``time_s``."""
        name = self.link(a, b).name
        self._bytes[name] += int(nbytes)
        self._time_s[name] += float(time_s)
        self._transfers[name] += 1

    def record_fallback(self, a: int, b: int) -> None:
        self._fallbacks[self.link(a, b).name] += 1

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    @property
    def total_time_s(self) -> float:
        return sum(self._time_s.values())

    @property
    def total_transfers(self) -> int:
        return sum(self._transfers.values())

    @property
    def total_fallbacks(self) -> int:
        return sum(self._fallbacks.values())

    def ledger(self) -> Dict[str, Dict[str, object]]:
        """Per-link snapshot: bytes, seconds, transfers, fallbacks."""
        return {
            name: {
                "bytes": self._bytes[name],
                "time_s": self._time_s[name],
                "transfers": self._transfers[name],
                "fallbacks": self._fallbacks[name],
            }
            for name in self._bytes
        }

    def reset(self) -> None:
        for name in self._bytes:
            self._bytes[name] = 0
            self._time_s[name] = 0.0
            self._transfers[name] = 0
            self._fallbacks[name] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkFabric(n_nodes={self.n_nodes}, links={len(self._links)})"
