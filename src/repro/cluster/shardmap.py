"""Block-grid ownership maps for the simulated cluster.

A :class:`ShardMap` assigns every block id of a
:class:`~repro.volume.blocks.BlockGrid` to exactly one of ``n_nodes``
simulated nodes.  Three strategies:

``round-robin``
    ``owner[b] = (b + seed) % K``.  Perfectly balanced, no locality.

``slab``
    Blocks sorted by their coordinate along the longest grid axis (stable,
    id-tiebroken) and split into K equal contiguous slabs.  When the axis
    extent divides K the slabs are plane-aligned, so only the K-1 cut
    planes separate 6-neighbors.

``octree``
    Blocks sorted by Morton (Z-order) code and split into K equal
    contiguous ranges — each range is a union of aligned octree subtrees,
    i.e. a small set of axis-aligned boxes, which keeps 6-neighbors
    co-sharded far more often than round-robin.

Ownership is a pure function of ``(grid shape, n_nodes, strategy, seed)``
— no RNG state — so replaying a seed reproduces the map exactly, and
:meth:`reshard_without` (node loss) is likewise deterministic: blocks of
dead nodes are dealt to the surviving nodes by ``block_id % n_alive``
over the ascending alive list, leaving surviving owners untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.volume.blocks import BlockGrid

__all__ = ["SHARD_STRATEGIES", "ShardMap"]

SHARD_STRATEGIES: Tuple[str, ...] = ("round-robin", "slab", "octree")


def _morton_codes(coords: np.ndarray, extents: Sequence[int]) -> np.ndarray:
    """Z-order code per column of a (3, n) integer coordinate array."""
    bits = max(int(e - 1).bit_length() for e in extents)
    code = np.zeros(coords.shape[1], dtype=np.int64)
    for b in range(bits):
        for axis in range(3):
            code |= ((coords[axis] >> b) & 1).astype(np.int64) << (3 * b + (2 - axis))
    return code


class ShardMap:
    """Deterministic block → node ownership for a K-node cluster."""

    def __init__(
        self,
        grid: BlockGrid,
        n_nodes: int,
        strategy: str = "slab",
        seed: int = 0,
        _owner: "np.ndarray | None" = None,
        _alive: "Tuple[int, ...] | None" = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; expected one of {SHARD_STRATEGIES}"
            )
        self.grid = grid
        self.n_nodes = int(n_nodes)
        self.strategy = strategy
        self.seed = int(seed)
        self.alive: Tuple[int, ...] = (
            tuple(range(self.n_nodes)) if _alive is None else tuple(_alive)
        )
        self.owner: np.ndarray = (
            self._build_owner() if _owner is None else np.asarray(_owner, dtype=np.int64)
        )
        if len(self.owner) != grid.n_blocks:
            raise ValueError(
                f"owner array has {len(self.owner)} entries for {grid.n_blocks} blocks"
            )

    # -- construction ----------------------------------------------------------

    def _build_owner(self) -> np.ndarray:
        n = self.grid.n_blocks
        k = self.n_nodes
        ids = np.arange(n, dtype=np.int64)
        if k == 1:
            return np.zeros(n, dtype=np.int64)
        if self.strategy == "round-robin":
            return (ids + self.seed) % k
        extents = self.grid.blocks_per_axis
        coords = np.stack(np.unravel_index(ids, extents)).astype(np.int64)
        if self.strategy == "slab":
            axis = int(np.argmax(extents))
            order = np.argsort(coords[axis], kind="stable")
        else:  # octree
            order = np.argsort(_morton_codes(coords, extents), kind="stable")
        owner = np.empty(n, dtype=np.int64)
        for node, chunk in enumerate(np.array_split(order, k)):
            owner[chunk] = node
        return owner

    # -- queries ---------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.grid.n_blocks

    def owner_of(self, key: int) -> int:
        return int(self.owner[key])

    def counts(self) -> np.ndarray:
        """Blocks owned per node (length ``n_nodes``; dead nodes own 0)."""
        return np.bincount(self.owner, minlength=self.n_nodes)

    def partition(self, ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Split an id array by owner, preserving input order per node."""
        ids = np.asarray(ids, dtype=np.int64)
        owners = self.owner[ids]
        return {
            int(node): ids[owners == node]
            for node in np.unique(owners)
        }

    def locality_score(self) -> float:
        """Fraction of 6-neighbor block pairs owned by the same node.

        Pairs are counted once (along the +axis direction).  1.0 when the
        grid has no neighbor pairs (a single block).
        """
        own3 = self.owner.reshape(self.grid.blocks_per_axis)
        pairs = 0
        same = 0
        for axis in range(3):
            lo = [slice(None)] * 3
            hi = [slice(None)] * 3
            lo[axis] = slice(None, -1)
            hi[axis] = slice(1, None)
            a = own3[tuple(lo)]
            b = own3[tuple(hi)]
            pairs += a.size
            same += int(np.count_nonzero(a == b))
        return same / pairs if pairs else 1.0

    # -- node loss -------------------------------------------------------------

    def reshard_without(self, dead: "int | Iterable[int]") -> "ShardMap":
        """A new map with ``dead`` node(s) removed, surviving owners kept.

        Every block owned by a dead node is reassigned to
        ``alive[block_id % n_alive]`` over the ascending alive list — a
        pure function of the block id and the alive set, so repeated
        failures in any order produce the same final map.
        """
        dead_set = {int(dead)} if isinstance(dead, (int, np.integer)) else {
            int(d) for d in dead
        }
        alive = tuple(n for n in self.alive if n not in dead_set)
        if not alive:
            raise ValueError("cannot reshard: no nodes left alive")
        if len(alive) == len(self.alive):
            return self
        alive_arr = np.asarray(alive, dtype=np.int64)
        owner = self.owner.copy()
        lost = ~np.isin(owner, alive_arr)
        ids = np.arange(len(owner), dtype=np.int64)
        owner[lost] = alive_arr[ids[lost] % len(alive_arr)]
        return ShardMap(
            self.grid,
            self.n_nodes,
            self.strategy,
            self.seed,
            _owner=owner,
            _alive=alive,
        )

    def as_dict(self) -> Dict[str, object]:
        counts = self.counts()
        return {
            "strategy": self.strategy,
            "n_nodes": self.n_nodes,
            "seed": self.seed,
            "alive": list(self.alive),
            "blocks_per_node": {f"n{i}": int(c) for i, c in enumerate(counts)},
            "locality_score": self.locality_score(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardMap({self.strategy!r}, n_nodes={self.n_nodes}, "
            f"n_blocks={self.n_blocks}, alive={len(self.alive)})"
        )
