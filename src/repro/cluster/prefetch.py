"""Cluster-aware prefetch strategies: ghost layers and replication.

Both strategies follow the :mod:`repro.prefetch.strategies` protocol
(``name`` / ``predict(step, position, visible_ids)`` returning an int64
id array) and are registered in the prefetcher registry as ``ghost`` and
``replicate``, so ``--prefetcher ghost`` plugs into the existing stages
unchanged.  Both need the cluster's :class:`~repro.cluster.shardmap.
ShardMap` (passed through the factory dependency pool as ``shard_map=``).

``ghost``
    Predicts the *ghost layer*: remote-owned 6-neighbors of the current
    visible set — the halo a distributed renderer exchanges ahead of
    camera motion, so the blocks most likely to become visible next frame
    are already replicated home-side.

``replicate``
    Predicts every remote-owned block of the current visible set itself:
    eager replication that turns repeat visibility of peer blocks into
    local (owner-DRAM or ghost-cache) hits.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.shardmap import ShardMap
from repro.prefetch.base import Prefetcher

__all__ = ["GhostLayerPrefetcher", "ReplicationPrefetcher"]

_EMPTY = np.empty(0, dtype=np.int64)


def _neighbor_ids(ids: np.ndarray, extents) -> np.ndarray:
    """Unique 6-neighbor block ids of ``ids`` (in-grid only), ascending."""
    if ids.size == 0:
        return _EMPTY
    coords = np.stack(np.unravel_index(ids, extents)).astype(np.int64)
    parts = []
    for axis in range(3):
        for delta in (-1, 1):
            shifted = coords.copy()
            shifted[axis] += delta
            ok = (shifted[axis] >= 0) & (shifted[axis] < extents[axis])
            if np.any(ok):
                parts.append(
                    np.ravel_multi_index(tuple(shifted[:, ok]), extents).astype(np.int64)
                )
    if not parts:
        return _EMPTY
    return np.unique(np.concatenate(parts))


class GhostLayerPrefetcher(Prefetcher):
    """Prefetch the remote-owned halo around the visible set."""

    name = "ghost"

    def __init__(self, shard_map: ShardMap, home: int = 0) -> None:
        self.shard_map = shard_map
        self.home = int(home)

    def predict(self, step: int, position, visible_ids: np.ndarray) -> np.ndarray:
        ids = np.ascontiguousarray(visible_ids, dtype=np.int64)
        halo = _neighbor_ids(ids, self.shard_map.grid.blocks_per_axis)
        if halo.size == 0:
            return _EMPTY
        halo = np.setdiff1d(halo, ids, assume_unique=False)
        remote = halo[self.shard_map.owner[halo] != self.home]
        return np.ascontiguousarray(remote, dtype=np.int64)


class ReplicationPrefetcher(Prefetcher):
    """Prefetch every remote-owned block of the visible set itself."""

    name = "replicate"

    def __init__(self, shard_map: ShardMap, home: int = 0) -> None:
        self.shard_map = shard_map
        self.home = int(home)

    def predict(self, step: int, position, visible_ids: np.ndarray) -> np.ndarray:
        ids = np.ascontiguousarray(visible_ids, dtype=np.int64)
        if ids.size == 0:
            return _EMPTY
        remote = ids[self.shard_map.owner[ids] != self.home]
        return np.ascontiguousarray(remote, dtype=np.int64)
