"""Cluster fault profiles: the PR 4 fault machinery layered onto nodes and links.

Links are fault "devices": the pure counter-based draws of
:class:`~repro.faults.plan.FaultPlan` key on the *device name*, so a
profile whose device is a link name (``n0-n1``) drives link faults —
``error_rate`` models a partition (the transfer is abandoned and the
block falls back to the shared cold store), ``slow_windows`` model slow
peers, ``spike_rate`` transient congestion.  Node-device profiles are the
base single-box profiles re-keyed onto the per-node device names
(``n{k}.ssd``); the shared cold store keeps its single ``hdd`` identity.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.cluster.network import link_name
from repro.faults.plan import DeviceFaultProfile, FaultPlan

__all__ = ["CLUSTER_FAULT_PROFILES", "cluster_fault_plan", "partitioned_links"]

CLUSTER_FAULT_PROFILES: Tuple[str, ...] = (
    "none",
    "slow-peer",
    "link-partition",
    "node-chaos",
)


def partitioned_links(n_nodes: int, home: int = 0) -> Tuple[str, ...]:
    """The links the ``link-partition`` profile severs (home ↔ next node)."""
    if n_nodes < 2:
        return ()
    peer = (home + 1) % n_nodes
    return (link_name(home, peer),)


def cluster_fault_plan(
    profile: str, n_nodes: int, seed: int = 0, home: int = 0
) -> FaultPlan:
    """Build a :class:`FaultPlan` for a K-node cluster.

    ``none``
        Fault-free (an empty, null plan).
    ``slow-peer``
        The home ↔ next-node link runs 4x slow during steps [4, 16).
    ``link-partition``
        The home ↔ next-node link is fully severed (``error_rate=1.0``):
        every fetch that would cross it falls back to the cold store.
    ``node-chaos``
        The single-box ``chaos`` profile re-keyed per node: each node's
        SSD inherits the chaos SSD faults, the shared cold store keeps
        the chaos HDD faults, and every home link gets mild transient
        loss/spikes.
    """
    if profile not in CLUSTER_FAULT_PROFILES:
        raise ValueError(
            f"unknown cluster fault profile {profile!r}; "
            f"expected one of {CLUSTER_FAULT_PROFILES}"
        )
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    profiles: list = []
    if profile == "slow-peer" and n_nodes > 1:
        for name in partitioned_links(n_nodes, home):
            profiles.append(
                DeviceFaultProfile(device=name, slow_windows=((4, 16, 4.0),))
            )
    elif profile == "link-partition" and n_nodes > 1:
        for name in partitioned_links(n_nodes, home):
            profiles.append(DeviceFaultProfile(device=name, error_rate=1.0))
    elif profile == "node-chaos":
        base = FaultPlan.from_profile("chaos").profiles
        for p in base:
            if p.device == "hdd":  # the shared cold store keeps one identity
                profiles.append(p)
            else:
                for k in range(n_nodes):
                    profiles.append(replace(p, device=f"n{k}.{p.device}"))
        for k in range(n_nodes):
            if k == home:
                continue
            profiles.append(
                DeviceFaultProfile(
                    device=link_name(home, k),
                    error_rate=0.05,
                    spike_rate=0.10,
                    spike_s=0.002,
                )
            )
    return FaultPlan(seed=seed, profiles=tuple(profiles))
