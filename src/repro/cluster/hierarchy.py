"""A K-node sharded hierarchy behind the ``MemoryHierarchy`` surface.

Each simulated node owns a :class:`~repro.storage.hierarchy.MemoryHierarchy`
(its private DRAM/SSD tier) over the *shared* cold store, and a
:class:`~repro.cluster.shardmap.ShardMap` assigns every block to exactly
one owner.  A fetch from the ``home`` node resolves as:

* **local** — the home node owns the block: served by the home hierarchy
  exactly as in the single-box simulator;
* **ghost hit** — a replicated copy of a remote block lives in the
  optional home-side ghost cache: served at DRAM cost, no network;
* **peer** — the owner node serves the block through its own hierarchy,
  then the payload crosses the home↔owner link; the link time is charged
  on the same sim-clock ledger and recorded as an ``xfer`` trace event
  (outside ``MOVEMENT_KINDS``, so storage byte accounting is untouched);
* **cold fallback** — the link faulted (partition): one probe latency is
  charged (a ``fault`` event on the link), and the block is read straight
  from the shared cold store at home, bypassing every cache.

At K=1 every call delegates wholesale to the single node, which the
shard-equivalence suite pins bit-for-bit against ``run_baseline``.

Accounting invariants (pinned by ``tests/cluster``):

* every per-block charge is ``node_time + link_time`` accumulated as a
  flat left fold, so scalar and batched engines stay result-identical
  for any K, and attribution invariant A extends to the new
  ``peer_transfer:{link}`` component;
* ``bytes_moved`` decomposes exactly into local + ghost + peer +
  cold-fallback bytes, and the peer share equals the per-link byte
  ledger of the :class:`~repro.cluster.network.NetworkFabric`.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.network import (
    DEFAULT_LINK_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    NetworkFabric,
)
from repro.cluster.shardmap import ShardMap
from repro.obs.metrics import NULL_REGISTRY
from repro.policies import make_policy
from repro.storage.cache import CacheLevel
from repro.storage.device import DRAM, HDD, SSD, StorageDevice
from repro.storage.hierarchy import (
    BatchFetchResult,
    FetchResult,
    MemoryHierarchy,
    make_standard_hierarchy,
)
from repro.storage.stats import HierarchyStats
from repro.trace.tracer import NULL_TRACER
from repro.volume.blocks import BlockGrid

__all__ = ["ShardedHierarchy", "make_sharded_hierarchy"]


class _SummedStats:
    """Live elementwise-sum view over several ``CacheStats``."""

    def __init__(self, parts) -> None:
        self._parts = tuple(parts)

    def __getattr__(self, name):
        return sum(getattr(p, name) for p in self._parts)


class _FastestView:
    """Aggregate "fastest level" facade over all node DRAM tiers (+ ghost).

    The engine stages only need ``stats`` (live miss counters),
    ``capacity``, ``policy`` and residency probes — each is the natural
    cluster-wide aggregate: a block is "in the fastest tier" when it is
    resident in its owner's DRAM or in the home-side ghost cache.
    """

    def __init__(self, sharded: "ShardedHierarchy") -> None:
        self._s = sharded
        self.name = "dram"
        self.policy = sharded.nodes[sharded.home].fastest.policy

    @property
    def capacity(self) -> int:
        cap = sum(n.fastest.capacity for n in self._s.nodes)
        if self._s.ghost is not None:
            cap += self._s.ghost.capacity
        return cap

    @property
    def stats(self) -> _SummedStats:
        return _SummedStats(n.fastest.stats for n in self._s.nodes)

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(keys, dtype=np.int64)
        out = np.zeros(arr.size, dtype=bool)
        for node in self._s.nodes:
            out |= node.fastest.contains_many(arr)
        if self._s.ghost is not None:
            out |= self._s.ghost.contains_many(arr)
        return out

    def __contains__(self, key: int) -> bool:
        if any(key in n.fastest for n in self._s.nodes):
            return True
        return self._s.ghost is not None and key in self._s.ghost


class ShardedHierarchy:
    """K per-node hierarchies + a network fabric, one fetch surface."""

    def __init__(
        self,
        shard_map: ShardMap,
        nodes: Sequence[MemoryHierarchy],
        fabric: NetworkFabric,
        block_nbytes,
        home: int = 0,
        ghost: Optional[CacheLevel] = None,
        backing: StorageDevice = HDD,
        tracer=None,
        registry=None,
    ) -> None:
        if len(nodes) != shard_map.n_nodes:
            raise ValueError(
                f"{len(nodes)} nodes for a {shard_map.n_nodes}-way shard map"
            )
        if not 0 <= home < len(nodes):
            raise ValueError(f"home must be a node index, got {home}")
        self.shard_map = shard_map
        self.nodes: List[MemoryHierarchy] = list(nodes)
        self.fabric = fabric
        self.home = int(home)
        self.ghost = ghost
        self.backing = backing
        self._block_nbytes = block_nbytes
        self._uniform_nbytes = None if callable(block_nbytes) else int(block_nbytes)
        # K=1: wholesale delegation to the single node — bit-for-bit the
        # single-box simulator (pinned by the shard-equivalence suite).
        self._solo: Optional[MemoryHierarchy] = nodes[0] if len(nodes) == 1 else None
        self.prefetch_latency_factor = self.nodes[0].prefetch_latency_factor
        # Cold-fallback counters (reads that bypassed every cache after a
        # link fault); node backing counters stay inside each node.
        self._fallback_reads = 0
        self._fallback_bytes = 0
        # Exact byte split of everything the hierarchy served:
        # local + ghost + peer + cold == bytes_moved (pinned).
        self._split = {"local": 0, "ghost": 0, "peer": 0, "cold": 0}
        self._node_serves = [0] * len(self.nodes)
        self._failed: set = set()
        self.fault_injector = None
        self._fastest_view = None if self._solo is not None else _FastestView(self)
        self.forensics = None
        self._agg_requested = False
        self.tracer = NULL_TRACER
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)
        self.registry = NULL_REGISTRY
        self.set_registry(registry if registry is not None else NULL_REGISTRY)

    # -- wiring (tracer / registry / forensics / faults) -----------------------

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        for node in self.nodes:
            node.set_tracer(tracer)
        if self.ghost is not None:
            self.ghost.tracer = tracer

    def set_registry(self, registry) -> None:
        self.registry = registry
        for node in self.nodes:
            node.set_registry(registry)
        if self._solo is not None:
            return
        if self.ghost is not None:
            self.ghost.set_registry(registry)
        # Own fetch metrics for the sources the sharded layer serves
        # directly (ghost hits, cold fallbacks) — same names/labels as
        # MemoryHierarchy.set_registry so snapshots merge cleanly.
        sources = [self.backing.name] + (["ghost"] if self.ghost is not None else [])
        self._fetch_metrics = {
            name: (
                registry.histogram("fetch_latency_seconds", level=name, kind="demand"),
                registry.histogram("fetch_latency_seconds", level=name, kind="prefetch"),
                registry.counter("bytes_read_total", level=name),
                registry.counter("fetches_total", level=name, kind="demand"),
                registry.counter("fetches_total", level=name, kind="prefetch"),
            )
            for name in sources
        }
        # Per-link and per-route cluster metrics.
        self._link_metrics = {
            name: (
                registry.counter("cluster_link_bytes_total", link=name),
                registry.counter("cluster_link_transfers_total", link=name),
                registry.gauge("cluster_link_seconds_total", link=name),
                registry.counter("cluster_link_fallbacks_total", link=name),
            )
            for name in self.fabric.link_names()
        }
        self._route_counters = {
            route: registry.counter("cluster_fetches_total", route=route)
            for route in ("local", "ghost", "peer", "cold_fallback")
        }
        self._node_serve_counters = [
            registry.counter("cluster_node_serves_total", node=f"n{k}")
            for k in range(len(self.nodes))
        ]

    def set_forensics(self, lineage) -> None:
        self.forensics = lineage
        for node in self.nodes:
            node.set_forensics(lineage)
        if self.ghost is not None:
            self.ghost.forensics = lineage

    def set_fault_injector(
        self,
        injector,
        retry_policy=None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.25,
    ) -> None:
        """Install the injector on every node and on the link layer.

        Node devices draw per-device faults inside their own resilient
        read paths; the sharded layer itself draws *link* faults (keyed
        by link name): a failing draw abandons the transfer after one
        probe latency and falls back to the shared cold store, a slow
        window / spike degrades the transfer time.  Links get no retries
        — the cold store is always reachable.
        """
        self.fault_injector = injector
        for node in self.nodes:
            node.set_fault_injector(
                injector,
                retry_policy=retry_policy,
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
            )

    # -- trace aggregation flag -------------------------------------------------

    @property
    def aggregate_trace(self) -> bool:
        if self._solo is not None:
            return self._solo.aggregate_trace
        return False  # sharded fetches are scalar per block: always per-event

    @aggregate_trace.setter
    def aggregate_trace(self, value: bool) -> None:
        self._agg_requested = bool(value)
        if self._solo is not None:
            self._solo.aggregate_trace = bool(value)

    # -- helpers ---------------------------------------------------------------

    @property
    def fastest(self):
        if self._solo is not None:
            return self._solo.fastest
        return self._fastest_view

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def backing_reads(self) -> int:
        return self._fallback_reads + sum(n.backing_reads for n in self.nodes)

    @property
    def backing_bytes(self) -> int:
        return self._fallback_bytes + sum(n.backing_bytes for n in self.nodes)

    def block_nbytes(self, key: int) -> int:
        if callable(self._block_nbytes):
            return int(self._block_nbytes(key))
        return int(self._block_nbytes)

    def contains_fast(self, key: int) -> bool:
        if self._solo is not None:
            return self._solo.contains_fast(key)
        if self.nodes[int(self.shard_map.owner[key])].contains_fast(key):
            return True
        return self.ghost is not None and key in self.ghost

    def _record_fetch(self, source: str, prefetch: bool, nbytes: int, time_s: float) -> None:
        demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = self._fetch_metrics[source]
        if prefetch:
            prefetch_h.observe(time_s)
            prefetch_c.inc()
        else:
            demand_h.observe(time_s)
            demand_c.inc()
        bytes_c.inc(nbytes)

    # -- tenant partitioning ---------------------------------------------------

    def set_tenant_quotas(self, fractions: Optional[Mapping[str, float]]):
        if self._solo is not None:
            return self._solo.set_tenant_quotas(fractions)
        quotas: dict = {}
        for node in self.nodes:
            quotas.update(node.set_tenant_quotas(fractions))
        if self.ghost is not None:
            if not fractions:
                self.ghost.set_tenant_quotas(None)
            else:
                cap = self.ghost.capacity
                blocks = {t: max(1, int(f * cap)) for t, f in fractions.items()}
                total = sum(blocks.values())
                if total > cap:  # clamp as MemoryHierarchy does
                    scale = cap / total
                    blocks = {t: max(1, int(b * scale)) for t, b in blocks.items()}
                self.ghost.set_tenant_quotas(blocks)
                quotas["ghost"] = blocks
        return quotas

    def tenant_usage(self):
        if self._solo is not None:
            return self._solo.tenant_usage()
        usage: dict = {}
        for node in self.nodes:
            usage.update(node.tenant_usage())
        if self.ghost is not None and self.ghost.tenant_quotas_enabled:
            usage["ghost"] = self.ghost.tenant_usage()
        return usage

    def tenant_cross_evictions(self) -> int:
        total = sum(n.tenant_cross_evictions() for n in self.nodes)
        if self.ghost is not None:
            total += self.ghost.tenant_cross_evictions
        return total

    # -- node loss -------------------------------------------------------------

    def fail_node(self, node: int) -> ShardMap:
        """Kill ``node``: deterministic re-shard + cache contents lost.

        The surviving owners keep their blocks; the dead node's blocks are
        dealt to the survivors by :meth:`ShardMap.reshard_without`, and its
        cache is cleared, so every re-homed block re-fetches from the
        shared cold store on next use — the re-fetch cost lands on the
        ordinary ledgers with no special-casing.
        """
        node = int(node)
        if self._solo is not None or node == self.home:
            raise ValueError(f"cannot fail node {node} (home or only node)")
        self.shard_map = self.shard_map.reshard_without(node)
        self.nodes[node].clear()
        self._failed.add(node)
        return self.shard_map

    # -- the read path ---------------------------------------------------------

    def fetch(
        self,
        key: int,
        step: int,
        prefetch: bool = False,
        min_free_step: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> FetchResult:
        if self._solo is not None:
            return self._solo.fetch(
                key, step, prefetch=prefetch, min_free_step=min_free_step, tenant=tenant
            )
        key = int(key)
        owner = int(self.shard_map.owner[key])
        nbytes = self._uniform_nbytes
        if nbytes is None:
            nbytes = self.block_nbytes(key)
        scale = self.prefetch_latency_factor if prefetch else 1.0
        record = self.registry.enabled

        if owner == self.home:
            r = self.nodes[owner].fetch(
                key, step, prefetch=prefetch, min_free_step=min_free_step, tenant=tenant
            )
            if not r.dropped:
                self._split["local"] += nbytes
                self._node_serves[owner] += 1
                if record:
                    self._route_counters["local"].inc()
                    self._node_serve_counters[owner].inc()
            return r

        ghost = self.ghost
        if ghost is not None and key in ghost:
            # Replicated copy in home DRAM: served without touching the
            # network — same accounting shape as a fastest-level hit.
            if prefetch:
                ghost.stats.prefetch_hits += 1
            else:
                ghost.stats.hits += 1
                ghost.touch(key, step)
            ghost.stats.bytes_read += nbytes
            time_s = DRAM.read_time(nbytes, scale)
            if record:
                self._record_fetch("ghost", prefetch, nbytes, time_s)
                self._route_counters["ghost"].inc()
            kind = "prefetch" if prefetch else "hit"
            if self.tracer.enabled:
                self.tracer.record(kind, step, "ghost", key, nbytes, time_s)
            self._split["ghost"] += nbytes
            return FetchResult(key, time_s, "ghost", fastest_hit=True)

        link = self.fabric.link(self.home, owner)
        inj = self.fault_injector
        faulted = inj is not None and not inj.is_null
        if faulted and inj.fails(link.name, key, step, 0):
            # Link partition: one probe latency is lost, then the block is
            # read straight from the shared cold store, bypassing every
            # cache (so a partitioned block re-fetches on every use).
            probe_t = link.latency_s * scale
            self.fabric.record_fallback(self.home, owner)
            if self.tracer.enabled:
                self.tracer.record("fault", step, link.name, key, 0, probe_t)
            cold_t = self.backing.read_time(nbytes, scale)
            self._fallback_reads += 1
            self._fallback_bytes += nbytes
            self._split["cold"] += nbytes
            if record:
                self._record_fetch(self.backing.name, prefetch, nbytes, cold_t)
                self._route_counters["cold_fallback"].inc()
                self._link_metrics[link.name][3].inc()
            kind = "prefetch" if prefetch else "fetch"
            if self.tracer.enabled:
                self.tracer.record(kind, step, self.backing.name, key, nbytes, cold_t)
            return FetchResult(key, probe_t + cold_t, self.backing.name, fastest_hit=False)

        r = self.nodes[owner].fetch(
            key, step, prefetch=prefetch, min_free_step=min_free_step, tenant=tenant
        )
        if r.dropped:
            return r  # the owner dropped the block; nothing crossed the link
        net_t = base_t = link.transfer_time(nbytes, scale)
        if faulted:
            net_t = base_t * inj.slowdown(link.name, step) + inj.spike_s(
                link.name, key, step, 0
            )
            if net_t > base_t:
                # Informational, outside the time ledger: only the seconds
                # *above* the nominal transfer (mirrors the device path).
                inj.record_degraded(link.name)
                if self.tracer.enabled:
                    self.tracer.record("degraded", step, link.name, key, 0, net_t - base_t)
        self.fabric.charge(self.home, owner, nbytes, net_t)
        self._split["peer"] += nbytes
        self._node_serves[owner] += 1
        if record:
            bytes_c, xfers_c, seconds_g, _ = self._link_metrics[link.name]
            bytes_c.inc(nbytes)
            xfers_c.inc()
            seconds_g.inc(net_t)
            self._route_counters["peer"].inc()
            self._node_serve_counters[owner].inc()
        if self.tracer.enabled:
            self.tracer.record("xfer", step, link.name, key, nbytes, net_t)
        if ghost is not None:
            ghost.admit(key, step, min_free_step=min_free_step, agg=None, tenant=tenant)
        # Flat left fold: node time then link time, so scalar and batched
        # engines accumulate identically and attribution replays exactly.
        total = r.time_s + net_t
        return FetchResult(key, total, r.source, fastest_hit=r.fastest_hit)

    def fetch_many(
        self,
        ids: np.ndarray,
        step: int,
        prefetch: bool = False,
        min_free_step: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> BatchFetchResult:
        if self._solo is not None:
            return self._solo.fetch_many(
                ids, step, prefetch=prefetch, min_free_step=min_free_step, tenant=tenant
            )
        arr = np.ascontiguousarray(ids, dtype=np.int64)
        n = arr.size
        if n == 0:
            return BatchFetchResult(0, 0, 0.0)
        times = np.empty(n, dtype=np.float64)
        n_hits = 0
        dropped: List[int] = []
        for i in range(n):
            r = self.fetch(
                int(arr[i]), step, prefetch=prefetch, min_free_step=min_free_step, tenant=tenant
            )
            times[i] = r.time_s
            if r.fastest_hit:
                n_hits += 1
            if r.dropped:
                dropped.append(r.key)
        total = float(np.add.accumulate(times)[-1]) if n > 1 else float(times[0])
        return BatchFetchResult(n, n_hits, total, len(dropped), tuple(dropped))

    def prefetch_many(
        self,
        candidates,
        step: int,
        min_free_step: Optional[int] = None,
        max_fetch: Optional[int] = None,
        dedupe: bool = False,
        tenant: Optional[str] = None,
    ):
        if self._solo is not None:
            return self._solo.prefetch_many(
                candidates,
                step,
                min_free_step=min_free_step,
                max_fetch=max_fetch,
                dedupe=dedupe,
                tenant=tenant,
            )
        arr = np.ascontiguousarray(candidates, dtype=np.int64)
        issued: List[int] = []
        total_time = 0.0
        attempted: Optional[set] = set() if dedupe else None
        for key in arr:
            if max_fetch is not None and len(issued) >= max_fetch:
                break
            k = int(key)
            if attempted is not None:
                if k in attempted or self.contains_fast(k):
                    continue
                attempted.add(k)
            elif self.contains_fast(k):
                continue
            total_time += self.fetch(
                k, step, prefetch=True, min_free_step=min_free_step, tenant=tenant
            ).time_s
            issued.append(k)
        return issued, total_time

    # -- preload ---------------------------------------------------------------

    def preload(self, keys_by_priority: Sequence[int]) -> "dict[str, int]":
        if self._solo is not None:
            return self._solo.preload(keys_by_priority)
        arr = np.ascontiguousarray(keys_by_priority, dtype=np.int64)
        placed: dict = {}
        by_node = self.shard_map.partition(arr)
        for node_idx, keys in sorted(by_node.items()):
            placed.update(self.nodes[node_idx].preload(keys))
        return placed

    # -- stats & lifecycle -------------------------------------------------------

    def stats(self) -> HierarchyStats:
        if self._solo is not None:
            return self._solo.stats()
        levels = {}
        for node in self.nodes:
            for lv in node.levels:
                levels[lv.name] = lv.stats
        if self.ghost is not None:
            levels["ghost"] = self.ghost.stats
        return HierarchyStats(levels=levels)

    def cluster_ledger(self) -> dict:
        """The exact byte/time split the conservation tests reconcile."""
        split = dict(self._split)
        if self._solo is not None:
            solo = self._solo
            split["local"] = solo.backing_bytes + solo.stats().total_bytes_read
        return {
            "n_nodes": self.n_nodes,
            "home": self.home,
            "failed_nodes": sorted(self._failed),
            "shard_map": self.shard_map.as_dict(),
            "split_bytes": split,
            "links": self.fabric.ledger(),
            "peer_bytes": self.fabric.total_bytes,
            "peer_time_s": self.fabric.total_time_s,
            "peer_transfers": self.fabric.total_transfers,
            "link_fallbacks": self.fabric.total_fallbacks,
            "fallback_reads": self._fallback_reads,
            "node_serves": {f"n{k}": c for k, c in enumerate(self._node_serves)},
        }

    def reset_stats(self) -> None:
        for node in self.nodes:
            node.reset_stats()
        if self.ghost is not None:
            self.ghost.stats.reset()
        self._fallback_reads = 0
        self._fallback_bytes = 0
        self._split = {"local": 0, "ghost": 0, "peer": 0, "cold": 0}
        self._node_serves = [0] * len(self.nodes)
        self.fabric.reset()

    def clear(self) -> None:
        for node in self.nodes:
            node.clear()
        if self.ghost is not None:
            self.ghost.clear()

    def check_invariants(self) -> None:
        for node in self.nodes:
            node.check_invariants()
        if self.ghost is not None:
            self.ghost.check_invariants()

    @property
    def levels(self):
        """Every cache level across every node (plus the ghost cache)."""
        if self._solo is not None:
            return self._solo.levels
        out = [lv for node in self.nodes for lv in node.levels]
        if self.ghost is not None:
            out.append(self.ghost)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedHierarchy(n_nodes={self.n_nodes}, home={self.home}, "
            f"strategy={self.shard_map.strategy!r}, ghost={self.ghost is not None})"
        )


def make_sharded_hierarchy(
    grid: BlockGrid,
    n_nodes: int,
    block_nbytes=None,
    strategy: str = "slab",
    shard_map: Optional[ShardMap] = None,
    cache_ratio: float = 0.5,
    policy: str = "lru",
    ghost_ratio: float = 0.0,
    link_latency_s: float = DEFAULT_LINK_LATENCY_S,
    link_bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH_BPS,
    devices: Sequence[StorageDevice] = (DRAM, SSD),
    backing: StorageDevice = HDD,
    home: int = 0,
    n_variables: int = 1,
    seed: int = 0,
    tracer=None,
    registry=None,
) -> ShardedHierarchy:
    """Build a K-node sharded hierarchy over ``grid``.

    At K=1 the single node is exactly ``make_standard_hierarchy`` (level
    names ``dram``/``ssd`` over ``hdd``), so the sharded wrapper is
    bit-for-bit the single-box simulator.  For K>1 each node's DRAM/SSD
    tier is sized by the successive ``cache_ratio`` powers of its *owned*
    block count, its devices are renamed ``n{k}.dram``/``n{k}.ssd`` so
    fault profiles target individual nodes, and ``ghost_ratio`` > 0 adds
    a home-side ghost cache for replicated remote blocks.
    """
    n_blocks = grid.n_blocks
    if block_nbytes is None:
        block_nbytes = grid.uniform_block_nbytes(n_variables=n_variables)
    if shard_map is None:
        shard_map = ShardMap(grid, n_nodes, strategy, seed)
    elif shard_map.n_nodes != n_nodes:
        raise ValueError(
            f"shard_map is {shard_map.n_nodes}-way but n_nodes={n_nodes}"
        )
    if n_nodes == 1:
        nodes = [
            make_standard_hierarchy(
                n_blocks, block_nbytes, cache_ratio, policy, devices, backing
            )
        ]
    else:
        if not 0 < cache_ratio <= 1:
            raise ValueError(f"cache_ratio must be in (0, 1], got {cache_ratio}")
        counts = shard_map.counts()
        nodes = []
        for k in range(n_nodes):
            owned = max(1, int(counts[k]))
            levels: List[CacheLevel] = []
            node_devices: List[StorageDevice] = []
            frac = 1.0
            for device in reversed(devices):  # slowest cache level first for sizing
                frac *= cache_ratio
                capacity = max(1, int(round(owned * frac)))
                named = StorageDevice(
                    f"n{k}.{device.name}", device.read_latency_s, device.read_bandwidth_bps
                )
                node_devices.append(named)
                levels.append(
                    CacheLevel(named.name, capacity, make_policy(policy), n_blocks=n_blocks)
                )
            levels.reverse()
            node_devices.reverse()
            nodes.append(MemoryHierarchy(levels, node_devices, backing, block_nbytes))
    fabric = NetworkFabric(n_nodes, link_latency_s, link_bandwidth_bps)
    ghost = None
    if ghost_ratio > 0 and n_nodes > 1:
        if ghost_ratio > 1:
            raise ValueError(f"ghost_ratio must be in [0, 1], got {ghost_ratio}")
        ghost = CacheLevel(
            "ghost",
            max(1, int(round(n_blocks * ghost_ratio))),
            make_policy(policy),
            n_blocks=n_blocks,
        )
    return ShardedHierarchy(
        shard_map,
        nodes,
        fabric,
        block_nbytes,
        home=home,
        ghost=ghost,
        backing=backing,
        tracer=tracer,
        registry=registry,
    )
