"""Simulated K-node cluster: sharded block ownership + network cost model.

The paper's replacement policy assumes a single-box DRAM/SSD/HDD
hierarchy.  This package partitions the block grid across K simulated
nodes (:class:`ShardMap`), gives each node its own DRAM/SSD tier over a
shared cold store, and charges peer transfers on a per-link network cost
model (:class:`NetworkLink` / :class:`NetworkFabric`) using the same
sim-clock ledger as the storage devices.  :class:`ShardedHierarchy`
implements the :class:`~repro.storage.hierarchy.MemoryHierarchy`
fetch/prefetch surface, so it drops into the existing engines, the
sessions scheduler, and the bench/serve harnesses unchanged — and at
K=1 it delegates wholesale to a single-box hierarchy, which the
shard-equivalence suite pins bit-for-bit against ``run_baseline``.
"""

from repro.cluster.faults import (
    CLUSTER_FAULT_PROFILES,
    cluster_fault_plan,
    partitioned_links,
)
from repro.cluster.hierarchy import ShardedHierarchy, make_sharded_hierarchy
from repro.cluster.network import NetworkFabric, NetworkLink
from repro.cluster.prefetch import GhostLayerPrefetcher, ReplicationPrefetcher
from repro.cluster.shardmap import SHARD_STRATEGIES, ShardMap

__all__ = [
    "CLUSTER_FAULT_PROFILES",
    "GhostLayerPrefetcher",
    "NetworkFabric",
    "NetworkLink",
    "ReplicationPrefetcher",
    "SHARD_STRATEGIES",
    "ShardMap",
    "ShardedHierarchy",
    "cluster_fault_plan",
    "make_sharded_hierarchy",
    "partitioned_links",
]
