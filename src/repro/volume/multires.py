"""Multi-resolution volume pyramids (the conventional view-dependent path).

§III-B of the paper describes the classic out-of-core strategy it argues
against for data-dependent work: build a multi-resolution representation
and, for regions far from the camera, load only a coarser level.  We build
that substrate so the benches can compare it honestly — it moves fewer
bytes for view-dependent rendering, but *data-dependent* operations
(histograms, correlations, queries) computed on coarse levels are wrong in
ways a priori unknown functions cannot tolerate, which is exactly the
paper's argument for full-resolution app-aware placement.

A :class:`MipPyramid` holds level 0 (full resolution) plus successive 2×
downsampled levels, each with its own :class:`~repro.volume.blocks.BlockGrid`
using the *same block voxel shape* — so a level-(k+1) block covers 8× the
spatial extent at an 8th of the bytes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = ["MipPyramid", "downsample2", "select_levels_by_distance"]


def downsample2(data: np.ndarray) -> np.ndarray:
    """2× box-filter downsampling along every axis (odd edges averaged short).

    Pure-numpy mean pooling: pads nothing, pools ``ceil(n/2)`` cells per
    axis where the last cell may cover a single slice.
    """
    data = np.asarray(data)
    if data.ndim != 3:
        raise ValueError(f"expected a 3D array, got shape {data.shape}")
    out = data.astype(np.float64)
    for axis in range(3):
        n = out.shape[axis]
        pairs = n // 2
        main = np.take(out, range(0, 2 * pairs, 2), axis=axis)
        other = np.take(out, range(1, 2 * pairs, 2), axis=axis)
        pooled = 0.5 * (main + other)
        if n % 2:
            tail = np.take(out, [n - 1], axis=axis)
            pooled = np.concatenate([pooled, tail], axis=axis)
        out = pooled
    return out.astype(np.float32)


class MipPyramid:
    """Level pyramid over one variable of a volume.

    Level 0 is the original resolution; level ``k`` is ``2^k``-times
    coarser per axis.  All levels share the block *voxel* shape, so grids
    shrink with the data and a coarse block stands in for ``8^k`` fine
    blocks' worth of space at ``1/8^k`` of the bytes.
    """

    def __init__(self, volume: Volume, block_shape: Tuple[int, int, int],
                 n_levels: int = 3, variable: Optional[str] = None) -> None:
        check_positive("n_levels", n_levels)
        self.variable = variable or volume.primary
        self.levels: List[Volume] = [volume]
        data = volume.data(variable)
        for level in range(1, n_levels):
            if min(data.shape) < 2 * min(block_shape):
                break  # stop before blocks outgrow the level
            data = downsample2(data)
            self.levels.append(Volume(data, name=f"{volume.name}_L{level}"))
        self.grids: List[BlockGrid] = []
        for vol in self.levels:
            shape = vol.shape
            bs = tuple(min(b, s) for b, s in zip(block_shape, shape))
            self.grids.append(BlockGrid(shape, bs))

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def level_nbytes(self, level: int) -> int:
        return self.levels[level].n_voxels * 4

    def total_nbytes(self) -> int:
        """Pyramid storage cost (≈ 8/7 of level 0 for deep pyramids)."""
        return sum(self.level_nbytes(k) for k in range(self.n_levels))

    def block_data(self, level: int, block_id: int) -> np.ndarray:
        """Voxels of one block at one level (a view)."""
        grid = self.grids[level]
        return self.levels[level].data()[grid.block_slices(block_id)]

    def reconstruct_full(self, level: int) -> np.ndarray:
        """Upsample level ``k`` back to level-0 resolution (nearest).

        Used to quantify the data-dependent error of working at a coarse
        level: compare statistics of the reconstruction against level 0.
        """
        if not 0 <= level < self.n_levels:
            raise IndexError(f"level {level} outside [0, {self.n_levels})")
        coarse = self.levels[level].data()
        target = self.levels[0].shape
        out = coarse
        for axis in range(3):
            idx = np.minimum(
                (np.arange(target[axis]) * out.shape[axis] // target[axis]),
                out.shape[axis] - 1,
            )
            out = np.take(out, idx, axis=axis)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shapes = [v.shape for v in self.levels]
        return f"MipPyramid(levels={shapes}, variable={self.variable!r})"


def select_levels_by_distance(
    camera_position: np.ndarray,
    grid: BlockGrid,
    n_levels: int,
    base_distance: float = 1.5,
) -> np.ndarray:
    """Per-block level choice: farther blocks use coarser levels.

    The conventional LoD heuristic: a block at distance ``d`` from the
    camera renders at level ``floor(log2(d / base_distance))`` clamped to
    the pyramid depth — each doubling of distance halves the required
    resolution (constant projected voxel size).
    """
    check_positive("base_distance", base_distance)
    if n_levels < 1:
        raise ValueError(f"n_levels must be >= 1, got {n_levels}")
    camera_position = np.asarray(camera_position, dtype=np.float64)
    dists = np.linalg.norm(grid.centers() - camera_position[None, :], axis=1)
    ratio = np.maximum(dists / base_distance, 1.0)
    levels = np.floor(np.log2(ratio)).astype(np.int64)
    return np.clip(levels, 0, n_levels - 1)
