"""Registry of the paper's experimental datasets (Table I analogues).

The paper's datasets (4 GB `3d_ball`, two S3D combustion fields, a 7.2 GB
WRF climate run) are proprietary or too large for a laptop reproduction, so
each entry here is a procedurally generated analogue whose *shape* matches
Table I scaled down by ``scale`` per axis (default 1/4).  DESIGN.md §2
documents why the substitution preserves the replacement behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.rng import SeedLike
from repro.volume.synthetic import ball_field, climate_field, combustion_field
from repro.volume.volume import Volume

__all__ = ["DatasetSpec", "DATASETS", "make_dataset", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table I plus the generator that builds its analogue."""

    name: str
    description: str
    paper_resolution: Tuple[int, int, int]
    paper_n_variables: int
    paper_size: str  # as printed in Table I
    default_scale: float  # per-axis shrink factor of the analogue

    def resolution(self, scale: float | None = None) -> Tuple[int, int, int]:
        """Analogue resolution: paper resolution scaled per axis (min 16)."""
        s = self.default_scale if scale is None else scale
        if s <= 0:
            raise ValueError(f"scale must be > 0, got {s}")
        return tuple(max(16, int(round(r * s))) for r in self.paper_resolution)


DATASETS: Dict[str, DatasetSpec] = {
    "3d_ball": DatasetSpec(
        name="3d_ball",
        description="a synthetic dataset",
        paper_resolution=(1024, 1024, 1024),
        paper_n_variables=1,
        paper_size="4GB",
        default_scale=0.125,
    ),
    "lifted_mix_frac": DatasetSpec(
        name="lifted_mix_frac",
        description="a combustion simulation dataset",
        paper_resolution=(800, 686, 215),
        paper_n_variables=1,
        paper_size="472MB",
        default_scale=0.125,
    ),
    "lifted_rr": DatasetSpec(
        name="lifted_rr",
        description="a combustion simulation dataset",
        paper_resolution=(800, 800, 400),
        paper_n_variables=1,
        paper_size="1GB",
        default_scale=0.125,
    ),
    "climate": DatasetSpec(
        name="climate",
        description="a climate simulation dataset",
        paper_resolution=(294, 258, 98),
        paper_n_variables=244,
        paper_size="7.2GB",
        default_scale=0.25,
    ),
}

# Analogue variable counts: the climate analogue defaults to 16 variables
# (enough for a non-trivial correlation matrix) instead of the paper's 244;
# pass n_variables to make_dataset to raise it.
_DEFAULT_CLIMATE_VARS = 16


def make_dataset(
    name: str,
    scale: float | None = None,
    seed: SeedLike = 0,
    n_variables: int | None = None,
) -> Volume:
    """Build the analogue :class:`Volume` for a Table I dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    shape = spec.resolution(scale)
    if name == "3d_ball":
        return Volume(ball_field(shape), name=name)
    if name in ("lifted_mix_frac", "lifted_rr"):
        return Volume(combustion_field(shape, seed=seed), name=name)
    if name == "climate":
        nvar = n_variables if n_variables is not None else _DEFAULT_CLIMATE_VARS
        return Volume(climate_field(shape, n_variables=nvar, seed=seed), name=name, primary="smoke_pm10")
    raise AssertionError(f"unhandled dataset {name!r}")  # pragma: no cover


def dataset_table(scale: float | None = None) -> str:
    """Render Table I (paper values plus the analogue resolutions) as text."""
    header = f"{'name':<17}{'description':<34}{'paper resolution':<22}{'#vars':<7}{'size':<8}{'analogue resolution'}"
    lines = [header, "-" * len(header)]
    for spec in DATASETS.values():
        res = "x".join(str(r) for r in spec.paper_resolution)
        ares = "x".join(str(r) for r in spec.resolution(scale))
        lines.append(
            f"{spec.name:<17}{spec.description:<34}{res:<22}{spec.paper_n_variables:<7}{spec.paper_size:<8}{ares}"
        )
    return "\n".join(lines)
