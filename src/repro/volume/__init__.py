"""Volume data substrate.

Provides the volumetric datasets the paper visualizes (Table I analogues),
uniform block partitioning (the unit of data movement in the whole system),
and an on-disk block store for examples that want real file I/O.
"""

from repro.volume.volume import Volume
from repro.volume.blocks import BlockGrid
from repro.volume.synthetic import (
    ball_field,
    combustion_field,
    climate_field,
    multiscale_noise,
)
from repro.volume.datasets import (
    DatasetSpec,
    DATASETS,
    make_dataset,
    dataset_table,
)
from repro.volume.store import BlockStore, InMemoryBlockStore, FileBlockStore
from repro.volume.layout import (
    morton_layout,
    row_major_layout,
    total_seek_distance,
    mean_seek_distance,
)
from repro.volume.multires import MipPyramid, downsample2, select_levels_by_distance
from repro.volume.timeseries import (
    TimeVaryingVolume,
    make_time_varying_climate,
    temporal_block_id,
    split_temporal_id,
)

__all__ = [
    "Volume",
    "BlockGrid",
    "ball_field",
    "combustion_field",
    "climate_field",
    "multiscale_noise",
    "DatasetSpec",
    "DATASETS",
    "make_dataset",
    "dataset_table",
    "BlockStore",
    "InMemoryBlockStore",
    "FileBlockStore",
    "morton_layout",
    "row_major_layout",
    "total_seek_distance",
    "mean_seek_distance",
    "MipPyramid",
    "downsample2",
    "select_levels_by_distance",
    "TimeVaryingVolume",
    "make_time_varying_climate",
    "temporal_block_id",
    "split_temporal_id",
]
