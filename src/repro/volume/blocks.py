"""Uniform block partitioning of a volume.

The block is the unit of everything in this system: visibility is decided
per block (Eq. 1 tests the eight block corners), entropy is computed per
block, and the memory hierarchy caches and replaces blocks.  ``BlockGrid``
owns the id scheme, voxel slices, and normalized-space geometry
(the paper normalizes the volume edge to 2, coordinates in [-1, 1]).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.validation import check_shape_3d

__all__ = ["BlockGrid"]

_CORNER_OFFSETS = np.array(
    [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.float64
)  # (8, 3) unit-cube corners


class BlockGrid:
    """Partition of a ``volume_shape`` voxel grid into uniform blocks.

    Blocks are addressed by a flat id in ``[0, n_blocks)`` laid out in
    C order over block indices ``(bi, bj, bk)``.  Edge blocks may be
    partial when the volume shape is not divisible by the block shape.

    Geometry is exposed in *normalized coordinates*: each axis of the
    volume maps linearly onto [-1, 1] (the paper's Fig. 10 convention),
    so the volume occupies the cube of edge 2 centred at the origin.
    """

    def __init__(self, volume_shape: Tuple[int, int, int], block_shape: Tuple[int, int, int]) -> None:
        self.volume_shape = check_shape_3d("volume_shape", volume_shape)
        self.block_shape = check_shape_3d("block_shape", block_shape)
        for axis in range(3):
            if self.block_shape[axis] > self.volume_shape[axis]:
                raise ValueError(
                    f"block_shape{self.block_shape} exceeds volume_shape{self.volume_shape} on axis {axis}"
                )
        self.blocks_per_axis: Tuple[int, int, int] = tuple(
            -(-self.volume_shape[a] // self.block_shape[a]) for a in range(3)
        )  # ceil division
        self.n_blocks = int(np.prod(self.blocks_per_axis))
        self._corners: Optional[np.ndarray] = None
        self._centers: Optional[np.ndarray] = None
        self._bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- id scheme -----------------------------------------------------------

    def block_index(self, block_id: int) -> Tuple[int, int, int]:
        """Flat id -> 3D block index ``(bi, bj, bk)``."""
        self._check_id(block_id)
        gx, gy, gz = self.blocks_per_axis
        bi, rem = divmod(block_id, gy * gz)
        bj, bk = divmod(rem, gz)
        return bi, bj, bk

    def block_id(self, bi: int, bj: int, bk: int) -> int:
        """3D block index -> flat id."""
        gx, gy, gz = self.blocks_per_axis
        if not (0 <= bi < gx and 0 <= bj < gy and 0 <= bk < gz):
            raise IndexError(f"block index ({bi},{bj},{bk}) outside grid {self.blocks_per_axis}")
        return (bi * gy + bj) * gz + bk

    def _check_id(self, block_id: int) -> None:
        if not (0 <= block_id < self.n_blocks):
            raise IndexError(f"block id {block_id} outside [0, {self.n_blocks})")

    def __len__(self) -> int:
        return self.n_blocks

    def iter_ids(self) -> Iterator[int]:
        return iter(range(self.n_blocks))

    # -- voxel extents -------------------------------------------------------

    def block_slices(self, block_id: int) -> Tuple[slice, slice, slice]:
        """Voxel slices of a block (clipped at the volume boundary)."""
        bi, bj, bk = self.block_index(block_id)
        bx, by, bz = self.block_shape
        nx, ny, nz = self.volume_shape
        return (
            slice(bi * bx, min((bi + 1) * bx, nx)),
            slice(bj * by, min((bj + 1) * by, ny)),
            slice(bk * bz, min((bk + 1) * bz, nz)),
        )

    def block_voxel_shape(self, block_id: int) -> Tuple[int, int, int]:
        """Actual voxel extent of a block (edge blocks may be partial)."""
        sl = self.block_slices(block_id)
        return tuple(s.stop - s.start for s in sl)

    def block_n_voxels(self, block_id: int) -> int:
        sx, sy, sz = self.block_voxel_shape(block_id)
        return sx * sy * sz

    def block_nbytes(self, block_id: int, itemsize: int = 4, n_variables: int = 1) -> int:
        """Payload bytes of one block (float32 voxels by default)."""
        return self.block_n_voxels(block_id) * itemsize * n_variables

    def uniform_block_nbytes(self, itemsize: int = 4, n_variables: int = 1) -> int:
        """Nominal bytes of a full (non-edge) block — the cost-model unit."""
        bx, by, bz = self.block_shape
        return bx * by * bz * itemsize * n_variables

    # -- normalized geometry ---------------------------------------------------

    def _voxel_to_normalized(self, voxel_coords: np.ndarray) -> np.ndarray:
        """Map voxel-space coordinates (0..n per axis) to [-1, 1] per axis."""
        scale = 2.0 / np.asarray(self.volume_shape, dtype=np.float64)
        return voxel_coords * scale - 1.0

    def corners(self) -> np.ndarray:
        """Normalized corner coordinates of every block, shape ``(n_blocks, 8, 3)``.

        Cached after first call; this is the hot input of the visibility
        kernel (Eq. 1) so it is computed fully vectorised.
        """
        if self._corners is None:
            lo, hi = self.bounds()
            # corner = lo + offset * (hi - lo); broadcast (B,1,3)*(8,3)
            self._corners = lo[:, None, :] + _CORNER_OFFSETS[None, :, :] * (hi - lo)[:, None, :]
        return self._corners

    def centers(self) -> np.ndarray:
        """Normalized block centers, shape ``(n_blocks, 3)``."""
        if self._centers is None:
            lo, hi = self.bounds()
            self._centers = 0.5 * (lo + hi)
        return self._centers

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Normalized per-block AABBs as ``(lo, hi)`` arrays of shape ``(n_blocks, 3)``."""
        if self._bounds is None:
            gx, gy, gz = self.blocks_per_axis
            bx, by, bz = self.block_shape
            nx, ny, nz = self.volume_shape
            bi, bj, bk = np.meshgrid(
                np.arange(gx), np.arange(gy), np.arange(gz), indexing="ij"
            )
            idx = np.stack([bi.ravel(), bj.ravel(), bk.ravel()], axis=1).astype(np.float64)
            block = np.array([bx, by, bz], dtype=np.float64)
            vol = np.array([nx, ny, nz], dtype=np.float64)
            lo_vox = idx * block
            hi_vox = np.minimum(lo_vox + block, vol)
            self._bounds = (
                self._voxel_to_normalized(lo_vox),
                self._voxel_to_normalized(hi_vox),
            )
        return self._bounds

    def blocks_containing(self, point: np.ndarray) -> np.ndarray:
        """Ids of blocks whose normalized AABB contains ``point`` (0 or 1 ids)."""
        point = np.asarray(point, dtype=np.float64)
        lo, hi = self.bounds()
        inside = np.all((point >= lo) & (point <= hi), axis=1)
        return np.flatnonzero(inside)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockGrid(volume_shape={self.volume_shape}, block_shape={self.block_shape}, "
            f"blocks_per_axis={self.blocks_per_axis}, n_blocks={self.n_blocks})"
        )

    # -- factory helpers -------------------------------------------------------

    @staticmethod
    def with_target_blocks(volume_shape: Tuple[int, int, int], target_n_blocks: int) -> "BlockGrid":
        """A grid whose block count is close to ``target_n_blocks``.

        The paper sweeps block *divisions* (Fig. 9: 512..16384 blocks); this
        helper picks per-axis splits proportional to the axis lengths so the
        blocks stay roughly cubic.
        """
        if target_n_blocks < 1:
            raise ValueError(f"target_n_blocks must be >= 1, got {target_n_blocks}")
        shape = np.asarray(check_shape_3d("volume_shape", volume_shape), dtype=np.float64)
        # Ideal splits: s_a proportional to shape_a with prod(s) = target.
        k = (target_n_blocks / float(np.prod(shape))) ** (1.0 / 3.0)
        splits = np.maximum(1, np.round(k * shape)).astype(int)
        splits = np.minimum(splits, shape.astype(int))
        block_shape = tuple(int(-(-int(shape[a]) // int(splits[a]))) for a in range(3))
        return BlockGrid(tuple(int(s) for s in volume_shape), block_shape)
