"""Block stores: where block payloads actually live.

The *timing* of block movement is simulated by :mod:`repro.storage`
(DESIGN.md: deterministic simulated clock); the stores here provide the
*payloads* so that examples and the renderer can operate on real voxels.

Two backends:

- :class:`InMemoryBlockStore` — blocks served from the in-process volume
  (default for experiments; zero real I/O so benchmarks measure the model).
- :class:`FileBlockStore` — one raw ``float32`` file per block on disk, for
  examples that want the out-of-core data layout the paper describes.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = [
    "BlockStore",
    "InMemoryBlockStore",
    "FileBlockStore",
    "RetryingBlockStore",
    "CountingBlockStore",
]


class BlockStore(abc.ABC):
    """Read access to block payloads of one volume variable."""

    def __init__(self, grid: BlockGrid) -> None:
        self.grid = grid

    @abc.abstractmethod
    def read_block(self, block_id: int) -> np.ndarray:
        """The voxels of ``block_id`` as a 3D float32 array."""

    def block_nbytes(self, block_id: int) -> int:
        """Payload size used by the cost model."""
        return self.grid.block_nbytes(block_id)


class InMemoryBlockStore(BlockStore):
    """Serve blocks directly from a resident :class:`Volume` (views, no copies)."""

    def __init__(self, volume: Volume, grid: BlockGrid, variable: Optional[str] = None) -> None:
        if grid.volume_shape != volume.shape:
            raise ValueError(
                f"grid shape {grid.volume_shape} does not match volume shape {volume.shape}"
            )
        super().__init__(grid)
        self._data = volume.data(variable)

    def read_block(self, block_id: int) -> np.ndarray:
        return self._data[self.grid.block_slices(block_id)]


class FileBlockStore(BlockStore):
    """One raw little-endian float32 file per block under ``root``.

    Layout: ``root/block_<id:06d>.raw`` holding the block voxels in C order.
    :meth:`write_volume` materialises a volume into this layout (the
    paper's out-of-core preprocessing of partitioning the data into blocks).
    """

    def __init__(self, root: "str | Path", grid: BlockGrid) -> None:
        super().__init__(grid)
        self.root = Path(root)

    def _path(self, block_id: int) -> Path:
        self.grid._check_id(block_id)
        return self.root / f"block_{block_id:06d}.raw"

    @classmethod
    def write_volume(
        cls,
        volume: Volume,
        grid: BlockGrid,
        root: "str | Path",
        variable: Optional[str] = None,
    ) -> "FileBlockStore":
        """Partition ``volume`` into per-block files under ``root``."""
        store = cls(root, grid)
        store.root.mkdir(parents=True, exist_ok=True)
        data = volume.data(variable)
        if grid.volume_shape != volume.shape:
            raise ValueError(
                f"grid shape {grid.volume_shape} does not match volume shape {volume.shape}"
            )
        for bid in grid.iter_ids():
            block = np.ascontiguousarray(data[grid.block_slices(bid)], dtype="<f4")
            block.tofile(store._path(bid))
        return store

    def read_block(self, block_id: int) -> np.ndarray:
        shape = self.grid.block_voxel_shape(block_id)
        raw = np.fromfile(self._path(block_id), dtype="<f4")
        expected = int(np.prod(shape))
        if raw.size != expected:
            raise IOError(
                f"block {block_id}: file has {raw.size} voxels, expected {expected}"
            )
        return raw.reshape(shape)


class RetryingBlockStore(BlockStore):
    """Retry transient read failures from a flaky backing store.

    Out-of-core sessions run for hours against network filesystems and
    ageing disks; a bounded retry with validation keeps one transient
    ``IOError``/``OSError`` from killing an exploration.  Non-I/O errors
    propagate immediately; exhausting the retries re-raises the last error.
    """

    def __init__(self, inner: BlockStore, max_retries: int = 3) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        super().__init__(inner.grid)
        self.inner = inner
        self.max_retries = int(max_retries)
        self.retries_used = 0

    def read_block(self, block_id: int) -> np.ndarray:
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            try:
                block = self.inner.read_block(block_id)
            except OSError as exc:  # includes IOError
                last_error = exc
                if attempt < self.max_retries:
                    self.retries_used += 1
                continue
            expected = self.grid.block_voxel_shape(block_id)
            if tuple(block.shape) != expected:
                last_error = IOError(
                    f"block {block_id}: got shape {block.shape}, expected {expected}"
                )
                if attempt < self.max_retries:
                    self.retries_used += 1
                continue
            return block
        assert last_error is not None
        raise last_error


class CountingBlockStore(BlockStore):
    """Wrap another store and count physical reads (test/diagnostic helper)."""

    def __init__(self, inner: BlockStore) -> None:
        super().__init__(inner.grid)
        self.inner = inner
        self.read_counts: Dict[int, int] = {}

    def read_block(self, block_id: int) -> np.ndarray:
        self.read_counts[block_id] = self.read_counts.get(block_id, 0) + 1
        return self.inner.read_block(block_id)

    @property
    def total_reads(self) -> int:
        return sum(self.read_counts.values())
