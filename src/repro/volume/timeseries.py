"""Time-varying volumes.

The paper's climate dataset is time-varying (Table I); interactive
exploration steps both the camera *and* the timestep.  A
:class:`TimeVaryingVolume` is a sequence of same-shaped
:class:`~repro.volume.volume.Volume` snapshots with a global block-id
scheme: block ``(t, spatial_id)`` maps to the flat id
``t * grid.n_blocks + spatial_id``, so the existing hierarchy, policies
and statistics work unchanged over temporal data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.importance.entropy import DEFAULT_N_BINS, block_entropies
from repro.tables.importance_table import ImportanceTable
from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = ["TimeVaryingVolume", "temporal_block_id", "split_temporal_id"]


def temporal_block_id(t: int, spatial_id: int, n_spatial_blocks: int) -> int:
    """Flat id of spatial block ``spatial_id`` at timestep ``t``."""
    if t < 0 or spatial_id < 0 or spatial_id >= n_spatial_blocks:
        raise IndexError(f"invalid (t={t}, spatial={spatial_id}) for {n_spatial_blocks} blocks")
    return t * n_spatial_blocks + spatial_id


def split_temporal_id(block_id: int, n_spatial_blocks: int) -> Tuple[int, int]:
    """Inverse of :func:`temporal_block_id`: returns ``(t, spatial_id)``."""
    if block_id < 0:
        raise IndexError(f"invalid block id {block_id}")
    return divmod(block_id, n_spatial_blocks)


class TimeVaryingVolume:
    """A sequence of volume snapshots sharing shape and variables."""

    def __init__(self, snapshots: Sequence[Volume], name: str = "timeseries") -> None:
        if not snapshots:
            raise ValueError("need at least one snapshot")
        shape = snapshots[0].shape
        variables = snapshots[0].variable_names
        for i, snap in enumerate(snapshots):
            if snap.shape != shape:
                raise ValueError(f"snapshot {i} has shape {snap.shape}, expected {shape}")
            if snap.variable_names != variables:
                raise ValueError(f"snapshot {i} variables differ: {snap.variable_names}")
        self.snapshots: List[Volume] = list(snapshots)
        self.name = str(name)

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t: int) -> Volume:
        return self.snapshots[t]

    @property
    def n_timesteps(self) -> int:
        return len(self.snapshots)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.snapshots[0].shape

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.snapshots)

    # -- temporal blocking ---------------------------------------------------------

    def n_total_blocks(self, grid: BlockGrid) -> int:
        """Blocks across all timesteps (the temporal cache's id space)."""
        self._check_grid(grid)
        return grid.n_blocks * self.n_timesteps

    def temporal_visible_ids(self, spatial_ids: np.ndarray, t: int, grid: BlockGrid) -> np.ndarray:
        """Map a spatial visible set onto timestep ``t``'s flat ids."""
        self._check_grid(grid)
        if not 0 <= t < self.n_timesteps:
            raise IndexError(f"timestep {t} outside [0, {self.n_timesteps})")
        return np.asarray(spatial_ids, dtype=np.int64) + t * grid.n_blocks

    def block_data(self, block_id: int, grid: BlockGrid, variable: Optional[str] = None) -> np.ndarray:
        """Voxels of a temporal block (timestep resolved from the id)."""
        self._check_grid(grid)
        t, spatial = split_temporal_id(block_id, grid.n_blocks)
        if t >= self.n_timesteps:
            raise IndexError(f"block id {block_id} addresses timestep {t} of {self.n_timesteps}")
        return self.snapshots[t].data(variable)[grid.block_slices(spatial)]

    def _check_grid(self, grid: BlockGrid) -> None:
        if grid.volume_shape != self.shape:
            raise ValueError(f"grid shape {grid.volume_shape} does not match {self.shape}")

    # -- importance over time ------------------------------------------------------

    def temporal_importance(
        self,
        grid: BlockGrid,
        n_bins: int = DEFAULT_N_BINS,
        variable: Optional[str] = None,
    ) -> ImportanceTable:
        """Entropy of every temporal block, as one flat importance table.

        Scores are comparable across timesteps because each snapshot's
        histogram uses its own global value range per the paper's Eq. 2
        protocol; the flat table drives preload/prefetch over the temporal
        id space.
        """
        self._check_grid(grid)
        scores = np.concatenate(
            [block_entropies(v, grid, n_bins, variable) for v in self.snapshots]
        )
        return ImportanceTable(scores, measure="entropy")

    def temporal_change(self, grid: BlockGrid, variable: Optional[str] = None) -> np.ndarray:
        """Mean absolute change of each spatial block between snapshots.

        A temporal importance signal beyond the paper (its future work):
        blocks that change fast are worth re-fetching at each timestep;
        static blocks can be reused.  Shape ``(n_timesteps - 1, n_blocks)``.
        """
        self._check_grid(grid)
        if self.n_timesteps < 2:
            return np.zeros((0, grid.n_blocks))
        out = np.empty((self.n_timesteps - 1, grid.n_blocks))
        for t in range(self.n_timesteps - 1):
            a = self.snapshots[t].data(variable)
            b = self.snapshots[t + 1].data(variable)
            diff = np.abs(b.astype(np.float64) - a.astype(np.float64))
            for bid in grid.iter_ids():
                out[t, bid] = float(diff[grid.block_slices(bid)].mean())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeVaryingVolume(name={self.name!r}, n_timesteps={self.n_timesteps}, "
            f"shape={self.shape})"
        )


def make_time_varying_climate(
    shape: Tuple[int, int, int] = (48, 40, 16),
    n_timesteps: int = 4,
    n_variables: int = 4,
    seed: int = 11,
) -> TimeVaryingVolume:
    """A drifting climate analogue: the vortex/smoke advect between steps.

    Each timestep reuses the climate generator with a shifted seed plus a
    blend toward the previous step, giving temporally-coherent snapshots
    (consecutive steps correlate, distant ones decorrelate).
    """
    from repro.volume.synthetic import climate_field

    if n_timesteps < 1:
        raise ValueError(f"n_timesteps must be >= 1, got {n_timesteps}")
    snapshots: List[Volume] = []
    prev: Optional[dict] = None
    for t in range(n_timesteps):
        fields = climate_field(shape, n_variables=n_variables, seed=seed + t)
        if prev is not None:
            # Blend with the previous step for temporal coherence.
            fields = {
                k: (0.65 * prev[k] + 0.35 * v).astype(np.float32)
                for k, v in fields.items()
            }
        snapshots.append(Volume(fields, name=f"climate_t{t}", primary="smoke_pm10"))
        prev = {k: snapshots[-1][k] for k in fields}
    return TimeVaryingVolume(snapshots, name="climate_timeseries")
