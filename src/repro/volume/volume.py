"""The :class:`Volume` container.

A volume is one or more same-shaped scalar fields ("variables") on a
regular 3D grid, matching the paper's datasets: single-variable combustion
fields and a 244-variable climate field (Table I).  Values are stored as
4-byte floats, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.utils.validation import check_shape_3d

__all__ = ["Volume"]


class Volume:
    """A (possibly multivariate) volumetric dataset.

    Parameters
    ----------
    variables:
        Mapping of variable name to a 3D ``float32`` array.  All variables
        must share one shape.  A bare array is accepted and stored under the
        name ``"var0"``.
    name:
        Dataset name (used in reports).
    primary:
        The variable driving visibility-independent analyses (entropy
        ranking, rendering) — defaults to the first variable.
    """

    def __init__(
        self,
        variables: "Mapping[str, np.ndarray] | np.ndarray",
        name: str = "volume",
        primary: Optional[str] = None,
    ) -> None:
        if isinstance(variables, np.ndarray):
            variables = {"var0": variables}
        if not variables:
            raise ValueError("Volume needs at least one variable")
        self.name = str(name)
        self._variables: Dict[str, np.ndarray] = {}
        shape: Optional[Tuple[int, int, int]] = None
        for vname, arr in variables.items():
            arr = np.asarray(arr, dtype=np.float32)
            vshape = check_shape_3d(f"variable {vname!r}", arr.shape)
            if shape is None:
                shape = vshape
            elif vshape != shape:
                raise ValueError(
                    f"variable {vname!r} has shape {vshape}, expected {shape}"
                )
            self._variables[vname] = arr
        self._shape: Tuple[int, int, int] = shape  # type: ignore[assignment]
        if primary is None:
            primary = next(iter(self._variables))
        if primary not in self._variables:
            raise KeyError(f"primary variable {primary!r} not among {list(self._variables)}")
        self.primary = primary

    # -- basic introspection -------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Voxel resolution ``(nx, ny, nz)``."""
        return self._shape

    @property
    def n_voxels(self) -> int:
        """Total voxels per variable."""
        nx, ny, nz = self._shape
        return nx * ny * nz

    @property
    def n_variables(self) -> int:
        return len(self._variables)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._variables)

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes across all variables (float32)."""
        return self.n_voxels * 4 * self.n_variables

    # -- data access ---------------------------------------------------------

    def data(self, variable: Optional[str] = None) -> np.ndarray:
        """The array for ``variable`` (primary when omitted).  A view, not a copy."""
        return self._variables[variable or self.primary]

    def __getitem__(self, variable: str) -> np.ndarray:
        return self._variables[variable]

    def __contains__(self, variable: str) -> bool:
        return variable in self._variables

    def variables(self) -> Iterable[Tuple[str, np.ndarray]]:
        """Iterate ``(name, array)`` pairs."""
        return self._variables.items()

    def value_range(self, variable: Optional[str] = None) -> Tuple[float, float]:
        """Global ``(min, max)`` of a variable — shared histogram bounds for entropy."""
        arr = self.data(variable)
        return float(arr.min()), float(arr.max())

    def subvolume(self, slices: Tuple[slice, slice, slice], variable: Optional[str] = None) -> np.ndarray:
        """The voxels of ``variable`` inside ``slices`` (a view)."""
        return self.data(variable)[slices]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Volume(name={self.name!r}, shape={self._shape}, "
            f"n_variables={self.n_variables}, nbytes={self.nbytes})"
        )
