"""Block layout orders on the backing store.

The paper's related work (§II) credits Pascucci & Frank's space-filling-
curve layout with efficient access to large regular grids.  Where blocks
sit *on disk* matters for HDD-class devices: fetching a view's blocks in
id order seeks across the file, and a layout that keeps spatially-close
blocks close in the file turns frustum fetches into near-sequential runs.

This module provides layout orders (row-major C order, Morton/Z-order) as
permutations of block ids → file slots, plus a seek-cost metric over an
access sequence, so the layout ablation can quantify the §II claim on this
library's own workloads.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.volume.blocks import BlockGrid

__all__ = [
    "row_major_layout",
    "morton_layout",
    "layout_slots",
    "total_seek_distance",
    "mean_seek_distance",
]


def row_major_layout(grid: BlockGrid) -> np.ndarray:
    """Identity layout: block id ``b`` lives in file slot ``b`` (C order)."""
    return np.arange(grid.n_blocks, dtype=np.int64)


def _interleave_bits(i: np.ndarray, j: np.ndarray, k: np.ndarray, bits: int) -> np.ndarray:
    """Morton code: bit-interleave three index arrays (i highest)."""
    code = np.zeros(i.shape, dtype=np.int64)
    for b in range(bits):
        code |= ((i >> b) & 1) << (3 * b + 2)
        code |= ((j >> b) & 1) << (3 * b + 1)
        code |= ((k >> b) & 1) << (3 * b)
    return code


def morton_layout(grid: BlockGrid) -> np.ndarray:
    """Z-order layout: slot of block ``b`` = rank of its Morton code.

    Non-power-of-two grids are handled by ranking the codes (ties cannot
    occur; codes are unique), so slots remain a dense permutation
    ``0..n_blocks-1``.
    """
    gx, gy, gz = grid.blocks_per_axis
    bi, bj, bk = np.meshgrid(
        np.arange(gx), np.arange(gy), np.arange(gz), indexing="ij"
    )
    bits = max(int(np.ceil(np.log2(max(gx, gy, gz)))), 1)
    codes = _interleave_bits(
        bi.ravel().astype(np.int64),
        bj.ravel().astype(np.int64),
        bk.ravel().astype(np.int64),
        bits,
    )
    # slot[b] = rank of block b's code among all codes.
    order = np.argsort(codes, kind="stable")
    slots = np.empty(grid.n_blocks, dtype=np.int64)
    slots[order] = np.arange(grid.n_blocks)
    return slots


def layout_slots(layout: np.ndarray, block_ids: Sequence[int]) -> np.ndarray:
    """File slots of an access sequence under a layout permutation."""
    layout = np.asarray(layout, dtype=np.int64)
    ids = np.asarray(block_ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= layout.size):
        raise IndexError("block id outside layout")
    return layout[ids]


def total_seek_distance(layout: np.ndarray, access_sequence: Sequence[int]) -> int:
    """Sum of |slot jumps| along an access sequence (the head-travel proxy).

    A run of consecutive slots costs 1 per step; random placement costs
    ~n/3 per step.  Multiply by the per-slot byte size for byte distances.
    """
    slots = layout_slots(layout, access_sequence)
    if slots.size < 2:
        return 0
    return int(np.abs(np.diff(slots)).sum())


def mean_seek_distance(layout: np.ndarray, access_sequence: Sequence[int]) -> float:
    """Average |slot jump| per transition (0 for an empty/singleton trace)."""
    slots = layout_slots(layout, access_sequence)
    if slots.size < 2:
        return 0.0
    return float(np.abs(np.diff(slots)).mean())
