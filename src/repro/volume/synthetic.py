"""Procedural scalar fields standing in for the paper's datasets.

The paper evaluates on one synthetic dataset (``3d_ball``), two combustion
simulation outputs (lifted flame, proprietary S3D data), and a multivariate
climate simulation (WRF).  We cannot ship those, so each generator below
reproduces the *property the method depends on*: a feature region with high
local value variation (high block entropy) embedded in a smooth or constant
ambient region (low block entropy) — Observation 2 of the paper.

All generators return C-contiguous ``float32`` arrays and are fully
vectorised (no per-voxel Python loops).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_shape_3d

__all__ = ["ball_field", "combustion_field", "climate_field", "multiscale_noise", "axis_grids"]


def axis_grids(shape: Tuple[int, int, int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Open (broadcastable) normalized coordinate grids in [-1, 1] per axis."""
    nx, ny, nz = check_shape_3d("shape", shape)

    def axis(n: int) -> np.ndarray:
        return (np.arange(n, dtype=np.float32) + 0.5) * (2.0 / n) - 1.0

    return (
        axis(nx)[:, None, None],
        axis(ny)[None, :, None],
        axis(nz)[None, None, :],
    )


def ball_field(shape: Tuple[int, int, int] = (64, 64, 64)) -> np.ndarray:
    """The ``3d_ball`` analogue: a ball with continuous intensity changes inside.

    Intensity falls off smoothly with radius and carries a radial ripple so
    interior blocks have graded, non-constant values; outside the ball the
    field is exactly zero (ambient).
    """
    x, y, z = axis_grids(shape)
    r = np.sqrt(x * x + y * y + z * z)
    ball = np.clip(1.0 - r, 0.0, None)
    ripple = 0.5 * (1.0 + np.sin(10.0 * np.pi * r).astype(np.float32))
    out = (ball * (0.6 + 0.4 * ripple)).astype(np.float32)
    return np.ascontiguousarray(out)


def multiscale_noise(
    shape: Tuple[int, int, int],
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Value noise: sum of trilinearly-upsampled random lattices.

    Each octave doubles the lattice resolution and scales amplitude by
    ``persistence``; the result is normalised to [0, 1].  This is the
    turbulence ingredient of the combustion/climate analogues.
    """
    shape = check_shape_3d("shape", shape)
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    rng = resolve_rng(seed)
    out = np.zeros(shape, dtype=np.float32)
    amplitude = 1.0
    for octave in range(octaves):
        cells = base_cells * (2**octave)
        lattice = rng.random((min(cells, shape[0]), min(cells, shape[1]), min(cells, shape[2]))).astype(
            np.float32
        )
        out += amplitude * _trilinear_resize(lattice, shape)
        amplitude *= persistence
    lo, hi = float(out.min()), float(out.max())
    if hi > lo:
        out = (out - lo) / (hi - lo)
    return np.ascontiguousarray(out)


def _trilinear_resize(src: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
    """Resize ``src`` to ``shape`` with separable linear interpolation.

    Implemented with three 1D gather/lerp passes (pure numpy) to avoid a
    scipy dependency in the hot generator path; cost is O(voxels) per axis.
    """
    out = src.astype(np.float32)
    for axis in range(3):
        n_src = out.shape[axis]
        n_dst = shape[axis]
        if n_src == n_dst:
            continue
        pos = (np.arange(n_dst, dtype=np.float32) + 0.5) * (n_src / n_dst) - 0.5
        pos = np.clip(pos, 0.0, n_src - 1.0)
        i0 = np.floor(pos).astype(np.int64)
        i1 = np.minimum(i0 + 1, n_src - 1)
        frac = (pos - i0).astype(np.float32)
        a = np.take(out, i0, axis=axis)
        b = np.take(out, i1, axis=axis)
        bshape = [1, 1, 1]
        bshape[axis] = n_dst
        out = a + (b - a) * frac.reshape(bshape)
    return out


def combustion_field(
    shape: Tuple[int, int, int] = (100, 86, 28),
    seed: SeedLike = 7,
    jet_radius: float = 0.35,
    lift_height: float = -0.4,
) -> np.ndarray:
    """A lifted turbulent jet-flame analogue (``lifted_mix_frac`` / ``lifted_rr``).

    A plume rises along +x starting at ``lift_height`` (the "lifted" base),
    with a Gaussian radial profile in (y, z) and strong multiscale turbulence
    inside the plume; the co-flow outside is quiescent (near-zero, tiny
    noise), giving the paper's entropy contrast between flame and ambient.
    """
    shape = check_shape_3d("shape", shape)
    rng = resolve_rng(seed)
    x, y, z = axis_grids(shape)
    radial = np.sqrt(y * y + z * z)
    # Plume widens slightly downstream of the lift-off point.
    downstream = np.clip((x - lift_height) / (1.0 - lift_height), 0.0, 1.0)
    width = jet_radius * (0.6 + 0.8 * downstream)
    envelope = np.exp(-((radial / np.maximum(width, 1e-3)) ** 2)) * downstream
    turbulence = multiscale_noise(shape, octaves=5, base_cells=4, seed=rng)
    ambient = 0.01 * rng.random(shape).astype(np.float32)
    out = (envelope * (0.3 + 0.7 * turbulence) + ambient).astype(np.float32)
    return np.ascontiguousarray(out)


def climate_field(
    shape: Tuple[int, int, int] = (74, 64, 26),
    n_variables: int = 8,
    seed: SeedLike = 11,
) -> "dict[str, np.ndarray]":
    """A multivariate climate analogue (typhoon + smoke over an ambient region).

    Returns ``n_variables`` same-shaped fields.  The first few are physical
    archetypes — a swirling vortex ("typhoon"), an advected plume ("smoke" /
    PM10), a smooth temperature gradient, and wind magnitude — and the rest
    are correlated mixtures of those plus noise, which makes the correlation
    matrix of Fig. 3 non-trivial.
    """
    shape = check_shape_3d("shape", shape)
    if n_variables < 1:
        raise ValueError(f"n_variables must be >= 1, got {n_variables}")
    rng = resolve_rng(seed)
    x, y, z = axis_grids(shape)

    # Typhoon: a vortex centred off-origin with an eye (local minimum).
    cx, cy = 0.3, -0.2
    rr = np.sqrt((x - cx) ** 2 + (y - cy) ** 2) + 0.0 * z
    typhoon = (np.exp(-((rr - 0.15) ** 2) / 0.02) * np.exp(-(z + 0.5) ** 2)).astype(np.float32)

    # Smoke plume advected diagonally, turbulent inside.
    plume_axis = (x + y) / np.sqrt(2.0)
    plume_perp = (x - y) / np.sqrt(2.0)
    smoke_env = np.exp(-(plume_perp**2) / 0.05) * np.clip(plume_axis + 0.8, 0.0, None)
    smoke = (smoke_env * multiscale_noise(shape, octaves=4, seed=rng)).astype(np.float32)

    temperature = (0.5 * (1.0 - z) + 0.1 * multiscale_noise(shape, octaves=2, seed=rng)).astype(np.float32)
    wind = (0.4 * typhoon + 0.2 * multiscale_noise(shape, octaves=3, seed=rng)).astype(np.float32)

    archetypes = [typhoon, smoke, temperature, wind]
    names = ["typhoon", "smoke_pm10", "temperature", "wind_magnitude"]
    fields: dict = {}
    for i in range(n_variables):
        if i < len(archetypes):
            fields[names[i]] = np.ascontiguousarray(archetypes[i] + 0.0)
            continue
        weights = rng.dirichlet(np.ones(len(archetypes))).astype(np.float32)
        mix = sum(w * a for w, a in zip(weights, archetypes))
        noise = 0.15 * rng.random(shape).astype(np.float32)
        fields[f"derived_{i:03d}"] = np.ascontiguousarray((mix + noise).astype(np.float32))
    return fields
