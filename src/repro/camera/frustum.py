"""Per-block visibility: the paper's Eq. 1, fully vectorised.

A block ``b`` is visible from a camera at ``v`` (looking at the centroid
``o``) when the angle φ between ``v→b_i`` and ``v→o`` is at most θ/2 for
some test point ``b_i`` of the block.  The paper tests the eight block
corners; we additionally include the block center by default and treat a
block that contains the camera as visible — both guard the zoomed-in case
where the frustum axis pierces a large block whose corners all fall
outside the cone (documented deviation; disable with
``include_center=False``).

Instead of ``arccos`` we compare ``cos φ ≥ cos(θ/2)`` on the normalised
dot products — same predicate, no transcendental per corner (see the HPC
guide: vectorise and compute less).
"""

from __future__ import annotations


import numpy as np

from repro.volume.blocks import BlockGrid

__all__ = ["visible_mask", "visible_blocks", "visible_masks_batch"]

_EPS = 1e-12


def _test_points(grid: BlockGrid, include_center: bool) -> np.ndarray:
    """(n_blocks, P, 3) test points: corners (+ center)."""
    corners = grid.corners()
    if not include_center:
        return corners
    centers = grid.centers()[:, None, :]
    return np.concatenate([corners, centers], axis=1)


def visible_mask(
    position: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
) -> np.ndarray:
    """Boolean mask over block ids, True where the block is visible (Eq. 1)."""
    masks = visible_masks_batch(
        np.asarray(position, dtype=np.float64)[None, :], grid, view_angle_deg, include_center
    )
    return masks[0]


def visible_blocks(
    position: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
) -> np.ndarray:
    """Sorted array of visible block ids from ``position``."""
    return np.flatnonzero(visible_mask(position, grid, view_angle_deg, include_center))


def visible_masks_batch(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    chunk_bytes: int = 256 * 1024 * 1024,
) -> np.ndarray:
    """Visibility masks for many camera positions at once.

    Returns a ``(n_positions, n_blocks)`` boolean array.  Work is chunked
    over positions so the broadcast temporaries stay under ``chunk_bytes``
    (cache-friendly per the HPC guides; the kernel itself is pure numpy
    broadcasting over ``positions × blocks × test-points``).
    """
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    if positions.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {positions.shape}")
    if not 0.0 < view_angle_deg < 180.0:
        raise ValueError(f"view_angle_deg must be in (0, 180), got {view_angle_deg}")

    points = _test_points(grid, include_center)  # (B, P, 3)
    n_blocks, n_pts, _ = points.shape
    n_pos = positions.shape[0]
    cos_half = np.cos(np.deg2rad(view_angle_deg) / 2.0)
    lo, hi = grid.bounds()

    # ~5 float64 temporaries of shape (chunk, B, P) live at once.
    per_pos_bytes = n_blocks * n_pts * 8 * 5
    chunk = max(1, int(chunk_bytes // max(per_pos_bytes, 1)))

    out = np.empty((n_pos, n_blocks), dtype=bool)
    for start in range(0, n_pos, chunk):
        pos = positions[start : start + chunk]  # (C, 3)
        # w = v->point vectors; the view axis is v->o = -pos.
        w = points[None, :, :, :] - pos[:, None, None, :]  # (C, B, P, 3)
        axis = -pos  # (C, 3)
        dots = np.einsum("cbpk,ck->cbp", w, axis)
        wn = np.sqrt(np.einsum("cbpk,cbpk->cbp", w, w))
        an = np.linalg.norm(axis, axis=1)[:, None, None]
        denom = np.maximum(wn * an, _EPS)
        # cos φ ≥ cos(θ/2) ⇔ φ ≤ θ/2 (both sides in [0, π]).
        vis = (dots >= cos_half * denom).any(axis=2)  # (C, B)
        # A block containing the camera is visible even if every test
        # point falls outside the cone.
        inside = np.all(
            (pos[:, None, :] >= lo[None, :, :]) & (pos[:, None, :] <= hi[None, :, :]),
            axis=2,
        )
        out[start : start + len(pos)] = vis | inside
    return out


def union_visible_mask(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
) -> np.ndarray:
    """Union of the visibility masks of several positions (vicinal aggregation)."""
    masks = visible_masks_batch(positions, grid, view_angle_deg, include_center)
    return masks.any(axis=0)
