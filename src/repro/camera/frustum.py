"""Per-block visibility: the paper's Eq. 1, fully vectorised.

A block ``b`` is visible from a camera at ``v`` (looking at the centroid
``o``) when the angle φ between ``v→b_i`` and ``v→o`` is at most θ/2 for
some test point ``b_i`` of the block.  The paper tests the eight block
corners; we additionally include the block center by default and treat a
block that contains the camera as visible — both guard the zoomed-in case
where the frustum axis pierces a large block whose corners all fall
outside the cone (documented deviation; disable with
``include_center=False``).

Instead of ``arccos`` we compare ``cos φ ≥ cos(θ/2)`` on the normalised
dot products — same predicate, no transcendental per corner (see the HPC
guide: vectorise and compute less).

Two kernels evaluate the same predicate:

- ``kernel="dense"`` broadcasts ``positions × blocks × test-points`` and
  returns dense boolean masks — the original path, exact by definition.
- ``kernel="culled"`` prescreens each block's bounding sphere against the
  view cone (one dot product + one radius comparison per block instead of
  nine corner tests) behind a two-level coarse-grid cull (superblock
  bounding spheres first, descend only into cone-intersecting
  superblocks), then runs the *exact* Eq. 1 corner test on the survivors
  only.  The prescreen is conservative — a sphere fully outside the
  widened cone cannot contain a visible test point — so the culled kernel
  is bit-for-bit identical to the dense one (hypothesis-pinned in
  ``tests/camera/test_frustum_culled.py``) while never materialising the
  ``(N, n_blocks)`` mask.  ``kernel="culled-flat"`` skips the superblock
  level (the micro-benchmark's middle rung); ``kernel="auto"`` picks
  culled at or above :data:`AUTO_CULL_MIN_BLOCKS` blocks.
"""

from __future__ import annotations

import weakref
from typing import List

import numpy as np

from repro.volume.blocks import BlockGrid

__all__ = [
    "visible_mask",
    "visible_blocks",
    "visible_masks_batch",
    "visible_ids_batch",
    "union_visible_mask",
    "broadcast_position_chunk",
    "resolve_kernel",
    "KERNELS",
    "AUTO_CULL_MIN_BLOCKS",
]

_EPS = 1e-12

#: Conservative slack on the prescreen cosine comparison: float rounding in
#: the exact corner test is ~1e-15 on O(1) cosines, so a 1e-9 margin keeps
#: every borderline-visible block a survivor at negligible extra exact work.
_CULL_SLACK = 1e-9

#: Kernel names accepted by the ``kernel=`` arguments in this module.
KERNELS = ("dense", "culled", "culled-flat", "auto")

#: ``kernel="auto"`` switches from dense to culled at this block count —
#: below it the dense broadcast fits comfortably in cache and the cull
#: bookkeeping is pure overhead (see benchmarks/test_visibility_kernels.py
#: for the measured crossover).
AUTO_CULL_MIN_BLOCKS = 4096

#: Approximate float64 temporaries alive per (position, block, point) cell
#: of the dense broadcast — shared with the table builder's chunking.
_DENSE_TEMPS = 5


def resolve_kernel(kernel: str, n_blocks: int) -> str:
    """Validate ``kernel`` and resolve ``"auto"`` against the block count."""
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if kernel == "auto":
        return "culled" if n_blocks >= AUTO_CULL_MIN_BLOCKS else "dense"
    return kernel


def broadcast_position_chunk(n_blocks: int, n_points: int, chunk_bytes: int) -> int:
    """Positions per batch so the dense broadcast stays under ``chunk_bytes``.

    This is the *actual* temporary footprint of the dense kernel
    (``chunk × n_blocks × n_points`` float64 arrays, ~5 alive at once) —
    the table builder derives its sample chunking from the same formula
    instead of guessing.
    """
    per_pos = n_blocks * n_points * 8 * _DENSE_TEMPS
    return max(1, int(chunk_bytes // max(per_pos, 1)))


def _test_points(grid: BlockGrid, include_center: bool) -> np.ndarray:
    """(n_blocks, P, 3) test points: corners (+ center)."""
    corners = grid.corners()
    if not include_center:
        return corners
    centers = grid.centers()[:, None, :]
    return np.concatenate([corners, centers], axis=1)


_CORNER_OFFSETS = np.array(
    [[i, j, k] for i in (0, 1) for j in (0, 1) for k in (0, 1)], dtype=np.float64
)  # (8, 3) unit-cube corners — same layout as BlockGrid.corners()


def _test_points_for(
    grid: BlockGrid, ids: np.ndarray, include_center: bool
) -> np.ndarray:
    """Test points of the blocks in ``ids`` only, shape ``(len(ids), P, 3)``.

    Computed from the per-block AABBs with the exact per-element arithmetic
    of :meth:`BlockGrid.corners`/:meth:`BlockGrid.centers`, so the culled
    kernel's survivors see bit-identical coordinates without ever
    materialising all ``n_blocks × P`` points.
    """
    lo, hi = grid.bounds()
    lo_c, hi_c = lo[ids], hi[ids]
    corners = lo_c[:, None, :] + _CORNER_OFFSETS[None, :, :] * (hi_c - lo_c)[:, None, :]
    if not include_center:
        return corners
    centers = (0.5 * (lo_c + hi_c))[:, None, :]
    return np.concatenate([corners, centers], axis=1)


def visible_mask(
    position: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    kernel: str = "dense",
) -> np.ndarray:
    """Boolean mask over block ids, True where the block is visible (Eq. 1)."""
    masks = visible_masks_batch(
        np.asarray(position, dtype=np.float64)[None, :],
        grid,
        view_angle_deg,
        include_center,
        kernel=kernel,
    )
    return masks[0]


def visible_blocks(
    position: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    kernel: str = "dense",
) -> np.ndarray:
    """Sorted array of visible block ids from ``position``."""
    ids = visible_ids_batch(
        np.asarray(position, dtype=np.float64)[None, :],
        grid,
        view_angle_deg,
        include_center,
        kernel=kernel,
    )
    return ids[0]


def visible_masks_batch(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    chunk_bytes: int = 256 * 1024 * 1024,
    kernel: str = "dense",
) -> np.ndarray:
    """Visibility masks for many camera positions at once.

    Returns a ``(n_positions, n_blocks)`` boolean array.  With the default
    dense kernel, work is chunked over positions so the broadcast
    temporaries stay under ``chunk_bytes`` (cache-friendly per the HPC
    guides; the kernel itself is pure numpy broadcasting over
    ``positions × blocks × test-points``).  A culled kernel computes the
    sparse id lists and scatters them — the result is still the dense
    ``(N, n_blocks)`` array, so at large block counts prefer
    :func:`visible_ids_batch`, which never materialises it.
    """
    positions = _check_positions(positions, view_angle_deg)
    resolved = resolve_kernel(kernel, grid.n_blocks)
    if resolved != "dense":
        ids = _culled_ids_batch(
            positions, grid, view_angle_deg, include_center, chunk_bytes,
            two_level=(resolved == "culled"),
        )
        out = np.zeros((positions.shape[0], grid.n_blocks), dtype=bool)
        for i, row in enumerate(ids):
            out[i, row] = True
        return out

    points = _test_points(grid, include_center)  # (B, P, 3)
    n_blocks, n_pts, _ = points.shape
    n_pos = positions.shape[0]
    cos_half = np.cos(np.deg2rad(view_angle_deg) / 2.0)
    lo, hi = grid.bounds()

    # ~5 float64 temporaries of shape (chunk, B, P) live at once.
    chunk = broadcast_position_chunk(n_blocks, n_pts, chunk_bytes)

    out = np.empty((n_pos, n_blocks), dtype=bool)
    for start in range(0, n_pos, chunk):
        pos = positions[start : start + chunk]  # (C, 3)
        # w = v->point vectors; the view axis is v->o = -pos.
        w = points[None, :, :, :] - pos[:, None, None, :]  # (C, B, P, 3)
        axis = -pos  # (C, 3)
        dots = np.einsum("cbpk,ck->cbp", w, axis)
        wn = np.sqrt(np.einsum("cbpk,cbpk->cbp", w, w))
        an = np.linalg.norm(axis, axis=1)[:, None, None]
        denom = np.maximum(wn * an, _EPS)
        # cos φ ≥ cos(θ/2) ⇔ φ ≤ θ/2 (both sides in [0, π]).
        vis = (dots >= cos_half * denom).any(axis=2)  # (C, B)
        # A block containing the camera is visible even if every test
        # point falls outside the cone.
        inside = np.all(
            (pos[:, None, :] >= lo[None, :, :]) & (pos[:, None, :] <= hi[None, :, :]),
            axis=2,
        )
        out[start : start + len(pos)] = vis | inside
    return out


def visible_ids_batch(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    kernel: str = "auto",
    chunk_bytes: int = 256 * 1024 * 1024,
) -> List[np.ndarray]:
    """Sparse visibility: one sorted int64 id array per camera position.

    The culled kernels return exactly ``np.flatnonzero`` of the dense mask
    without ever building it; the dense kernel builds the mask in chunks
    and converts.  Output is identical across kernels (tested).
    """
    positions = _check_positions(positions, view_angle_deg)
    resolved = resolve_kernel(kernel, grid.n_blocks)
    if resolved == "dense":
        masks = visible_masks_batch(
            positions, grid, view_angle_deg, include_center, chunk_bytes
        )
        return [np.flatnonzero(m).astype(np.int64) for m in masks]
    return _culled_ids_batch(
        positions, grid, view_angle_deg, include_center, chunk_bytes,
        two_level=(resolved == "culled"),
    )


def union_visible_mask(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool = True,
    kernel: str = "dense",
) -> np.ndarray:
    """Union of the visibility masks of several positions (vicinal aggregation)."""
    masks = visible_masks_batch(
        positions, grid, view_angle_deg, include_center, kernel=kernel
    )
    return masks.any(axis=0)


def _check_positions(positions: np.ndarray, view_angle_deg: float) -> np.ndarray:
    positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
    if positions.shape[1] != 3:
        raise ValueError(f"positions must be (N, 3), got {positions.shape}")
    if not 0.0 < view_angle_deg < 180.0:
        raise ValueError(f"view_angle_deg must be in (0, 180), got {view_angle_deg}")
    return positions


# ---------------------------------------------------------------------------
# hierarchical cull


class _CullIndex:
    """Precomputed geometry for the culled kernels of one :class:`BlockGrid`.

    Per-block bounding spheres (AABB center + half-diagonal radius: every
    Eq. 1 test point — the eight corners on the sphere, the center inside —
    lies within) and a coarse super-grid grouping ``factor³`` neighbouring
    blocks per superblock, each with the bounding sphere of its members'
    union AABB.  Members are stored CSR-style in ascending block-id order.
    """

    __slots__ = (
        "centers", "radii", "super_centers", "super_radii",
        "member_offsets", "member_ids", "factor",
    )

    def __init__(self, grid: BlockGrid) -> None:
        lo, hi = grid.bounds()
        self.centers = 0.5 * (lo + hi)
        self.radii = 0.5 * np.sqrt(np.sum((hi - lo) ** 2, axis=1))

        gx, gy, gz = grid.blocks_per_axis
        n = grid.n_blocks
        # Superblock edge (in blocks): ~B^(1/6) per axis puts the two
        # levels near the cost-balancing point S ≈ members-per-super.
        self.factor = f = max(1, int(round(n ** (1.0 / 6.0))))
        sx, sy, sz = (-(-gx // f), -(-gy // f), -(-gz // f))

        ids = np.arange(n, dtype=np.int64)
        bi, rem = np.divmod(ids, gy * gz)
        bj, bk = np.divmod(rem, gz)
        super_of_block = ((bi // f) * sy + (bj // f)) * sz + (bk // f)

        order = np.argsort(super_of_block, kind="stable")  # ascending id per super
        self.member_ids = ids[order]
        counts = np.bincount(super_of_block, minlength=sx * sy * sz)
        self.member_offsets = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        occupied = counts > 0

        slo = np.full((sx * sy * sz, 3), np.inf)
        shi = np.full((sx * sy * sz, 3), -np.inf)
        starts = self.member_offsets[:-1][occupied]
        slo[occupied] = np.minimum.reduceat(lo[self.member_ids], starts)
        shi[occupied] = np.maximum.reduceat(hi[self.member_ids], starts)
        self.super_centers = np.where(occupied[:, None], 0.5 * (slo + shi), 0.0)
        self.super_radii = np.where(
            occupied, 0.5 * np.sqrt(np.sum((shi - slo) ** 2, axis=1)), -1.0
        )  # radius -1: empty superblock, never survives the prescreen

    def members_of(self, super_ids: np.ndarray) -> np.ndarray:
        """Ascending block ids of all members of the given superblocks."""
        if super_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = [
            self.member_ids[self.member_offsets[s] : self.member_offsets[s + 1]]
            for s in super_ids
        ]
        return np.sort(np.concatenate(parts))


_CULL_INDEXES: "weakref.WeakKeyDictionary[BlockGrid, _CullIndex]" = (
    weakref.WeakKeyDictionary()
)


def _cull_index(grid: BlockGrid) -> _CullIndex:
    index = _CULL_INDEXES.get(grid)
    if index is None:
        index = _CullIndex(grid)
        _CULL_INDEXES[grid] = index  # benign race: both threads build the same
    return index


def _cone_prescreen(
    pos: np.ndarray,
    axis: np.ndarray,
    an: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
    cos_half: float,
    sin_half: float,
) -> np.ndarray:
    """Conservative sphere-vs-cone test: ``(C, M)`` True where the block's
    bounding sphere may intersect the view cone.

    A sphere at angular distance β from the view axis with angular radius
    α = asin(r/d) is fully outside the cone when β > θ/2 + α; comparing
    cosines via cos(θ/2 + α) = cos(θ/2)·cosα − sin(θ/2)·sinα avoids any
    transcendental.  A sphere containing the camera (d ≤ r) can never be
    culled — that covers the camera-inside-block visibility rule.
    """
    delta = centers[None, :, :] - pos[:, None, :]  # (C, M, 3)
    d = np.sqrt(np.einsum("cmk,cmk->cm", delta, delta))
    contains = d <= radii[None, :]
    sin_a = np.minimum(1.0, radii[None, :] / np.maximum(d, _EPS))
    cos_a = np.sqrt(np.maximum(0.0, 1.0 - sin_a * sin_a))
    cone_cos = cos_half * cos_a - sin_half * sin_a
    cos_beta = np.einsum("cmk,ck->cm", delta, axis) / np.maximum(
        d * an[:, None], _EPS
    )
    return contains | (cos_beta >= cone_cos - _CULL_SLACK)


def _culled_ids_batch(
    positions: np.ndarray,
    grid: BlockGrid,
    view_angle_deg: float,
    include_center: bool,
    chunk_bytes: int,
    two_level: bool,
) -> List[np.ndarray]:
    """The culled Eq. 1 evaluation: sorted visible ids per position."""
    index = _cull_index(grid)
    half = np.deg2rad(view_angle_deg) / 2.0
    cos_half, sin_half = float(np.cos(half)), float(np.sin(half))
    lo, hi = grid.bounds()
    n_pts = 9 if include_center else 8
    n_pos = positions.shape[0]
    axis_all = -positions
    an_all = np.linalg.norm(axis_all, axis=1)  # same fold as the dense kernel

    results: List[np.ndarray] = [None] * n_pos  # type: ignore[list-item]
    # Chunk positions so the (C, M) prescreen temporaries stay bounded;
    # M is at most n_blocks (flat cull) so reuse the dense formula with a
    # single "test point".
    chunk = max(
        broadcast_position_chunk(grid.n_blocks, 1, chunk_bytes), 64
    )
    empty = np.empty(0, dtype=np.int64)

    for start in range(0, n_pos, chunk):
        pos = positions[start : start + chunk]
        axis, an = axis_all[start : start + chunk], an_all[start : start + chunk]
        n_chunk = pos.shape[0]

        if two_level:
            sup = _cone_prescreen(
                pos, axis, an, index.super_centers, index.super_radii,
                cos_half, sin_half,
            )
            cand = index.members_of(np.flatnonzero(sup.any(axis=0)))
        else:
            cand = np.arange(grid.n_blocks, dtype=np.int64)
        if cand.size == 0:
            for c in range(n_chunk):
                results[start + c] = empty
            continue

        blk = _cone_prescreen(
            pos, axis, an, index.centers[cand], index.radii[cand],
            cos_half, sin_half,
        )  # (C, Mc)
        rows, cols = np.nonzero(blk)
        if rows.size == 0:
            for c in range(n_chunk):
                results[start + c] = empty
            continue
        surv_ids = cand[cols]

        # Exact Eq. 1 on the surviving (position, block) pairs only, with
        # the dense kernel's per-element arithmetic (bit-identical), in
        # slabs bounding the (K, P, 3) temporaries.
        keep = np.empty(rows.size, dtype=bool)
        pair_chunk = max(1, int(chunk_bytes // (n_pts * 3 * 8 * _DENSE_TEMPS)))
        for p0 in range(0, rows.size, pair_chunk):
            sl = slice(p0, p0 + pair_chunk)
            r, ids = rows[sl], surv_ids[sl]
            pts = _test_points_for(grid, ids, include_center)  # (K, P, 3)
            w = pts - pos[r, None, :]
            dots = np.einsum("kpm,km->kp", w, axis[r])
            wn = np.sqrt(np.einsum("kpm,kpm->kp", w, w))
            denom = np.maximum(wn * an[r, None], _EPS)
            vis = (dots >= cos_half * denom).any(axis=1)
            inside = np.all((pos[r] >= lo[ids]) & (pos[r] <= hi[ids]), axis=1)
            keep[sl] = vis | inside

        rows_k, ids_k = rows[keep], surv_ids[keep]
        # cols ascend within each row and cand is sorted, so ids_k is
        # already ascending per position.
        bounds = np.searchsorted(rows_k, np.arange(n_chunk + 1))
        for c in range(n_chunk):
            results[start + c] = ids_k[bounds[c] : bounds[c + 1]]
    return results
