"""Recorded camera-session traces (JSONL).

A trace file captures one interactive session position-by-position so it
can be replayed as the ``recorded`` workload — against other datasets,
policies, or cluster layouts.  The format is line-oriented JSON for
appendability and diffability:

- line 1, the header: ``{"kind": "camera-trace", "version": 1,
  "name": ..., "view_angle_deg": ...}``;
- one line per position: ``{"step": i, "position": [x, y, z]}``.

``repro replay --record out.jsonl`` writes one; a matrix spec (or
``repro replay --path-type recorded --trace-file out.jsonl``) replays it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

import numpy as np

from repro.camera.model import DEFAULT_VIEW_ANGLE_DEG
from repro.camera.path import CameraPath

__all__ = ["CAMERA_TRACE_VERSION", "write_camera_trace", "read_camera_trace"]

CAMERA_TRACE_VERSION = 1


def write_camera_trace(path: CameraPath, file: Union[str, Path, IO[str]]) -> None:
    """Serialise ``path`` to a camera-trace JSONL file (or open handle)."""
    header = {
        "kind": "camera-trace",
        "version": CAMERA_TRACE_VERSION,
        "name": path.name,
        "view_angle_deg": float(path.view_angle_deg),
        "n_positions": len(path),
    }
    if hasattr(file, "write"):
        _write_lines(path, header, file)  # type: ignore[arg-type]
    else:
        with open(file, "w", encoding="utf-8") as handle:
            _write_lines(path, header, handle)


def _write_lines(path: CameraPath, header: dict, handle: IO[str]) -> None:
    handle.write(json.dumps(header, sort_keys=True) + "\n")
    for i, position in enumerate(path.positions):
        row = {"step": i, "position": [float(v) for v in position]}
        handle.write(json.dumps(row, sort_keys=True) + "\n")


def read_camera_trace(file: Union[str, Path, IO[str]]) -> CameraPath:
    """Load a camera-trace JSONL file back into a :class:`CameraPath`."""
    if hasattr(file, "read"):
        lines = file.read().splitlines()  # type: ignore[union-attr]
        where = "<stream>"
    else:
        lines = Path(file).read_text(encoding="utf-8").splitlines()
        where = str(file)
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise ValueError(f"{where}: empty camera trace")
    header = json.loads(lines[0])
    if header.get("kind") != "camera-trace":
        raise ValueError(
            f"{where}: not a camera trace (kind={header.get('kind')!r})"
        )
    version = header.get("version")
    if version != CAMERA_TRACE_VERSION:
        raise ValueError(
            f"{where}: camera-trace version {version!r} not supported "
            f"(expected {CAMERA_TRACE_VERSION})"
        )
    positions = []
    for i, line in enumerate(lines[1:]):
        row = json.loads(line)
        position = row.get("position")
        if not isinstance(position, list) or len(position) != 3:
            raise ValueError(f"{where}: line {i + 2} has no [x, y, z] position")
        positions.append([float(v) for v in position])
    if not positions:
        raise ValueError(f"{where}: camera trace has a header but no positions")
    return CameraPath(
        np.asarray(positions, dtype=np.float64),
        view_angle_deg=float(header.get("view_angle_deg", DEFAULT_VIEW_ANGLE_DEG)),
        name=str(header.get("name", "recorded")),
    )
