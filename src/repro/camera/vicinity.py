"""The vicinal sphere φ and its optimal radius (Eq. 3–6, §IV-B / §V-B2).

Around each sampled camera position ``v`` the paper places a small sphere
φ of radius ``r``; the frustums of points ``v'`` inside φ are aggregated
into one bigger frustum ζ.  Choosing ``r`` so that ζ's volume (clipped
between the volume's near and far faces) equals the fast-memory share of
the slow memory gives the closed form

    r = sqrt(4ρ/π − tan²(θ/2)/3) − d·tan(θ/2)          (Eq. 6)

with ρ = fast cache size / slow cache size, θ the full view angle and
``d`` the camera distance (volume edge normalized to 2).

Derivation sanity (tested in tests/camera/test_vicinity.py): the
aggregated frustum between the planes x = d−1 and x = d+1 has radii
r' = tan(θ/2)·h' and r'' = tan(θ/2)·h with h' = d−1+r/tan(θ/2),
h = h'+2, and volume π·tan²(θ/2)/3·(h³−h'³) = 2π·tan²(θ/2)·(m²+1/3)
where m = d + r/tan(θ/2); setting that volume equal to 8ρ (the cube's
volume is 8) yields Eq. 6.
"""

from __future__ import annotations

import numpy as np

from repro.utils.geometry import points_in_ball
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["optimal_radius", "aggregated_frustum_volume", "vicinal_points", "MIN_RADIUS"]

# Even with an over-full cache the vicinal sphere must contain the next
# path position (§IV-B), so r never collapses entirely.
MIN_RADIUS = 1e-3


def optimal_radius(
    view_angle_deg: float,
    distance: float,
    cache_ratio: float,
    min_radius: float = MIN_RADIUS,
) -> float:
    """Eq. 6: the vicinal radius that fills fast memory exactly.

    Parameters
    ----------
    view_angle_deg:
        Full frustum opening angle θ in degrees.
    distance:
        Camera distance ``d`` in normalized coordinates (volume edge = 2).
    cache_ratio:
        ρ = fast cache size / slow cache size, in (0, 1].
    min_radius:
        Floor applied when the closed form goes non-positive (tiny fast
        memory or distant camera).
    """
    if not 0.0 < view_angle_deg < 180.0:
        raise ValueError(f"view_angle_deg must be in (0, 180), got {view_angle_deg}")
    check_positive("distance", distance)
    if not 0.0 < cache_ratio <= 1.0:
        raise ValueError(f"cache_ratio must be in (0, 1], got {cache_ratio}")
    t = np.tan(np.deg2rad(view_angle_deg) / 2.0)
    inner = 4.0 * cache_ratio / np.pi - (t * t) / 3.0
    if inner <= 0.0:
        return float(min_radius)
    r = float(np.sqrt(inner) - distance * t)
    return max(r, float(min_radius))


def aggregated_frustum_volume(view_angle_deg: float, distance: float, radius: float) -> float:
    """Volume of the aggregated frustum ζ between the near/far volume faces.

    This is the left-hand side of Eq. 3 *before* normalising by 8 — the
    property test checks ``aggregated_frustum_volume(θ, d, optimal_radius)
    ≈ 8ρ``.  Requires ``d − 1 + r/tan(θ/2) > 0`` (the frustum apex lies
    behind the near face), which holds for cameras outside the volume.
    """
    if not 0.0 < view_angle_deg < 180.0:
        raise ValueError(f"view_angle_deg must be in (0, 180), got {view_angle_deg}")
    check_positive("distance", distance)
    check_non_negative("radius", radius)
    t = np.tan(np.deg2rad(view_angle_deg) / 2.0)
    h_near = distance - 1.0 + radius / t
    h_far = h_near + 2.0
    if h_near < 0.0:
        raise ValueError(
            f"apex inside the volume: d={distance}, r={radius}, theta={view_angle_deg}"
        )
    return float(np.pi * t * t / 3.0 * (h_far**3 - h_near**3))


def vicinal_points(
    center: np.ndarray,
    radius: float,
    n_points: int = 8,
    seed: SeedLike = 0,
    include_center: bool = True,
) -> np.ndarray:
    """Sample the points ``v'`` inside the vicinal sphere φ (Fig. 6).

    Returns ``(n, 3)`` positions: the center itself (when requested) plus
    ``n_points`` uniform samples in the ball.  The union of their visible
    sets forms ``S_v``.
    """
    check_non_negative("radius", radius)
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    rng = resolve_rng(seed)
    pts = points_in_ball(np.asarray(center, dtype=np.float64), radius, n_points, rng)
    if include_center:
        pts = np.concatenate([np.asarray(center, dtype=np.float64)[None, :], pts], axis=0)
    return pts
