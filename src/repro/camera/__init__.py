"""Camera geometry: views, visibility, paths, and Ω position sampling.

Implements §IV-B of the paper: the per-block visibility test of Eq. 1,
spherical/random interactive camera paths, sampling of camera positions in
the exploration domain Ω, vicinal-sphere aggregation, and the closed-form
optimal vicinal radius of Eq. 3–6.
"""

from repro.camera.model import Camera
from repro.camera.frustum import (
    union_visible_mask,
    visible_blocks,
    visible_ids_batch,
    visible_mask,
    visible_masks_batch,
)
from repro.camera.path import (
    CameraPath,
    spherical_path,
    random_path,
    zoom_path,
    waypoint_path,
    composite_path,
)
from repro.camera.sampling import SamplingConfig, sample_positions
from repro.camera.vicinity import (
    optimal_radius,
    aggregated_frustum_volume,
    vicinal_points,
)

__all__ = [
    "Camera",
    "visible_blocks",
    "visible_ids_batch",
    "visible_mask",
    "visible_masks_batch",
    "union_visible_mask",
    "CameraPath",
    "spherical_path",
    "random_path",
    "zoom_path",
    "waypoint_path",
    "composite_path",
    "SamplingConfig",
    "sample_positions",
    "optimal_radius",
    "aggregated_frustum_volume",
    "vicinal_points",
]
