"""Sampling camera positions in the exploration domain Ω (Step 1, §IV-B).

Ω is a spherical shell around the volume: directions × distances.  Each
sampled position ``v`` later gets a vicinal sphere φ whose aggregated
frustum defines the predicted visible set ``S_v`` recorded in
``T_visible``.  The paper's sample counts (25,920 / 72,000 / 108,000)
correspond to direction grids times a handful of distances; the default
here is laptop-scale and the counts are a sweep axis in the Fig. 7 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.geometry import fibonacci_sphere, latlong_sphere
from repro.utils.validation import check_positive

__all__ = ["SamplingConfig", "sample_positions"]


@dataclass(frozen=True)
class SamplingConfig:
    """How to sample camera positions in Ω.

    Parameters
    ----------
    n_directions:
        Number of view directions on the unit sphere.
    n_distances:
        Number of radial shells between ``distance_range``.
    distance_range:
        ``(d_min, d_max)`` of camera distances covered by the table.
    scheme:
        ``"fibonacci"`` (near-uniform, any n) or ``"latlong"``
        (the paper's direction/distance grid; n_directions is rounded to a
        2:1 longitude:latitude grid).
    """

    n_directions: int = 512
    n_distances: int = 4
    distance_range: Tuple[float, float] = (2.2, 2.8)
    scheme: str = "fibonacci"

    def __post_init__(self) -> None:
        check_positive("n_directions", self.n_directions)
        check_positive("n_distances", self.n_distances)
        lo, hi = self.distance_range
        if not 0 < lo <= hi:
            raise ValueError(f"distance_range must satisfy 0 < lo <= hi, got {self.distance_range}")
        if self.scheme not in ("fibonacci", "latlong"):
            raise ValueError(f"unknown scheme {self.scheme!r}")

    @property
    def n_samples(self) -> int:
        return self.n_directions_actual * self.n_distances

    @property
    def n_directions_actual(self) -> int:
        if self.scheme == "latlong":
            n_lat, n_long = self._latlong_dims()
            return n_lat * n_long
        return self.n_directions

    def _latlong_dims(self) -> Tuple[int, int]:
        # 2:1 aspect (longitude wraps 2π, latitude spans π).
        n_lat = max(1, int(round(np.sqrt(self.n_directions / 2.0))))
        n_long = max(1, int(round(self.n_directions / n_lat)))
        return n_lat, n_long

    def distances(self) -> np.ndarray:
        lo, hi = self.distance_range
        if self.n_distances == 1:
            return np.array([(lo + hi) / 2.0])
        return np.linspace(lo, hi, self.n_distances)


def sample_positions(config: SamplingConfig) -> np.ndarray:
    """All sampled camera positions, shape ``(n_samples, 3)``.

    Layout: distance-major (all directions at d_0, then d_1, ...), so a
    position's direction and distance can be recovered from its index.
    """
    if config.scheme == "latlong":
        dirs = latlong_sphere(*config._latlong_dims())
    else:
        dirs = fibonacci_sphere(config.n_directions)
    dists = config.distances()
    # (n_dist, n_dir, 3) -> flatten distance-major.
    positions = dirs[None, :, :] * dists[:, None, None]
    return positions.reshape(-1, 3)
