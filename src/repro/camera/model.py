"""The camera model.

Cameras in the paper always look at the volume centroid ``o`` (the origin
in normalized coordinates): a camera position ``v`` determines the view
direction ``l = vo`` and distance ``d = ||vo||`` that key the lookup table
``T_visible``.  The view frustum is the cone of half-angle ``theta/2``
around the view direction (Eq. 1 / Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.geometry import normalize

__all__ = ["Camera", "DEFAULT_VIEW_ANGLE_DEG"]

DEFAULT_VIEW_ANGLE_DEG = 45.0


@dataclass(frozen=True)
class Camera:
    """An immutable camera looking at the origin.

    Parameters
    ----------
    position:
        Location in normalized volume coordinates (the volume is the cube
        [-1, 1]³; positions typically lie outside it, inside Ω).
    view_angle_deg:
        Full opening angle θ of the view frustum cone, in degrees.
    """

    position: Tuple[float, float, float]
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG

    def __post_init__(self) -> None:
        if not 0.0 < self.view_angle_deg < 180.0:
            raise ValueError(
                f"view_angle_deg must be in (0, 180), got {self.view_angle_deg}"
            )
        pos = tuple(float(c) for c in self.position)
        if len(pos) != 3:
            raise ValueError(f"position must be 3D, got {self.position!r}")
        object.__setattr__(self, "position", pos)

    @property
    def position_array(self) -> np.ndarray:
        return np.asarray(self.position, dtype=np.float64)

    @property
    def distance(self) -> float:
        """d = ||vo||: distance from the camera to the volume centroid."""
        return float(np.linalg.norm(self.position_array))

    @property
    def direction(self) -> np.ndarray:
        """Unit view direction l = vo (from the camera toward the centroid)."""
        p = self.position_array
        d = np.linalg.norm(p)
        if d == 0.0:
            raise ValueError("camera at the centroid has no view direction")
        return -p / d

    @property
    def half_angle_rad(self) -> float:
        """θ/2 in radians — the visibility threshold of Eq. 1."""
        return float(np.deg2rad(self.view_angle_deg) / 2.0)

    def with_position(self, position: np.ndarray) -> "Camera":
        """A copy at a new position with the same view angle."""
        return Camera(tuple(float(c) for c in np.asarray(position)), self.view_angle_deg)

    def key(self) -> Tuple[np.ndarray, float]:
        """The ``<l, d>`` tuple keying ``T_visible`` (unit direction, distance)."""
        return self.direction, self.distance
