"""Interactive camera paths (§V-A).

The paper evaluates two path families over 400 camera positions:

- a *spherical* path stepping a fixed number of degrees per position at a
  constant distance, and
- a *random* path whose per-step view-direction change is drawn from a
  degree range, optionally with varying distance ("randomly different d
  and l values", §V-C).

A :class:`CameraPath` is an immutable array of positions plus the view
angle; iterating yields :class:`~repro.camera.model.Camera` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.camera.model import DEFAULT_VIEW_ANGLE_DEG, Camera
from repro.utils.geometry import (
    great_circle_step,
    normalize,
    perpendicular_unit_vector,
    rotation_matrix_axis_angle,
)
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_positive

__all__ = [
    "CameraPath",
    "spherical_path",
    "random_path",
    "zoom_path",
    "waypoint_path",
    "flythrough_path",
    "multi_focus_path",
    "temporal_sweep_path",
    "composite_path",
]


@dataclass(frozen=True)
class CameraPath:
    """A sequence of camera positions sharing one view angle."""

    positions: np.ndarray  # (N, 3) float64
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG
    name: str = "path"

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3 or pos.shape[0] < 1:
            raise ValueError(f"positions must be (N>=1, 3), got {pos.shape}")
        object.__setattr__(self, "positions", pos)
        pos.setflags(write=False)

    def __len__(self) -> int:
        return self.positions.shape[0]

    def __iter__(self) -> Iterator[Camera]:
        for p in self.positions:
            yield Camera(tuple(p), self.view_angle_deg)

    def camera(self, i: int) -> Camera:
        return Camera(tuple(self.positions[i]), self.view_angle_deg)

    def distances(self) -> np.ndarray:
        """d_i = ||v_i|| for every position."""
        return np.linalg.norm(self.positions, axis=1)

    def direction_changes_deg(self) -> np.ndarray:
        """Angle (degrees) between successive view directions — N−1 values."""
        dirs = normalize(-self.positions)
        dots = np.clip(np.sum(dirs[:-1] * dirs[1:], axis=1), -1.0, 1.0)
        return np.rad2deg(np.arccos(dots))

    def step_lengths(self) -> np.ndarray:
        """Euclidean distance between successive positions — N−1 values."""
        return np.linalg.norm(np.diff(self.positions, axis=0), axis=1)


def spherical_path(
    n_positions: int = 400,
    degrees_per_step: float = 10.0,
    distance: float = 3.0,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
) -> CameraPath:
    """A great-circle path at constant ``distance`` with fixed angular steps.

    The circle's orientation is seeded so sweeps over ``degrees_per_step``
    share a trajectory family while remaining deterministic.
    """
    check_positive("n_positions", n_positions)
    check_positive("degrees_per_step", degrees_per_step)
    check_positive("distance", distance)
    rng = resolve_rng(seed)
    start = normalize(rng.standard_normal(3)) * distance
    axis = perpendicular_unit_vector(start, rng)
    step = np.deg2rad(degrees_per_step)
    positions = np.empty((n_positions, 3))
    p = start
    for i in range(n_positions):
        positions[i] = p
        p = great_circle_step(p, axis, step)
    return CameraPath(positions, view_angle_deg, name=f"spherical_{degrees_per_step:g}deg")


def random_path(
    n_positions: int = 400,
    degree_change: Tuple[float, float] = (10.0, 15.0),
    distance: "float | Tuple[float, float]" = 3.0,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
) -> CameraPath:
    """A random-walk path: each step turns by a random angle in ``degree_change``.

    The turn axis is uniformly random among directions perpendicular to the
    current position, so the walk wanders over the whole sphere.  When
    ``distance`` is a ``(lo, hi)`` pair, each position's distance is drawn
    uniformly from it (the paper's "randomly different d and l values").
    """
    check_positive("n_positions", n_positions)
    lo, hi = degree_change
    if not 0 <= lo <= hi:
        raise ValueError(f"degree_change must satisfy 0 <= lo <= hi, got {degree_change}")
    rng = resolve_rng(seed)

    if isinstance(distance, tuple):
        d_lo, d_hi = distance
        if not 0 < d_lo <= d_hi:
            raise ValueError(f"distance range must satisfy 0 < lo <= hi, got {distance}")
        dist = lambda: rng.uniform(d_lo, d_hi)  # noqa: E731
    else:
        check_positive("distance", distance)
        d_const = float(distance)
        dist = lambda: d_const  # noqa: E731

    direction = normalize(rng.standard_normal(3))
    positions = np.empty((n_positions, 3))
    for i in range(n_positions):
        positions[i] = direction * dist()
        angle = np.deg2rad(rng.uniform(lo, hi))
        axis = perpendicular_unit_vector(direction, rng)
        direction = normalize(rotation_matrix_axis_angle(axis, angle) @ direction)
    return CameraPath(positions, view_angle_deg, name=f"random_{lo:g}-{hi:g}deg")


def zoom_path(
    n_positions: int = 100,
    distance_range: Tuple[float, float] = (1.5, 4.0),
    degrees_per_step: float = 2.0,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
) -> CameraPath:
    """A zoom-in/zoom-out spiral: distance sweeps hi→lo→hi while orbiting.

    Exercises the dynamically-changing ``d`` that motivates computing the
    vicinal radius per distance (Eq. 6, §V-B2).
    """
    check_positive("n_positions", n_positions)
    d_lo, d_hi = distance_range
    if not 0 < d_lo < d_hi:
        raise ValueError(f"distance_range must satisfy 0 < lo < hi, got {distance_range}")
    rng = resolve_rng(seed)
    direction = normalize(rng.standard_normal(3))
    axis = perpendicular_unit_vector(direction, rng)
    step = np.deg2rad(degrees_per_step)
    # Triangle wave hi -> lo -> hi across the path.
    t = np.linspace(0.0, 2.0, n_positions)
    dists = d_hi - (d_hi - d_lo) * (1.0 - np.abs(1.0 - t))
    positions = np.empty((n_positions, 3))
    for i in range(n_positions):
        positions[i] = direction * dists[i]
        direction = normalize(rotation_matrix_axis_angle(axis, step) @ direction)
    return CameraPath(positions, view_angle_deg, name="zoom")


def waypoint_path(
    waypoints: Sequence[Sequence[float]],
    steps_per_segment: int = 20,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    name: str = "waypoints",
) -> CameraPath:
    """Interpolate a recorded interactive session through its waypoints.

    Real exploration sessions are often captured as a handful of saved
    viewpoints; this reconstructs the in-between motion by spherical
    interpolation of the direction (slerp) and linear interpolation of the
    distance between consecutive waypoints — constant angular velocity per
    segment, like a user dragging between bookmarks.
    """
    check_positive("steps_per_segment", steps_per_segment)
    pts = np.asarray(waypoints, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < 2:
        raise ValueError(f"waypoints must be (>=2, 3), got {pts.shape}")
    dists = np.linalg.norm(pts, axis=1)
    if np.any(dists < 1e-9):
        raise ValueError("waypoints must not sit at the centroid")
    dirs = pts / dists[:, None]

    positions = [pts[0]]
    for seg in range(len(pts) - 1):
        u, v = dirs[seg], dirs[seg + 1]
        d0, d1 = dists[seg], dists[seg + 1]
        dot = float(np.clip(np.dot(u, v), -1.0, 1.0))
        omega = np.arccos(dot)
        for k in range(1, steps_per_segment + 1):
            t = k / steps_per_segment
            if omega < 1e-9:
                direction = u
            else:
                direction = (
                    np.sin((1 - t) * omega) * u + np.sin(t * omega) * v
                ) / np.sin(omega)
            d = (1 - t) * d0 + t * d1
            positions.append(direction * d)
    return CameraPath(np.asarray(positions), view_angle_deg, name=name)


def flythrough_path(
    n_positions: int = 100,
    distance: float = 2.5,
    distance_spread: float = 0.4,
    n_waypoints: int = 5,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
) -> CameraPath:
    """A seeded tour through random saved viewpoints (a "flythrough").

    Draws ``n_waypoints`` random directions at distances uniform in
    ``distance ± distance_spread * distance`` and reconstructs the motion
    between them with :func:`waypoint_path` — long smooth sweeps across
    the sphere with drifting distance, the third workload family of the
    multi-viewer load mix (alongside orbit and zoom).  Exactly
    ``n_positions`` positions are returned.
    """
    check_positive("n_positions", n_positions)
    check_positive("distance", distance)
    if not 0.0 <= distance_spread < 1.0:
        raise ValueError(f"distance_spread must be in [0, 1), got {distance_spread}")
    if n_waypoints < 2:
        raise ValueError(f"n_waypoints must be >= 2, got {n_waypoints}")
    rng = resolve_rng(seed)
    dirs = np.stack([normalize(rng.standard_normal(3)) for _ in range(n_waypoints)])
    lo = distance * (1.0 - distance_spread)
    hi = distance * (1.0 + distance_spread)
    dists = rng.uniform(lo, hi, size=n_waypoints)
    waypoints = dirs * dists[:, None]
    steps = max(1, -(-(n_positions - 1) // (n_waypoints - 1)))  # ceil division
    path = waypoint_path(
        waypoints, steps_per_segment=steps, view_angle_deg=view_angle_deg,
        name="flythrough",
    )
    return CameraPath(
        path.positions[:n_positions].copy(), view_angle_deg, name="flythrough"
    )


def multi_focus_path(
    n_positions: int = 100,
    n_foci: int = 3,
    dwell: int = 8,
    distance: float = 2.5,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
    focus_seed: int = 0,
) -> CameraPath:
    """A collaborative session: dwell near shared foci, slerp between them.

    Models a group of analysts inspecting the same handful of regions of
    interest: the foci (viewing directions) are drawn from ``focus_seed``
    only, so sessions with different ``seed`` values visit the *same*
    hotspots — the overlap that makes multi-tenant caching pay off — while
    their visit order, dwell jitter, and micro-orbits stay per-session
    random.  Each visit dwells ``dwell`` positions in a tight micro-orbit
    around the focus, then slerps to the next one.
    """
    check_positive("n_positions", n_positions)
    check_positive("dwell", dwell)
    check_positive("distance", distance)
    if n_foci < 2:
        raise ValueError(f"n_foci must be >= 2, got {n_foci}")
    focus_rng = resolve_rng(int(focus_seed))
    foci = np.stack([normalize(focus_rng.standard_normal(3)) for _ in range(n_foci)])
    rng = resolve_rng(seed)

    positions = []
    current = foci[int(rng.integers(n_foci))]
    while len(positions) < n_positions:
        # Dwell: a tight micro-orbit (~2 degrees per step) around the focus.
        axis = perpendicular_unit_vector(current, rng)
        p = normalize(
            rotation_matrix_axis_angle(
                perpendicular_unit_vector(current, rng), np.deg2rad(rng.uniform(0.0, 3.0))
            )
            @ current
        )
        for _ in range(dwell):
            if len(positions) >= n_positions:
                break
            positions.append(p * distance)
            p = great_circle_step(p, axis, np.deg2rad(2.0))
        # Transition: slerp to a different focus over a few positions.
        nxt = foci[int(rng.integers(n_foci))]
        if np.allclose(nxt, current):
            nxt = foci[(int(np.argmax(foci @ current)) + 1) % n_foci]
        dot = float(np.clip(np.dot(current, nxt), -1.0, 1.0))
        omega = np.arccos(dot)
        n_steps = max(2, int(np.rad2deg(omega) // 10.0))
        for k in range(1, n_steps + 1):
            if len(positions) >= n_positions:
                break
            t = k / n_steps
            if omega < 1e-9:
                direction = current
            else:
                direction = (
                    np.sin((1 - t) * omega) * current + np.sin(t * omega) * nxt
                ) / np.sin(omega)
            positions.append(normalize(direction) * distance)
        current = nxt
    return CameraPath(
        np.asarray(positions[:n_positions]), view_angle_deg,
        name=f"multi_focus_{n_foci}",
    )


def temporal_sweep_path(
    n_positions: int = 100,
    jitter_deg: float = 4.0,
    distance: float = 2.5,
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
    seed: SeedLike = 0,
) -> CameraPath:
    """A near-stationary view: a time-series sweep from one vantage point.

    Models stepping a simulation through its timesteps while the camera
    barely moves — every position is the seeded anchor direction rotated by
    a uniformly random angle in ``[0, jitter_deg]`` about a random
    perpendicular axis.  The jitter is bounded (not a walk), giving the
    highest temporal locality of the scenario zoo: the working set is
    essentially constant, so replacement policy differences all but vanish
    and any misses are cold-start or fault-induced.
    """
    check_positive("n_positions", n_positions)
    check_positive("distance", distance)
    if not 0.0 <= jitter_deg < 90.0:
        raise ValueError(f"jitter_deg must be in [0, 90), got {jitter_deg}")
    rng = resolve_rng(seed)
    anchor = normalize(rng.standard_normal(3))
    positions = np.empty((n_positions, 3))
    for i in range(n_positions):
        angle = np.deg2rad(rng.uniform(0.0, jitter_deg)) if jitter_deg > 0 else 0.0
        axis = perpendicular_unit_vector(anchor, rng)
        direction = normalize(rotation_matrix_axis_angle(axis, angle) @ anchor)
        positions[i] = direction * distance
    return CameraPath(positions, view_angle_deg, name=f"temporal_sweep_{jitter_deg:g}deg")


def composite_path(paths: Sequence[CameraPath], name: str = "composite") -> CameraPath:
    """Concatenate paths (they must share a view angle)."""
    if not paths:
        raise ValueError("composite_path needs at least one path")
    angles = {p.view_angle_deg for p in paths}
    if len(angles) != 1:
        raise ValueError(f"paths disagree on view angle: {sorted(angles)}")
    positions = np.concatenate([p.positions for p in paths], axis=0)
    return CameraPath(positions, paths[0].view_angle_deg, name=name)
