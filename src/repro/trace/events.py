"""Typed trace events for the I/O path.

One :class:`TraceEvent` is recorded per observable action on the
simulated storage stack.  The event kinds mirror the hierarchy's
read-path decisions:

- ``hit``      — a demand fetch served by the fastest level (no movement
  between levels, but the renderer still reads the bytes);
- ``fetch``    — a demand fetch served by a slower level or the backing
  store (the block is promoted into every faster level);
- ``prefetch`` — a predicted fetch issued during rendering, any source;
- ``evict``    — a victim removed from a level to make room;
- ``bypass``   — an insert abandoned because every resident block was
  protected (Algorithm 1's eviction constraint);
- ``preload``  — a block placed by the Step 2 importance preload;
- ``render``   — one frame's render phase (duration only);
- ``fault``    — one failed read attempt under fault injection, carrying
  the simulated time the failed attempt cost;
- ``retry``    — the deterministic backoff wait before re-attempting a
  failed read (duration only);
- ``degraded`` — informational marker on a read that succeeded slower
  than its nominal cost (latency spike / degraded-bandwidth window);
  ``time_s`` carries only the *extra* seconds above nominal, which are
  already included in the movement event, so degraded events are
  excluded from every time ledger;
- ``xfer``     — one peer-to-peer network transfer in a sharded
  (:mod:`repro.cluster`) run: ``level`` names the link, ``nbytes`` the
  payload and ``time_s`` the charged link time.  The *same* bytes are
  already counted by the movement event of the serving node, so ``xfer``
  is deliberately **outside** :data:`MOVEMENT_KINDS` — it feeds the
  per-link network ledger, never the storage byte ledger;
- ``re_miss``  — forensics marker emitted (only when an
  :class:`~repro.storage.forensics.EvictionLineage` is installed) on a
  demand miss for a block that the lineage ring remembers evicting:
  ``level`` names the level it was evicted *from*, ``age_steps`` the
  steps since that eviction, and ``origin`` the evicting
  ``policy:tenant``.  ``time_s`` is always 0 — re-miss markers sit
  outside every time ledger.

Exactly one of ``hit``/``fetch``/``prefetch`` is emitted per
:meth:`repro.storage.hierarchy.MemoryHierarchy.fetch` call, carrying the
block's size and the simulated time charged — so summing ``nbytes`` over
those three kinds reproduces the hierarchy's ``bytes_moved`` ledger
exactly (a property the test suite pins).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

__all__ = ["EVENT_KINDS", "MOVEMENT_KINDS", "FAULT_KINDS", "TraceEvent"]

EVENT_KINDS: Tuple[str, ...] = (
    "fetch",
    "hit",
    "evict",
    "bypass",
    "prefetch",
    "preload",
    "render",
    "fault",
    "retry",
    "degraded",
    "xfer",
    "re_miss",
)

# Kinds whose ``nbytes`` counts toward the bytes-moved ledger.
MOVEMENT_KINDS: Tuple[str, ...] = ("fetch", "hit", "prefetch")

# Kinds emitted only under fault injection.  The time invariant under
# faults: movement times + ``fault`` + ``retry`` times sum to the charged
# io exactly; ``degraded`` is outside the ledger (see module docstring).
FAULT_KINDS: Tuple[str, ...] = ("fault", "retry", "degraded")


@dataclass(frozen=True)
class TraceEvent:
    """One observable action on the simulated I/O path.

    Parameters
    ----------
    seq:
        Monotonic sequence number assigned by the tracer (survives ring
        wrap-around, so gaps reveal dropped events).
    kind:
        One of :data:`EVENT_KINDS`.
    step:
        Camera-path step the event belongs to (−1 when outside a replay,
        e.g. preload).
    level:
        Serving level or device name (``""`` when not applicable).
    key:
        Block id (−1 when not applicable, e.g. render).
    nbytes:
        Bytes moved or read by this event (0 for evict/bypass/render).
    time_s:
        Simulated seconds charged for this event.
    span:
        Profiler span path open when the event was recorded (``""`` when
        no :class:`~repro.obs.profiler.PhaseProfiler` was attached), e.g.
        ``"replay/fetch"`` — links trace events to wall-clock phases.
    count:
        Number of per-block actions this event stands for.  ``1`` in exact
        mode (one event per action); the batched engine's aggregated mode
        folds a step's hits/fetches/prefetches per (step, level, kind) into
        one event with ``count > 1``, ``nbytes``/``time_s`` summed, and
        ``key = -1`` — the byte ledger is unchanged because aggregation
        only re-buckets the same totals.
    age_steps:
        For ``re_miss`` events: steps elapsed since the block was evicted
        (−1 for every other kind).
    origin:
        For ``re_miss`` events: ``"<policy>:<tenant>"`` of the eviction
        that caused this miss (``""`` for every other kind, and an empty
        tenant part for unpartitioned caches).
    """

    seq: int
    kind: str
    step: int
    level: str
    key: int
    nbytes: int
    time_s: float
    span: str = ""
    count: int = 1
    age_steps: int = -1
    origin: str = ""

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TraceEvent":
        return cls(
            seq=int(d["seq"]),
            kind=str(d["kind"]),
            step=int(d["step"]),
            level=str(d["level"]),
            key=int(d["key"]),
            nbytes=int(d["nbytes"]),
            time_s=float(d["time_s"]),
            span=str(d.get("span", "")),
            count=int(d.get("count", 1)),
            age_steps=int(d.get("age_steps", -1)),
            origin=str(d.get("origin", "")),
        )
