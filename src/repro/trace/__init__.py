"""End-to-end event tracing and metrics for the I/O path.

A :class:`Tracer` rides along the whole read path — hierarchy fetches,
cache evictions/bypasses, preload, prefetch, render — recording typed
:class:`TraceEvent` rows into a bounded ring buffer.  The shared
:data:`NULL_TRACER` keeps instrumented code allocation-free when tracing
is off.  :func:`aggregate` folds an event stream into per-step timelines
(demand vs prefetch bytes per level, eviction churn, fast-memory
coverage); :mod:`repro.trace.export` serialises events as JSON-lines or
Chrome-trace JSON for ``chrome://tracing`` / Perfetto.
"""

from repro.trace.events import EVENT_KINDS, FAULT_KINDS, MOVEMENT_KINDS, TraceEvent
from repro.trace.tracer import NULL_TRACER, NullTracer, Tracer
from repro.trace.aggregate import StepTimeline, TraceSummary, aggregate, format_timeline
from repro.trace.export import (
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "EVENT_KINDS",
    "MOVEMENT_KINDS",
    "FAULT_KINDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "StepTimeline",
    "TraceSummary",
    "aggregate",
    "format_timeline",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]
