"""Per-step timeline aggregation over a raw event stream.

Turns the flat event list into the quantities the paper's figures (and
the ``repro trace`` CLI) report per step: demand vs prefetch bytes split
by serving level, eviction churn, and fast-memory coverage (the fraction
of demand accesses served without leaving the fastest level).

The ledger invariant: ``TraceSummary.total_bytes`` — the sum of
``nbytes`` over hit/fetch/prefetch events — equals the hierarchy's
``bytes_moved`` extra (``backing_bytes + total_bytes_read``) when the
trace captured the whole run.  ``tests/trace/test_integration.py`` pins
this equality exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.trace.events import MOVEMENT_KINDS, TraceEvent

__all__ = ["StepTimeline", "TraceSummary", "aggregate", "format_timeline"]


@dataclass
class StepTimeline:
    """Aggregated I/O activity at one camera-path step."""

    step: int
    hits: int = 0
    demand_fetches: int = 0
    prefetches: int = 0
    evictions: int = 0
    bypasses: int = 0
    preloads: int = 0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    demand_time_s: float = 0.0
    prefetch_time_s: float = 0.0
    render_time_s: float = 0.0
    # Fault-injection activity (all zero on a fault-free run).
    faults: int = 0
    retries: int = 0
    degraded: int = 0
    fault_time_s: float = 0.0  # failed attempts + backoffs (charged io)
    # Cluster network activity (zero on a single-box run).  Peer bytes
    # are deliberately NOT part of demand/prefetch bytes: the serving
    # node's movement event already counts them, xfer only feeds the
    # network ledger.
    xfers: int = 0
    peer_bytes: int = 0
    peer_time_s: float = 0.0  # charged link time (inside the io ledger)
    # Forensics markers (zero unless an EvictionLineage was installed).
    re_misses: int = 0

    @property
    def fast_coverage(self) -> float:
        """Fraction of demand accesses served by the fastest level."""
        n = self.hits + self.demand_fetches
        return self.hits / n if n else 1.0


@dataclass
class TraceSummary:
    """Whole-trace aggregation: per-step rows plus per-level byte splits."""

    steps: List[StepTimeline] = field(default_factory=list)
    #: level/device name -> {"demand": bytes, "prefetch": bytes}
    level_bytes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    n_events: int = 0

    @property
    def demand_bytes(self) -> int:
        return sum(s.demand_bytes for s in self.steps)

    @property
    def prefetch_bytes(self) -> int:
        return sum(s.prefetch_bytes for s in self.steps)

    @property
    def total_bytes(self) -> int:
        """Demand + prefetch bytes — must equal the hierarchy's ``bytes_moved``."""
        return self.demand_bytes + self.prefetch_bytes

    @property
    def total_evictions(self) -> int:
        return sum(s.evictions for s in self.steps)

    @property
    def total_faults(self) -> int:
        return sum(s.faults for s in self.steps)

    @property
    def total_retries(self) -> int:
        return sum(s.retries for s in self.steps)

    @property
    def total_degraded(self) -> int:
        return sum(s.degraded for s in self.steps)

    @property
    def total_re_misses(self) -> int:
        return sum(s.re_misses for s in self.steps)

    @property
    def total_xfers(self) -> int:
        return sum(s.xfers for s in self.steps)

    @property
    def peer_bytes(self) -> int:
        """Bytes moved across network links (outside ``total_bytes``)."""
        return sum(s.peer_bytes for s in self.steps)

    @property
    def peer_time_s(self) -> float:
        return sum(s.peer_time_s for s in self.steps)

    @property
    def fault_time_s(self) -> float:
        """Charged io lost to failed attempts and backoffs."""
        return sum(s.fault_time_s for s in self.steps)

    @property
    def mean_fast_coverage(self) -> float:
        rows = [s for s in self.steps if s.step >= 0]
        if not rows:
            return 1.0
        return sum(s.fast_coverage for s in rows) / len(rows)


def aggregate(events: Iterable[TraceEvent]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`.

    Events with ``step == -1`` (preload before the replay) are gathered
    into their own row, kept first so the timeline stays sorted.
    """
    rows: Dict[int, StepTimeline] = {}
    level_bytes: Dict[str, Dict[str, int]] = {}
    n_events = 0
    for e in events:
        n_events += 1
        row = rows.get(e.step)
        if row is None:
            row = rows[e.step] = StepTimeline(step=e.step)
        if e.kind == "hit":
            row.hits += e.count
            row.demand_bytes += e.nbytes
            row.demand_time_s += e.time_s
        elif e.kind == "fetch":
            row.demand_fetches += e.count
            row.demand_bytes += e.nbytes
            row.demand_time_s += e.time_s
        elif e.kind == "prefetch":
            row.prefetches += e.count
            row.prefetch_bytes += e.nbytes
            row.prefetch_time_s += e.time_s
        elif e.kind == "evict":
            row.evictions += e.count
        elif e.kind == "bypass":
            row.bypasses += e.count
        elif e.kind == "preload":
            row.preloads += e.count
        elif e.kind == "render":
            row.render_time_s += e.time_s
        elif e.kind == "fault":
            row.faults += e.count
            row.fault_time_s += e.time_s
        elif e.kind == "retry":
            row.retries += e.count
            row.fault_time_s += e.time_s
        elif e.kind == "degraded":
            # Informational: the extra seconds are already inside the
            # movement event's time, so only the count is aggregated.
            row.degraded += e.count
        elif e.kind == "xfer":
            # Peer network transfer: bytes/time go to the network ledger
            # only — never to the demand/prefetch byte split, which must
            # keep summing to the storage ``bytes_moved`` ledger.
            row.xfers += e.count
            row.peer_bytes += e.nbytes
            row.peer_time_s += e.time_s
        elif e.kind == "re_miss":
            # Forensics marker: no bytes, no time — count only.
            row.re_misses += e.count
        if e.kind in MOVEMENT_KINDS and e.level:
            split = level_bytes.setdefault(e.level, {"demand": 0, "prefetch": 0})
            split["prefetch" if e.kind == "prefetch" else "demand"] += e.nbytes
    return TraceSummary(
        steps=[rows[k] for k in sorted(rows)],
        level_bytes=level_bytes,
        n_events=n_events,
    )


def format_timeline(summary: TraceSummary, max_rows: int = 20) -> str:
    """Human-readable per-step table (the ``repro trace`` CLI output)."""
    header = (
        f"{'step':>5} {'hits':>6} {'fetch':>6} {'pref':>6} {'evict':>6} "
        f"{'byp':>5} {'dem MB':>9} {'pref MB':>9} {'cover':>6}"
    )
    lines = [header, "-" * len(header)]
    rows = summary.steps
    shown = rows if len(rows) <= max_rows else rows[:max_rows]
    for s in shown:
        label = "pre" if s.step < 0 else str(s.step)
        lines.append(
            f"{label:>5} {s.hits:>6} {s.demand_fetches:>6} {s.prefetches:>6} "
            f"{s.evictions:>6} {s.bypasses:>5} {s.demand_bytes / 1e6:>9.2f} "
            f"{s.prefetch_bytes / 1e6:>9.2f} {s.fast_coverage:>6.2f}"
        )
    if len(rows) > len(shown):
        lines.append(f"... ({len(rows) - len(shown)} more steps)")
    lines.append(
        f"totals: {summary.demand_bytes / 1e6:.2f} MB demand + "
        f"{summary.prefetch_bytes / 1e6:.2f} MB prefetch = "
        f"{summary.total_bytes / 1e6:.2f} MB moved, "
        f"{summary.total_evictions} evictions, "
        f"mean fast coverage {summary.mean_fast_coverage:.2f}"
    )
    if summary.total_xfers:
        lines.append(
            f"network: {summary.total_xfers} peer transfers, "
            f"{summary.peer_bytes / 1e6:.2f} MB over links, "
            f"{summary.peer_time_s * 1e3:.3f} ms link time"
        )
    if summary.total_faults or summary.total_retries or summary.total_degraded:
        lines.append(
            f"faults: {summary.total_faults} failed reads, "
            f"{summary.total_retries} retries, "
            f"{summary.total_degraded} degraded reads, "
            f"{summary.fault_time_s * 1e3:.3f} ms lost"
        )
    return "\n".join(lines)
