"""The tracer: a bounded ring buffer of :class:`TraceEvent`.

Two implementations share one duck-typed interface:

- :class:`Tracer` records into a fixed-capacity ring (oldest events are
  overwritten once full — a replay can run forever without growing);
- :class:`NullTracer` is a do-nothing stand-in whose ``enabled`` flag is
  ``False``.  Hot paths guard event construction with
  ``if tracer.enabled:`` so a disabled trace costs one attribute load and
  a branch — no allocation, no call.

Instrumented components accept a tracer and default to the shared
:data:`NULL_TRACER`, so tracing is strictly opt-in.
"""

from __future__ import annotations

from typing import List

from repro.trace.events import EVENT_KINDS, TraceEvent

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]

_KINDS = frozenset(EVENT_KINDS)


class Tracer:
    """Fixed-capacity, overwrite-oldest event recorder.

    ``current_span`` is the profiler span path stamped onto every event
    recorded while it is set (a :class:`~repro.obs.profiler.PhaseProfiler`
    with this tracer attached maintains it; ``""`` otherwise).
    """

    __slots__ = ("capacity", "current_span", "_ring", "_next", "_total")

    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.current_span = ""
        self._ring: List[TraceEvent] = []
        self._next = 0  # ring slot the next event lands in (once full)
        self._total = 0  # events ever recorded (monotonic)

    # -- recording -----------------------------------------------------------

    def record(
        self,
        kind: str,
        step: int = -1,
        level: str = "",
        key: int = -1,
        nbytes: int = 0,
        time_s: float = 0.0,
        count: int = 1,
        age_steps: int = -1,
        origin: str = "",
    ) -> None:
        """Append one event; overwrites the oldest once the ring is full.

        ``count > 1`` marks an aggregated event standing for that many
        per-block actions (batched engine's per-step roll-up).
        ``age_steps``/``origin`` carry eviction provenance on ``re_miss``
        events and keep their defaults everywhere else.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        event = TraceEvent(
            self._total,
            kind,
            step,
            level,
            key,
            nbytes,
            time_s,
            self.current_span,
            count,
            age_steps,
            origin,
        )
        self._total += 1
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._next] = event
            self._next = (self._next + 1) % self.capacity

    # -- reading -------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (drops are at the front)."""
        return self._ring[self._next:] + self._ring[: self._next]

    def events_since(self, seq: int) -> List[TraceEvent]:
        """Retained events with ``event.seq >= seq``, oldest first.

        O(k) in the number of returned events — per-frame consumers (the
        session scheduler's attribution hook) call this with the previous
        frame's ``n_recorded`` instead of copying the whole ring.  Events
        older than ``seq`` that were already overwritten are simply absent;
        compare ``n_dropped`` across the window to detect that.
        """
        if seq >= self._total:
            return []
        oldest = self._total - len(self._ring)
        start = max(int(seq), oldest)
        offset = start - oldest  # logical index into the ordered ring
        count = len(self._ring) - offset
        if len(self._ring) < self.capacity:  # never wrapped: ring is in order
            return self._ring[offset:]
        phys = (self._next + offset) % self.capacity
        tail = self._ring[phys : phys + count]
        if len(tail) == count:
            return tail
        return tail + self._ring[: count - len(tail)]

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def n_recorded(self) -> int:
        """Events ever recorded, including any overwritten by wrap-around."""
        return self._total

    @property
    def n_dropped(self) -> int:
        """Events lost to ring wrap-around."""
        return self._total - len(self._ring)

    def drop_stats(self) -> "dict[str, int]":
        """Recorded/retained/dropped counts, bench- and report-friendly."""
        return {
            "capacity": self.capacity,
            "n_recorded": self.n_recorded,
            "n_retained": len(self._ring),
            "n_dropped": self.n_dropped,
        }

    def clear(self) -> None:
        """Forget retained events and the drop counter (capacity kept)."""
        self._ring.clear()
        self._next = 0
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(capacity={self.capacity}, retained={len(self._ring)}, "
            f"dropped={self.n_dropped})"
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so instrumented code skips event construction
    entirely; calling :meth:`record` anyway is harmless.
    """

    __slots__ = ()

    enabled = False
    current_span = ""

    def record(
        self,
        kind: str,
        step: int = -1,
        level: str = "",
        key: int = -1,
        nbytes: int = 0,
        time_s: float = 0.0,
        count: int = 1,
        age_steps: int = -1,
        origin: str = "",
    ) -> None:
        pass

    def events(self) -> List[TraceEvent]:
        return []

    def events_since(self, seq: int) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    @property
    def n_recorded(self) -> int:
        return 0

    @property
    def n_dropped(self) -> int:
        return 0

    def drop_stats(self) -> "dict[str, int]":
        return {"capacity": 0, "n_recorded": 0, "n_retained": 0, "n_dropped": 0}

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: Shared disabled tracer; instrumented components default to this.
NULL_TRACER = NullTracer()
