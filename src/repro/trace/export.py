"""Trace exporters: JSON-lines and Chrome-trace (Perfetto) formats.

JSONL is the lossless interchange format — one event dict per line,
round-trippable through :func:`read_jsonl`.

The Chrome trace format (the ``traceEvents`` JSON consumed by
``chrome://tracing`` and https://ui.perfetto.dev) lays events out on a
simulated wall clock: events are replayed in sequence order and each
one's charged duration advances the clock, with one track (``tid``) per
serving level plus dedicated tracks for render and cache-maintenance
events.  Durations are stretched to microseconds via ``time_scale`` so
nanosecond-scale DRAM reads stay visible next to millisecond HDD seeks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.trace.events import TraceEvent

__all__ = ["write_jsonl", "read_jsonl", "to_chrome_trace", "write_chrome_trace"]

PathLike = Union[str, Path]


# -- JSON lines ---------------------------------------------------------------


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> Path:
    """Write one JSON object per event; returns the path written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for e in events:
            fh.write(json.dumps(e.as_dict(), separators=(",", ":")))
            fh.write("\n")
    return path


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Parse a file written by :func:`write_jsonl` (blank lines ignored).

    Raises a one-line :class:`ValueError` naming the file (and line) on an
    empty file or a truncated/corrupt line, so CLI consumers can report it
    without a traceback.
    """
    path = Path(path)
    out: List[TraceEvent] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(TraceEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: truncated or corrupt trace line ({exc})"
                ) from None
    if not out:
        raise ValueError(f"{path}: empty trace file (no events)")
    return out


# -- Chrome trace -------------------------------------------------------------

# Events that occupy the I/O timeline (duration events); everything else
# becomes an instant marker on its own track.  Failed attempts ("fault")
# and backoffs ("retry") are charged io, so they advance the clock like
# movement events; "degraded" stays an instant marker — its time is the
# extra already inside the adjacent movement event's duration.
_DURATION_KINDS = frozenset({"hit", "fetch", "prefetch", "render", "fault", "retry"})


def _track_for(event: TraceEvent) -> str:
    if event.kind == "render":
        return "render"
    if event.kind == "xfer":
        # Peer transfers live on per-link network tracks (level = link name).
        return f"net:{event.level}" if event.level else "net"
    if event.kind in ("evict", "bypass", "preload", "re_miss"):
        return f"cache:{event.level}" if event.level else "cache"
    return f"io:{event.level}" if event.level else "io"


def to_chrome_trace(
    events: Sequence[TraceEvent],
    time_scale: float = 1e6,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Build a Chrome-trace dict (``{"traceEvents": [...]}``).

    ``time_scale`` converts simulated seconds to trace microseconds
    (default 1e6: one simulated second = one trace second).  The clock is
    the cumulative simulated time of the events in sequence order — a
    serialisation of the run, not the overlapped schedule.
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    clock = 0.0
    for e in sorted(events, key=lambda ev: ev.seq):
        ts = clock * time_scale
        args = {
            "seq": e.seq,
            "step": e.step,
            "key": e.key,
            "nbytes": e.nbytes,
            "time_s": e.time_s,
        }
        if e.span:
            args["span"] = e.span
        if e.kind == "re_miss":
            args["age_steps"] = e.age_steps
            args["origin"] = e.origin
        if e.kind in _DURATION_KINDS:
            trace_events.append(
                {
                    "name": f"{e.kind} {e.key}" if e.key >= 0 else e.kind,
                    "cat": e.kind,
                    "ph": "X",
                    "ts": ts,
                    "dur": max(e.time_s * time_scale, 0.001),
                    "pid": 0,
                    "tid": _track_for(e),
                    "args": args,
                }
            )
            clock += e.time_s
        else:
            trace_events.append(
                {
                    "name": f"{e.kind} {e.key}" if e.key >= 0 else e.kind,
                    "cat": e.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 0,
                    "tid": _track_for(e),
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Sequence[TraceEvent],
    path: PathLike,
    time_scale: float = 1e6,
) -> Path:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events, time_scale=time_scale), fh)
    return path
