"""Eviction forensics: provenance lineage, re-miss detection, Belady regret.

The paper's thesis is that *which block you evict* determines interactive
frame latency.  This module records enough provenance per eviction to
answer, at the moment of a later miss, "who evicted this block, when, and
how confidently" — turning an anonymous miss into an attributable
decision:

- :class:`EvictionLineage` keeps a bounded ring of
  :class:`EvictionRecord` (block, level, step, policy, tenant,
  victim-queue rank) plus a block → most-recent-eviction map.  The
  hierarchy consults it on every *demand* miss; a match produces a
  :class:`ReMissRecord` (and, when a tracer is attached, a ``re_miss``
  trace event) carrying the time-since-eviction and the evicting
  policy/tenant.
- A re-miss within ``premature_window`` steps of the eviction counts as a
  **premature eviction** — the policy discarded a block it needed right
  back, the paper's canonical failure mode.
- :func:`optimal_miss_count` replays a demand key sequence through the
  existing :class:`~repro.policies.belady.BeladyPolicy` (offline MIN), so
  a run's **regret** = actual fast-level misses − Belady misses can be
  reported per policy.  With an importance preload warming the cache the
  regret can be negative (the preload sees outside the demand trace;
  Belady here starts cold), so it is reported raw, not clamped.

Everything here is strictly opt-in: no lineage is allocated unless
:meth:`repro.storage.hierarchy.MemoryHierarchy.set_forensics` is called,
and fault-free default runs stay byte-identical with forensics *enabled*
— lineage only observes decisions, never changes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.policies.belady import BeladyPolicy

__all__ = [
    "EvictionRecord",
    "ReMissRecord",
    "EvictionLineage",
    "optimal_miss_count",
]


@dataclass(frozen=True)
class EvictionRecord:
    """Provenance of one eviction decision."""

    block: int
    level: str
    step: int
    policy: str
    tenant: str  # "" when the level is unpartitioned
    rank: int  # absolute victim-queue position; -1 for non-queue paths

    @property
    def origin(self) -> str:
        """``"<policy>:<tenant>"`` — the ``re_miss`` event's origin field."""
        return f"{self.policy}:{self.tenant}"


@dataclass(frozen=True)
class ReMissRecord:
    """A demand miss on a block the lineage remembers evicting."""

    block: int
    step: int  # step of the miss
    age_steps: int  # miss step - eviction step
    evicted_from: str
    evicted_step: int
    policy: str
    tenant: str
    rank: int
    premature: bool

    def as_dict(self) -> dict:
        return {
            "block": self.block,
            "step": self.step,
            "age_steps": self.age_steps,
            "evicted_from": self.evicted_from,
            "evicted_step": self.evicted_step,
            "policy": self.policy,
            "tenant": self.tenant,
            "rank": self.rank,
            "premature": self.premature,
        }


class EvictionLineage:
    """Bounded eviction-provenance ring with re-miss lookup.

    ``capacity`` bounds both the eviction ring and the retained re-miss
    records (overwrite-oldest), so a forever-running replay cannot grow
    memory.  The counters (``n_evictions``, ``n_re_misses``,
    ``n_premature``) are monotonic and survive wrap-around.
    """

    __slots__ = (
        "capacity",
        "premature_window",
        "n_evictions",
        "n_re_misses",
        "n_premature",
        "_ring",
        "_next",
        "_last",
        "_re_ring",
        "_re_next",
    )

    def __init__(self, capacity: int = 4096, premature_window: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if premature_window < 0:
            raise ValueError(f"premature_window must be >= 0, got {premature_window}")
        self.capacity = int(capacity)
        self.premature_window = int(premature_window)
        self.n_evictions = 0
        self.n_re_misses = 0
        self.n_premature = 0
        self._ring: List[EvictionRecord] = []
        self._next = 0
        self._last: Dict[int, EvictionRecord] = {}
        self._re_ring: List[ReMissRecord] = []
        self._re_next = 0

    # -- recording -----------------------------------------------------------

    def record_eviction(
        self,
        block: int,
        level: str,
        step: int,
        policy: str,
        tenant: str = "",
        rank: int = -1,
    ) -> None:
        """Remember one eviction; overwrites the oldest once full."""
        rec = EvictionRecord(block, level, step, policy, tenant, rank)
        self.n_evictions += 1
        if len(self._ring) < self.capacity:
            self._ring.append(rec)
        else:
            old = self._ring[self._next]
            if self._last.get(old.block) is old:
                del self._last[old.block]  # provenance aged out of the ring
            self._ring[self._next] = rec
            self._next = (self._next + 1) % self.capacity
        self._last[block] = rec

    def on_miss(self, block: int, step: int) -> Optional[ReMissRecord]:
        """Look up a demand miss; returns the re-miss record on a match.

        A match means the lineage ring still remembers evicting ``block``;
        the caller (the hierarchy) emits the ``re_miss`` trace event and
        bumps the registry counters from the returned record.
        """
        rec = self._last.get(block)
        if rec is None:
            return None
        age = step - rec.step if step >= 0 and rec.step >= 0 else -1
        premature = 0 <= age <= self.premature_window
        re_rec = ReMissRecord(
            block=block,
            step=step,
            age_steps=age,
            evicted_from=rec.level,
            evicted_step=rec.step,
            policy=rec.policy,
            tenant=rec.tenant,
            rank=rec.rank,
            premature=premature,
        )
        self.n_re_misses += 1
        if premature:
            self.n_premature += 1
        if len(self._re_ring) < self.capacity:
            self._re_ring.append(re_rec)
        else:
            self._re_ring[self._re_next] = re_rec
            self._re_next = (self._re_next + 1) % self.capacity
        return re_rec

    # -- reading -------------------------------------------------------------

    def lookup(self, block: int) -> Optional[EvictionRecord]:
        """Most recent remembered eviction of ``block`` (no counters touched)."""
        return self._last.get(block)

    def evictions(self) -> List[EvictionRecord]:
        """Retained eviction records, oldest first."""
        return self._ring[self._next:] + self._ring[: self._next]

    def re_misses(self) -> List[ReMissRecord]:
        """Retained re-miss records, oldest first."""
        return self._re_ring[self._re_next:] + self._re_ring[: self._re_next]

    def top_premature(self, n: int = 10) -> List[dict]:
        """The worst premature evictions, for the report's top-10 table.

        Grouped per block; ranked by premature re-miss count (descending),
        then by smallest age (a block wanted back one step later is worse
        than one wanted back five steps later), then by block id for
        determinism.
        """
        per_block: Dict[int, dict] = {}
        for r in self.re_misses():
            if not r.premature:
                continue
            row = per_block.get(r.block)
            if row is None:
                per_block[r.block] = {
                    "block": r.block,
                    "count": 1,
                    "min_age_steps": r.age_steps,
                    "last_step": r.step,
                    "evicted_from": r.evicted_from,
                    "policy": r.policy,
                    "tenant": r.tenant,
                    "rank": r.rank,
                }
            else:
                row["count"] += 1
                row["min_age_steps"] = min(row["min_age_steps"], r.age_steps)
                row["last_step"] = max(row["last_step"], r.step)
        rows = sorted(
            per_block.values(),
            key=lambda r: (-r["count"], r["min_age_steps"], r["block"]),
        )
        return rows[:n]

    def as_dict(self, top_n: int = 10) -> dict:
        """Snapshot-friendly summary (plain JSON types only)."""
        return {
            "capacity": self.capacity,
            "premature_window": self.premature_window,
            "n_evictions": self.n_evictions,
            "n_re_misses": self.n_re_misses,
            "n_premature": self.n_premature,
            "top_premature": self.top_premature(top_n),
        }

    def clear(self) -> None:
        self.n_evictions = 0
        self.n_re_misses = 0
        self.n_premature = 0
        self._ring.clear()
        self._next = 0
        self._last.clear()
        self._re_ring.clear()
        self._re_next = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvictionLineage(capacity={self.capacity}, "
            f"evictions={self.n_evictions}, re_misses={self.n_re_misses}, "
            f"premature={self.n_premature})"
        )


def optimal_miss_count(keys: Sequence[int], capacity: int) -> int:
    """Belady-MIN miss count for a demand key sequence and cache size.

    Replays ``keys`` through :class:`~repro.policies.belady.BeladyPolicy`
    over a simulated cache of ``capacity`` slots starting cold; counts the
    misses (cold-start compulsory misses included).  This is the offline
    lower bound the per-policy regret is measured against.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    keys = list(keys)
    if not keys:
        return 0
    policy = BeladyPolicy(keys)
    resident: set = set()
    misses = 0
    for step, key in enumerate(keys):
        if key in resident:
            policy.on_hit(key, step)
            continue
        misses += 1
        if len(resident) >= capacity:
            victim = policy.choose_victim()
            policy.on_evict(victim)
            resident.discard(victim)
        policy.on_insert(key, step)
        resident.add(key)
    return misses
