"""Discrete-event timeline for I/O / render overlap.

The core pipeline charges ``io + max(prefetch, render)`` per step — the
paper's §V-D accounting.  That analytic rule assumes the prefetch stream
and the render occupy disjoint resources and that demand I/O fully
serialises between frames.  This module models the schedule explicitly:

- one **I/O channel** executing reads in issue order (demand and prefetch
  share the device — a prefetch in flight delays a later demand read);
- one **compute channel** executing renders;
- per step: demand reads are issued and *awaited*, the render starts, and
  prefetch reads are issued in the background; the next step's demand
  reads queue behind any prefetch still in flight.

:func:`simulate_schedule` turns per-step cost tuples into a completion
timeline, so the analytic accounting can be validated (and its error
measured) against an explicit schedule — see
``tests/storage/test_timeline.py`` and the scheduling ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["StepCosts", "StepSchedule", "simulate_schedule"]


@dataclass(frozen=True)
class StepCosts:
    """The per-step work items, as durations.

    ``demand_reads``/``prefetch_reads`` are individual read durations in
    issue order; ``render_s`` is the frame's compute time.
    """

    demand_reads: Tuple[float, ...]
    prefetch_reads: Tuple[float, ...]
    render_s: float

    def __post_init__(self) -> None:
        for name, values in (("demand_reads", self.demand_reads),
                             ("prefetch_reads", self.prefetch_reads)):
            if any(v < 0 for v in values):
                raise ValueError(f"{name} must be non-negative")
        if self.render_s < 0:
            raise ValueError("render_s must be non-negative")
        object.__setattr__(self, "demand_reads", tuple(self.demand_reads))
        object.__setattr__(self, "prefetch_reads", tuple(self.prefetch_reads))


@dataclass(frozen=True)
class StepSchedule:
    """When one step's phases completed on the simulated wall clock."""

    step: int
    demand_done_s: float  # all demand reads finished; render may start
    render_done_s: float
    prefetch_done_s: float  # last background read finished
    frame_done_s: float  # when the *user* sees the frame (render done)


def simulate_schedule(steps: Sequence[StepCosts]) -> List[StepSchedule]:
    """Run the two-channel schedule and return per-step completion times.

    Semantics:

    - the I/O channel is FIFO: reads execute in issue order, one at a time;
    - step *i*'s demand reads are issued at the moment its processing
      begins (after step *i−1*'s render), so they queue behind any of
      step *i−1*'s prefetch reads still in flight;
    - the render starts when the demand reads are done;
    - prefetch reads are issued at render start (the overlap the paper
      exploits);
    - step *i+1* begins when step *i*'s render completes.
    """
    io_free = 0.0  # when the I/O channel next becomes idle
    clock = 0.0  # frame-to-frame progression (compute channel)
    out: List[StepSchedule] = []
    for i, costs in enumerate(steps):
        # Demand reads: issued now, FIFO behind whatever the channel holds.
        start = max(clock, 0.0)
        io_cursor = max(io_free, start)
        for dur in costs.demand_reads:
            io_cursor += dur
        demand_done = io_cursor if costs.demand_reads else start
        io_free = io_cursor

        render_start = max(start, demand_done)
        render_done = render_start + costs.render_s

        # Prefetch: issued at render start, queued on the same channel.
        io_cursor = max(io_free, render_start)
        for dur in costs.prefetch_reads:
            io_cursor += dur
        prefetch_done = io_cursor if costs.prefetch_reads else render_start
        io_free = max(io_free, io_cursor)

        out.append(
            StepSchedule(
                step=i,
                demand_done_s=demand_done,
                render_done_s=render_done,
                prefetch_done_s=prefetch_done,
                frame_done_s=render_done,
            )
        )
        clock = render_done
    return out
