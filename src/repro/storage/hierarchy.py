"""Multi-level memory hierarchy with an inclusive read path.

Levels are ordered fastest-first (DRAM, SSD, ...) above a backing device
(HDD) that always holds the whole dataset.  A fetch searches top-down;
on a hit at level *j* the block is copied into every faster level (the
paper's HDD → SSD → DRAM movement, §V-A), charged at level *j*'s device
read cost — the slowest medium on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.obs.metrics import NULL_REGISTRY
from repro.policies.registry import make_policy
from repro.storage.cache import CacheLevel
from repro.storage.device import DRAM, HDD, SSD, StorageDevice
from repro.storage.stats import HierarchyStats
from repro.trace.tracer import NULL_TRACER

__all__ = ["FetchResult", "MemoryHierarchy", "make_standard_hierarchy"]

BlockSize = Union[int, Callable[[int], int]]


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one block fetch."""

    key: int
    time_s: float
    source: str  # name of the level/device that served the data
    fastest_hit: bool  # True when the block was already in the fastest level


class MemoryHierarchy:
    """Cache levels over a backing store, with demand and prefetch paths."""

    def __init__(
        self,
        levels: Sequence[CacheLevel],
        level_devices: Sequence[StorageDevice],
        backing: StorageDevice,
        block_nbytes: BlockSize,
        prefetch_latency_factor: float = 0.25,
        tracer=None,
        registry=None,
    ) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one cache level")
        if len(levels) != len(level_devices):
            raise ValueError(
                f"{len(levels)} levels but {len(level_devices)} devices"
            )
        names = [lv.name for lv in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names: {names}")
        self.levels: List[CacheLevel] = list(levels)
        self.level_devices: List[StorageDevice] = list(level_devices)
        self.backing = backing
        self._block_nbytes = block_nbytes
        if not 0.0 <= prefetch_latency_factor <= 1.0:
            raise ValueError(
                f"prefetch_latency_factor must be in [0, 1], got {prefetch_latency_factor}"
            )
        # Prefetch requests are queued and asynchronous, so they amortise
        # per-request latency (readahead / NCQ); demand reads pay it fully.
        self.prefetch_latency_factor = prefetch_latency_factor
        self.backing_reads = 0
        self.backing_bytes = 0
        self.tracer = NULL_TRACER
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)
        self.registry = NULL_REGISTRY
        self.set_registry(registry if registry is not None else NULL_REGISTRY)

    def set_tracer(self, tracer) -> None:
        """Install ``tracer`` on the hierarchy and every cache level."""
        self.tracer = tracer
        for level in self.levels:
            level.tracer = tracer

    def set_registry(self, registry) -> None:
        """Bind the read-path metrics on ``registry`` (hierarchy + levels).

        Per serving source (each cache level plus the backing device) the
        hierarchy keeps a ``fetch_latency_seconds`` histogram split by
        demand/prefetch and a ``bytes_read_total`` counter that increments
        exactly where the :class:`~repro.storage.stats.CacheStats` byte
        ledger does — so registry counters and ``HierarchyStats`` totals
        are equal by construction (pinned by the test suite).
        """
        self.registry = registry
        for level in self.levels:
            level.set_registry(registry)
        source_names = [lv.name for lv in self.levels] + [self.backing.name]
        self._fetch_metrics = {
            name: (
                registry.histogram("fetch_latency_seconds", level=name, kind="demand"),
                registry.histogram("fetch_latency_seconds", level=name, kind="prefetch"),
                registry.counter("bytes_read_total", level=name),
                registry.counter("fetches_total", level=name, kind="demand"),
                registry.counter("fetches_total", level=name, kind="prefetch"),
            )
            for name in source_names
        }

    def _record_fetch(self, source: str, prefetch: bool, nbytes: int, time_s: float) -> None:
        demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = self._fetch_metrics[source]
        if prefetch:
            prefetch_h.observe(time_s)
            prefetch_c.inc()
        else:
            demand_h.observe(time_s)
            demand_c.inc()
        bytes_c.inc(nbytes)

    # -- helpers -------------------------------------------------------------

    @property
    def fastest(self) -> CacheLevel:
        return self.levels[0]

    def block_nbytes(self, key: int) -> int:
        if callable(self._block_nbytes):
            return int(self._block_nbytes(key))
        return int(self._block_nbytes)

    def contains_fast(self, key: int) -> bool:
        """Is ``key`` already in the fastest level (no I/O needed)?"""
        return key in self.levels[0]

    # -- the read path ---------------------------------------------------------

    def fetch(
        self,
        key: int,
        step: int,
        prefetch: bool = False,
        min_free_step: Optional[int] = None,
    ) -> FetchResult:
        """Bring ``key`` into the fastest level; return the charged time.

        Demand fetches (``prefetch=False``) update recency and the demand
        hit/miss counters; prefetch fetches update the prefetch counters and
        do not refresh recency on hits (a prediction must not perturb the
        replacement order of data the user actually touched).

        Byte accounting is uniform: every fetch charges the block's size
        exactly once at the serving source — ``bytes_read`` of the serving
        cache level (including fastest-level hits, whose bytes the renderer
        still reads) or ``backing_bytes`` for backing-store reads.  The
        ``bytes_moved`` extras reported by the drivers therefore equal
        ``backing_bytes + total_bytes_read``, and the trace's
        hit/fetch/prefetch events sum to the same total.
        """
        nbytes = self.block_nbytes(key)
        latency_scale = self.prefetch_latency_factor if prefetch else 1.0
        found_at = None
        for j, level in enumerate(self.levels):
            if key in level:
                found_at = j
                break

        tracer = self.tracer
        if found_at == 0:
            level = self.levels[0]
            if prefetch:
                level.stats.prefetch_hits += 1
            else:
                level.stats.hits += 1
                level.touch(key, step)
            level.stats.bytes_read += nbytes
            time_s = self.level_devices[0].read_time(nbytes, latency_scale)
            if self.registry.enabled:
                self._record_fetch(level.name, prefetch, nbytes, time_s)
            if tracer.enabled:
                tracer.record(
                    "prefetch" if prefetch else "hit",
                    step, level.name, key, nbytes, time_s,
                )
            return FetchResult(key, time_s, level.name, fastest_hit=True)

        # Count misses at every level above the serving one.
        upper = self.levels if found_at is None else self.levels[:found_at]
        for level in upper:
            if prefetch:
                level.stats.prefetch_misses += 1
            else:
                level.stats.misses += 1

        if found_at is None:
            source_name = self.backing.name
            time_s = self.backing.read_time(nbytes, latency_scale)
            self.backing_reads += 1
            self.backing_bytes += nbytes
        else:
            serving = self.levels[found_at]
            if prefetch:
                serving.stats.prefetch_hits += 1
            else:
                serving.stats.hits += 1
                serving.touch(key, step)
            serving.stats.bytes_read += nbytes
            source_name = serving.name
            time_s = self.level_devices[found_at].read_time(nbytes, latency_scale)

        if self.registry.enabled:
            self._record_fetch(source_name, prefetch, nbytes, time_s)
        if tracer.enabled:
            tracer.record(
                "prefetch" if prefetch else "fetch",
                step, source_name, key, nbytes, time_s,
            )
        # Copy into every faster level (inclusive hierarchy).
        for level in upper:
            level.admit(key, step, min_free_step=min_free_step)
        return FetchResult(key, time_s, source_name, fastest_hit=False)

    # -- preload (Step 2 / Alg. 1 line 7) -----------------------------------------

    def preload(self, keys_by_priority: Sequence[int]) -> "dict[str, int]":
        """Fill every level from the head of a priority-ordered key list.

        Inclusive placement: the top ``capacity`` keys of each level go into
        it, so the fastest level holds the most important blocks and slower
        levels hold supersets.  Returns blocks placed per level.
        """
        placed = {}
        for level in self.levels:
            placed[level.name] = level.preload(keys_by_priority)
        return placed

    # -- stats & lifecycle -------------------------------------------------------

    def stats(self) -> HierarchyStats:
        return HierarchyStats(levels={lv.name: lv.stats for lv in self.levels})

    def reset_stats(self) -> None:
        for level in self.levels:
            level.stats.reset()
        self.backing_reads = 0
        self.backing_bytes = 0

    def clear(self) -> None:
        """Empty every level (stats preserved)."""
        for level in self.levels:
            level.clear()

    def check_invariants(self) -> None:
        for level in self.levels:
            level.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lv = ", ".join(f"{lvl.name}:{lvl.capacity}" for lvl in self.levels)
        return f"MemoryHierarchy([{lv}] over {self.backing.name})"


def make_standard_hierarchy(
    n_blocks: int,
    block_nbytes: BlockSize,
    cache_ratio: float = 0.5,
    policy: str = "lru",
    devices: Sequence[StorageDevice] = (DRAM, SSD),
    backing: StorageDevice = HDD,
    tracer=None,
    registry=None,
) -> MemoryHierarchy:
    """The paper's DRAM/SSD-over-HDD setup for a dataset of ``n_blocks``.

    ``cache_ratio`` is the size ratio between two successive memory levels
    (§V-A: 0.5 → SSD holds 50 % of the dataset, DRAM 25 %; Fig. 13(b) uses
    0.7).  Each level gets its own fresh ``policy`` instance.
    """
    if not 0 < cache_ratio <= 1:
        raise ValueError(f"cache_ratio must be in (0, 1], got {cache_ratio}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    levels: List[CacheLevel] = []
    frac = 1.0
    for device in reversed(devices):  # slowest cache level first for sizing
        frac *= cache_ratio
        capacity = max(1, int(round(n_blocks * frac)))
        levels.append(CacheLevel(device.name, capacity, make_policy(policy)))
    levels.reverse()  # fastest first
    return MemoryHierarchy(
        levels, list(devices), backing, block_nbytes, tracer=tracer, registry=registry
    )
