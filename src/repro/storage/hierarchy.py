"""Multi-level memory hierarchy with an inclusive read path.

Levels are ordered fastest-first (DRAM, SSD, ...) above a backing device
(HDD) that always holds the whole dataset.  A fetch searches top-down;
on a hit at level *j* the block is copied into every faster level (the
paper's HDD → SSD → DRAM movement, §V-A), charged at level *j*'s device
read cost — the slowest medium on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.obs.metrics import NULL_REGISTRY
from repro.policies.registry import make_policy
from repro.storage.cache import CacheLevel
from repro.storage.device import DRAM, HDD, SSD, StorageDevice
from repro.storage.stats import HierarchyStats
from repro.trace.tracer import NULL_TRACER

__all__ = [
    "DROPPED",
    "FetchResult",
    "BatchFetchResult",
    "MemoryHierarchy",
    "make_standard_hierarchy",
]

BlockSize = Union[int, Callable[[int], int]]


#: ``FetchResult.source`` when every source (including the backing store)
#: failed and the block could not be delivered.
DROPPED = "dropped"


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one block fetch.

    ``dropped`` is True only under fault injection, when every candidate
    source exhausted its retries: the charged ``time_s`` is the wasted
    attempt/backoff time and no data moved (``source`` is :data:`DROPPED`).
    """

    key: int
    time_s: float
    source: str  # name of the level/device that served the data
    fastest_hit: bool  # True when the block was already in the fastest level
    dropped: bool = False


@dataclass(frozen=True)
class BatchFetchResult:
    """Outcome of one :meth:`MemoryHierarchy.fetch_many` call.

    ``time_s`` is the left-fold sum of the per-block charged times in id
    order — bit-identical to accumulating ``fetch(...).time_s`` over the
    same ids with ``+=``.  ``n_dropped``/``dropped_ids`` are non-trivial
    only under fault injection (see :meth:`MemoryHierarchy.set_fault_injector`).
    """

    n: int
    n_fastest_hits: int
    time_s: float
    n_dropped: int = 0
    dropped_ids: "tuple[int, ...]" = ()


class MemoryHierarchy:
    """Cache levels over a backing store, with demand and prefetch paths."""

    def __init__(
        self,
        levels: Sequence[CacheLevel],
        level_devices: Sequence[StorageDevice],
        backing: StorageDevice,
        block_nbytes: BlockSize,
        prefetch_latency_factor: float = 0.25,
        tracer=None,
        registry=None,
    ) -> None:
        if not levels:
            raise ValueError("hierarchy needs at least one cache level")
        if len(levels) != len(level_devices):
            raise ValueError(
                f"{len(levels)} levels but {len(level_devices)} devices"
            )
        names = [lv.name for lv in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names: {names}")
        self.levels: List[CacheLevel] = list(levels)
        self.level_devices: List[StorageDevice] = list(level_devices)
        self.backing = backing
        self._block_nbytes = block_nbytes
        if not 0.0 <= prefetch_latency_factor <= 1.0:
            raise ValueError(
                f"prefetch_latency_factor must be in [0, 1], got {prefetch_latency_factor}"
            )
        # Prefetch requests are queued and asynchronous, so they amortise
        # per-request latency (readahead / NCQ); demand reads pay it fully.
        self.prefetch_latency_factor = prefetch_latency_factor
        self.backing_reads = 0
        self.backing_bytes = 0
        # Uniform-block fast path: block size and device read times are
        # then pure constants per (source, demand/prefetch) pair.
        self._uniform_nbytes = None if callable(block_nbytes) else int(block_nbytes)
        self._read_time_cache: dict = {}
        #: When True, :meth:`fetch_many`/:meth:`prefetch_many` emit one
        #: aggregated trace event per (step, level, kind) for the
        #: hit/fetch/prefetch kinds (``count`` carries the multiplicity,
        #: byte/time totals are preserved) instead of one event per block.
        #: Evict/bypass/preload/render events are always per-event.
        self.aggregate_trace = False
        # Fault injection (None = fault-free: the resilient read path is
        # bypassed entirely, keeping fault-free runs byte-identical).
        self.fault_injector = None
        self.retry_policy = None
        self.breakers: dict = {}
        self._sim_now = 0.0  # accumulated charged io; drives breaker cooldowns
        self._fault_metrics: dict = {}
        # Eviction forensics (None = off; see set_forensics).  Strictly
        # observational: lineage lookups never change a fetch decision.
        self.forensics = None
        self._re_miss_counter = NULL_REGISTRY.counter("forensics_re_miss_total")
        self._premature_counter = NULL_REGISTRY.counter(
            "forensics_premature_evictions_total"
        )
        self.tracer = NULL_TRACER
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)
        self.registry = NULL_REGISTRY
        self.set_registry(registry if registry is not None else NULL_REGISTRY)

    def set_tracer(self, tracer) -> None:
        """Install ``tracer`` on the hierarchy and every cache level."""
        self.tracer = tracer
        for level in self.levels:
            level.tracer = tracer

    def set_registry(self, registry) -> None:
        """Bind the read-path metrics on ``registry`` (hierarchy + levels).

        Per serving source (each cache level plus the backing device) the
        hierarchy keeps a ``fetch_latency_seconds`` histogram split by
        demand/prefetch and a ``bytes_read_total`` counter that increments
        exactly where the :class:`~repro.storage.stats.CacheStats` byte
        ledger does — so registry counters and ``HierarchyStats`` totals
        are equal by construction (pinned by the test suite).
        """
        self.registry = registry
        for level in self.levels:
            level.set_registry(registry)
        source_names = [lv.name for lv in self.levels] + [self.backing.name]
        self._fetch_metrics = {
            name: (
                registry.histogram("fetch_latency_seconds", level=name, kind="demand"),
                registry.histogram("fetch_latency_seconds", level=name, kind="prefetch"),
                registry.counter("bytes_read_total", level=name),
                registry.counter("fetches_total", level=name, kind="demand"),
                registry.counter("fetches_total", level=name, kind="prefetch"),
            )
            for name in source_names
        }
        if self.fault_injector is not None:
            self._bind_fault_metrics()
        if self.forensics is not None:
            self._bind_forensics_metrics()

    def set_forensics(self, lineage) -> None:
        """Install an :class:`~repro.storage.forensics.EvictionLineage` (or None).

        With a lineage installed, every eviction on every level records its
        provenance (block, level, step, policy, tenant, victim-queue rank),
        and every *demand* miss consults the lineage: a block the ring
        remembers evicting produces a re-miss record, a ``re_miss`` trace
        event (when a tracer is attached) carrying the age and the evicting
        policy/tenant, and bumps the ``forensics_re_miss_total`` /
        ``forensics_premature_evictions_total`` counters.  Purely
        observational — enabled runs keep byte-identical ledgers.
        """
        self.forensics = lineage
        for level in self.levels:
            level.forensics = lineage
        if lineage is not None:
            self._bind_forensics_metrics()

    def _bind_forensics_metrics(self) -> None:
        self._re_miss_counter = self.registry.counter("forensics_re_miss_total")
        self._premature_counter = self.registry.counter(
            "forensics_premature_evictions_total"
        )

    def _note_re_miss(self, key: int, step: int) -> None:
        """Demand-miss forensics hook: lineage lookup + event + counters."""
        rec = self.forensics.on_miss(key, step)
        if rec is None:
            return
        if self.registry.enabled:
            self._re_miss_counter.inc()
            if rec.premature:
                self._premature_counter.inc()
        if self.tracer.enabled:
            self.tracer.record(
                "re_miss",
                step,
                rec.evicted_from,
                key,
                age_steps=rec.age_steps,
                origin=f"{rec.policy}:{rec.tenant}",
            )

    def set_fault_injector(
        self,
        injector,
        retry_policy=None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.25,
    ) -> None:
        """Install a :class:`~repro.faults.injector.FaultInjector` (or None).

        With an injector installed, every read — scalar and batched, demand
        and prefetch — routes through the resilient path: per-attempt fault
        draws, bounded retries with deterministic sim-clock exponential
        backoff (``retry_policy``, default :class:`~repro.faults.resilience.
        RetryPolicy`), a per-device circuit breaker that skips a sick level
        and falls back to the next slower one, and graceful drops when even
        the backing store fails.  Without one, the fault-free fast paths are
        byte-identical to a hierarchy that never heard of faults.

        Accounting under faults keeps the PR-1 invariants: every probed
        level records exactly one hit or miss per fetch, bytes are charged
        only at the source that actually served, and the trace's
        movement + ``fault`` + ``retry`` event times sum to the charged io
        exactly (``degraded`` events are informational and carry only the
        *extra* seconds above the nominal read cost).
        """
        # Imported lazily: repro.faults pulls in repro.volume, and eager
        # top-level imports would tie the two packages' init order together.
        from repro.faults.resilience import CircuitBreaker, RetryPolicy

        self.fault_injector = injector
        if injector is None:
            self.retry_policy = None
            self.breakers = {}
            self._fault_metrics = {}
            return
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        device_names = [dev.name for dev in self.level_devices] + [self.backing.name]
        self.breakers = {
            name: CircuitBreaker(breaker_threshold, breaker_cooldown_s)
            for name in device_names
        }
        self._bind_fault_metrics()

    def _bind_fault_metrics(self) -> None:
        """(Re)bind the per-device fault metrics on the current registry —
        called at injector install and again if a registry is installed
        later (drivers call ``set_registry`` at replay start)."""
        registry = self.registry
        device_names = [dev.name for dev in self.level_devices] + [self.backing.name]
        self._fault_metrics = {
            name: (
                registry.counter("fault_errors_total", device=name),
                registry.counter("fault_retries_total", device=name),
                registry.counter("fault_timeouts_total", device=name),
                registry.counter("fault_dropped_blocks_total", device=name),
                registry.histogram("fault_spike_seconds", device=name),
            )
            for name in device_names
        }

    def _record_fetch(self, source: str, prefetch: bool, nbytes: int, time_s: float) -> None:
        demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = self._fetch_metrics[source]
        if prefetch:
            prefetch_h.observe(time_s)
            prefetch_c.inc()
        else:
            demand_h.observe(time_s)
            demand_c.inc()
        bytes_c.inc(nbytes)

    # -- helpers -------------------------------------------------------------

    @property
    def fastest(self) -> CacheLevel:
        return self.levels[0]

    def block_nbytes(self, key: int) -> int:
        if callable(self._block_nbytes):
            return int(self._block_nbytes(key))
        return int(self._block_nbytes)

    def contains_fast(self, key: int) -> bool:
        """Is ``key`` already in the fastest level (no I/O needed)?"""
        return key in self.levels[0]

    # -- tenant partitioning ---------------------------------------------------

    def set_tenant_quotas(
        self, fractions: Optional[Mapping[str, float]]
    ) -> "dict[str, dict[str, int]]":
        """Partition every level between tenants (``None``/empty disables).

        ``fractions`` maps tenant label -> fraction of each level's
        capacity (fractions must sum to at most 1).  Each level gets
        ``max(1, floor(fraction * capacity))`` blocks per tenant, clamped
        so the quotas never exceed the level's capacity.  Returns the
        installed block quotas per level for the caller's ledger.
        """
        if not fractions:
            for level in self.levels:
                level.set_tenant_quotas(None)
            return {}
        total = sum(float(f) for f in fractions.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"tenant fractions sum to {total:.4f}, exceeding 1")
        installed: "dict[str, dict[str, int]]" = {}
        for level in self.levels:
            quotas = {
                name: max(1, int(float(frac) * level.capacity))
                for name, frac in fractions.items()
            }
            if sum(quotas.values()) > level.capacity:
                raise ValueError(
                    f"{level.name}: capacity {level.capacity} cannot hold one "
                    f"block per tenant for {len(quotas)} tenants"
                )
            level.set_tenant_quotas(quotas)
            installed[level.name] = quotas
        return installed

    def tenant_usage(self) -> "dict[str, dict[str, int]]":
        """Per-level resident block counts per tenant."""
        return {lv.name: lv.tenant_usage() for lv in self.levels if lv.tenant_quotas_enabled}

    def tenant_cross_evictions(self) -> int:
        """Total cross-tenant evictions across levels (0 under partitioning)."""
        return sum(lv.tenant_cross_evictions for lv in self.levels)

    # -- the read path ---------------------------------------------------------

    def fetch(
        self,
        key: int,
        step: int,
        prefetch: bool = False,
        min_free_step: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> FetchResult:
        """Bring ``key`` into the fastest level; return the charged time.

        Demand fetches (``prefetch=False``) update recency and the demand
        hit/miss counters; prefetch fetches update the prefetch counters and
        do not refresh recency on hits (a prediction must not perturb the
        replacement order of data the user actually touched).

        Byte accounting is uniform: every fetch charges the block's size
        exactly once at the serving source — ``bytes_read`` of the serving
        cache level (including fastest-level hits, whose bytes the renderer
        still reads) or ``backing_bytes`` for backing-store reads.  The
        ``bytes_moved`` extras reported by the drivers therefore equal
        ``backing_bytes + total_bytes_read``, and the trace's
        hit/fetch/prefetch events sum to the same total.

        ``tenant`` labels every admission this fetch performs for quota
        accounting (see :meth:`CacheLevel.set_tenant_quotas`); it is inert
        when no level has quotas installed.
        """
        if self.fault_injector is not None:
            return self._fetch_one_resilient(key, step, prefetch, min_free_step, tenant)
        return self._fetch_one(key, step, prefetch, min_free_step, None, None, tenant)

    def _read_time(self, source_idx: int, nbytes: int, latency_scale: float) -> float:
        """Device read time, memoised per (source, scale) for uniform blocks.

        ``source_idx`` indexes ``level_devices``; ``-1`` is the backing
        device.  Identical values to calling ``read_time`` directly.
        """
        if self._uniform_nbytes is None:
            dev = self.backing if source_idx < 0 else self.level_devices[source_idx]
            return dev.read_time(nbytes, latency_scale)
        cache_key = (source_idx, latency_scale)
        time_s = self._read_time_cache.get(cache_key)
        if time_s is None:
            dev = self.backing if source_idx < 0 else self.level_devices[source_idx]
            time_s = self._read_time_cache[cache_key] = dev.read_time(nbytes, latency_scale)
        return time_s

    def _fetch_one(
        self,
        key: int,
        step: int,
        prefetch: bool,
        min_free_step: Optional[int],
        agg: "Optional[dict]",
        rec: "Optional[dict]" = None,
        tenant: Optional[str] = None,
    ) -> FetchResult:
        """Scalar fetch; ``agg`` (batch mode) accumulates the movement
        event per (kind, source) instead of recording it immediately, and
        ``rec`` (uniform block size only) likewise accumulates the registry
        fetch metrics per (source, time) for a grouped flush."""
        nbytes = self._uniform_nbytes
        if nbytes is None:
            nbytes = self.block_nbytes(key)
        latency_scale = self.prefetch_latency_factor if prefetch else 1.0
        found_at = None
        for j, level in enumerate(self.levels):
            resident = level._resident
            if key < len(resident) and resident[key]:
                found_at = j
                break

        tracer = self.tracer
        if found_at == 0:
            level = self.levels[0]
            if prefetch:
                level.stats.prefetch_hits += 1
            else:
                level.stats.hits += 1
                level.touch(key, step)
            level.stats.bytes_read += nbytes
            time_s = self._read_time(0, nbytes, latency_scale)
            if rec is not None:
                k = (level.name, time_s)
                rec[k] = rec.get(k, 0) + 1
            elif self.registry.enabled:
                self._record_fetch(level.name, prefetch, nbytes, time_s)
            kind = "prefetch" if prefetch else "hit"
            if agg is not None:
                acc = agg.setdefault((kind, level.name), [0, 0, 0.0])
                acc[0] += 1
                acc[1] += nbytes
                acc[2] += time_s
            elif tracer.enabled:
                tracer.record(kind, step, level.name, key, nbytes, time_s)
            return FetchResult(key, time_s, level.name, fastest_hit=True)

        # Count misses at every level above the serving one.
        upper = self.levels if found_at is None else self.levels[:found_at]
        for level in upper:
            if prefetch:
                level.stats.prefetch_misses += 1
            else:
                level.stats.misses += 1
        if not prefetch and self.forensics is not None:
            self._note_re_miss(key, step)

        if found_at is None:
            source_name = self.backing.name
            time_s = self._read_time(-1, nbytes, latency_scale)
            self.backing_reads += 1
            self.backing_bytes += nbytes
        else:
            serving = self.levels[found_at]
            if prefetch:
                serving.stats.prefetch_hits += 1
            else:
                serving.stats.hits += 1
                serving.touch(key, step)
            serving.stats.bytes_read += nbytes
            source_name = serving.name
            time_s = self._read_time(found_at, nbytes, latency_scale)

        if rec is not None:
            k = (source_name, time_s)
            rec[k] = rec.get(k, 0) + 1
        elif self.registry.enabled:
            self._record_fetch(source_name, prefetch, nbytes, time_s)
        kind = "prefetch" if prefetch else "fetch"
        if agg is not None:
            acc = agg.setdefault((kind, source_name), [0, 0, 0.0])
            acc[0] += 1
            acc[1] += nbytes
            acc[2] += time_s
        elif tracer.enabled:
            tracer.record(kind, step, source_name, key, nbytes, time_s)
        # Copy into every faster level (inclusive hierarchy).
        for level in upper:
            level.admit(key, step, min_free_step=min_free_step, agg=agg, tenant=tenant)
        return FetchResult(key, time_s, source_name, fastest_hit=False)

    # -- the resilient read path (fault injection) -----------------------------

    def _fetch_one_resilient(
        self,
        key: int,
        step: int,
        prefetch: bool,
        min_free_step: Optional[int],
        tenant: Optional[str] = None,
    ) -> FetchResult:
        """Scalar fetch with fault draws, retries, breakers, and fallback.

        Candidate sources are probed fastest-first (every level holding the
        key, then the backing store).  Each candidate gets up to
        ``retry_policy.max_attempts`` reads; a failed attempt charges its
        cost (a timed-out one charges the deadline), emits a ``fault``
        trace event, and — if retries remain — a ``retry`` event carrying
        the deterministic backoff.  A candidate whose circuit breaker is
        open is skipped without a read (the backing store, the last
        resort, is never skipped).  When every candidate fails the block
        is *dropped*: the wasted time is still charged, but no bytes move
        and nothing is admitted.

        Accounting preserves the fault-free invariants: every level above
        the final serving source (all levels, on a drop) records exactly
        one miss, the serving source records the hit/bytes, and the
        movement + ``fault`` + ``retry`` event times sum to the charged
        ``time_s`` exactly.  ``degraded`` events are informational: they
        carry only the seconds *above* the nominal read cost, outside the
        time ledger.
        """
        inj = self.fault_injector
        policy = self.retry_policy
        tracer = self.tracer
        record = self.registry.enabled
        nbytes = self._uniform_nbytes
        if nbytes is None:
            nbytes = self.block_nbytes(key)
        latency_scale = self.prefetch_latency_factor if prefetch else 1.0

        candidates: List[int] = []
        for j, level in enumerate(self.levels):
            resident = level._resident
            if key < len(resident) and resident[key]:
                candidates.append(j)
        candidates.append(-1)  # the backing store always holds everything

        total_t = 0.0  # everything charged: attempts, backoffs, the serve
        serve_t = 0.0  # the successful attempt's cost alone
        served: Optional[int] = None
        for j in candidates:
            if j < 0:
                device = source_name = self.backing.name
            else:
                device = self.level_devices[j].name
                source_name = self.levels[j].name
            breaker = self.breakers.get(device)
            if j >= 0 and breaker is not None and not breaker.allows(self._sim_now + total_t):
                inj.record_breaker_skip(device)
                continue
            base_t = self._read_time(j, nbytes, latency_scale)
            metrics = self._fault_metrics.get(device) if record else None
            for attempt in range(policy.max_attempts):
                slow = inj.slowdown(device, step)
                spike = inj.spike_s(device, key, step, attempt)
                attempt_t = base_t * slow + spike
                if spike > 0.0 and metrics is not None:
                    metrics[4].observe(spike)
                timed_out = (
                    policy.read_timeout_s is not None and attempt_t > policy.read_timeout_s
                )
                if timed_out:
                    attempt_t = policy.read_timeout_s  # abandoned at the deadline
                    inj.record_timeout(device)
                    if metrics is not None:
                        metrics[2].inc()
                if timed_out or inj.fails(device, key, step, attempt):
                    if not timed_out and metrics is not None:
                        metrics[0].inc()
                    total_t += attempt_t
                    if tracer.enabled:
                        tracer.record("fault", step, source_name, key, 0, attempt_t)
                    if breaker is not None and breaker.record_failure(self._sim_now + total_t):
                        inj.record_breaker_open(device)
                    if attempt + 1 < policy.max_attempts:
                        back = policy.backoff_s(attempt)
                        total_t += back
                        inj.record_retry(device)
                        if metrics is not None:
                            metrics[1].inc()
                        if tracer.enabled:
                            tracer.record("retry", step, source_name, key, 0, back)
                    continue
                total_t += attempt_t
                serve_t = attempt_t
                if breaker is not None:
                    breaker.record_success(self._sim_now + total_t)
                if attempt_t > base_t:
                    inj.record_degraded(device)
                    if tracer.enabled:
                        tracer.record(
                            "degraded", step, source_name, key, 0, attempt_t - base_t
                        )
                served = j
                break
            if served is not None:
                break
        self._sim_now += total_t

        if served == 0:
            level = self.levels[0]
            if prefetch:
                level.stats.prefetch_hits += 1
            else:
                level.stats.hits += 1
                level.touch(key, step)
            level.stats.bytes_read += nbytes
            if record:
                self._record_fetch(level.name, prefetch, nbytes, serve_t)
            if tracer.enabled:
                tracer.record(
                    "prefetch" if prefetch else "hit", step, level.name, key, nbytes, serve_t
                )
            return FetchResult(key, total_t, level.name, fastest_hit=True)

        # One miss at every level above the serving source; a drop missed
        # everywhere.  A resident-but-unreadable level counts a miss too —
        # it was probed and failed to serve.
        upto = len(self.levels) if (served is None or served < 0) else served
        for level in self.levels[:upto]:
            if prefetch:
                level.stats.prefetch_misses += 1
            else:
                level.stats.misses += 1
        if not prefetch and self.forensics is not None:
            self._note_re_miss(key, step)

        if served is None:
            inj.record_drop(self.backing.name)
            if record:
                metrics = self._fault_metrics.get(self.backing.name)
                if metrics is not None:
                    metrics[3].inc()
            return FetchResult(key, total_t, DROPPED, fastest_hit=False, dropped=True)

        if served < 0:
            source_name = self.backing.name
            self.backing_reads += 1
            self.backing_bytes += nbytes
        else:
            serving = self.levels[served]
            if prefetch:
                serving.stats.prefetch_hits += 1
            else:
                serving.stats.hits += 1
                serving.touch(key, step)
            serving.stats.bytes_read += nbytes
            source_name = serving.name
        if record:
            self._record_fetch(source_name, prefetch, nbytes, serve_t)
        if tracer.enabled:
            tracer.record(
                "prefetch" if prefetch else "fetch", step, source_name, key, nbytes, serve_t
            )
        # Copy into every faster level that does not already hold the key;
        # transient faults do not evict, so a resident-but-unreadable copy
        # stays where it is.
        for level in self.levels[:upto]:
            resident = level._resident
            if not (key < len(resident) and resident[key]):
                level.admit(key, step, min_free_step=min_free_step, agg=None, tenant=tenant)
        return FetchResult(key, total_t, source_name, fastest_hit=False)

    def _fetch_many_resilient(
        self,
        ids: np.ndarray,
        step: int,
        prefetch: bool,
        min_free_step: Optional[int],
        tenant: Optional[str] = None,
    ) -> BatchFetchResult:
        """Batched fetch under fault injection: the scalar resilient path
        per id, with the same left-fold time accumulation as the fast
        path.  Fault draws are pure functions of (seed, device, key, step,
        attempt), so this is deterministic and engine-independent."""
        n = ids.size
        times = np.zeros(n, dtype=np.float64)
        n_fast = 0
        dropped: List[int] = []
        for p, key in enumerate(ids.tolist()):
            r = self._fetch_one_resilient(key, step, prefetch, min_free_step, tenant)
            times[p] = r.time_s
            if r.fastest_hit:
                n_fast += 1
            if r.dropped:
                dropped.append(key)
        total = float(np.add.accumulate(times)[-1]) if n > 1 else float(times[0])
        return BatchFetchResult(n, n_fast, total, len(dropped), tuple(dropped))

    def _prefetch_many_resilient(
        self,
        arr: np.ndarray,
        step: int,
        min_free_step: Optional[int],
        max_fetch: Optional[int],
        dedupe: bool,
        tenant: Optional[str] = None,
    ) -> "tuple[List[int], float]":
        """Prefetch under fault injection: the drivers' scalar loop
        semantics (cap before skip, optional dedupe, live fastest-level
        residency) over the resilient fetch.  A dropped prefetch still
        counts as issued — the prediction was acted on, it just failed."""
        issued: List[int] = []
        total_time = 0.0
        attempted = set() if dedupe else None
        fast = self.levels[0]
        for key in arr.tolist():
            if max_fetch is not None and len(issued) >= max_fetch:
                break
            if attempted is not None and key in attempted:
                continue
            resident = fast._resident
            if key < len(resident) and resident[key]:
                continue
            if attempted is not None:
                attempted.add(key)
            total_time += self._fetch_one_resilient(
                key, step, True, min_free_step, tenant
            ).time_s
            issued.append(key)
        return issued, total_time

    # -- the batched read path -------------------------------------------------

    def _serve_fast_hits(
        self,
        run: np.ndarray,
        step: int,
        prefetch: bool,
        latency_scale: float,
        agg: "Optional[dict]",
    ):
        """Bulk-process a verified run of fastest-level hits.

        Returns the per-block charged times — a scalar (uniform block
        size: every block charges the same) or an array; either broadcasts
        into the caller's ``times`` slice.  Values are identical to what a
        scalar fetch would charge.
        """
        fast = self.levels[0]
        n = run.size
        if prefetch:
            fast.stats.prefetch_hits += n
        else:
            fast.stats.hits += n
            fast.touch_many(run, step)
        nb = self._uniform_nbytes
        uniform = nb is not None
        if uniform:
            nbs = None
            time_s = self._read_time(0, nb, latency_scale)
            times = None
            total_nb = nb * n
        else:
            dev = self.level_devices[0]
            nbs = [int(self._block_nbytes(int(k))) for k in run]
            times = np.array([dev.read_time(b, latency_scale) for b in nbs])
            time_s = 0.0
            total_nb = sum(nbs)
        fast.stats.bytes_read += total_nb
        if self.registry.enabled:
            demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = self._fetch_metrics[fast.name]
            hist = prefetch_h if prefetch else demand_h
            if uniform:
                hist.observe_many(time_s, n)
            else:
                for t in times.tolist():
                    hist.observe(t)
            (prefetch_c if prefetch else demand_c).inc(n)
            bytes_c.inc(total_nb)
        kind = "prefetch" if prefetch else "hit"
        if agg is not None:
            acc = agg.setdefault((kind, fast.name), [0, 0, 0.0])
            acc[0] += n
            acc[1] += total_nb
            # Repeated scalar adds keep the accumulation order (and hence
            # the float result) identical to per-event aggregation.
            t = acc[2]
            if uniform:
                for _ in range(n):
                    t += time_s
            else:
                for v in times.tolist():
                    t += v
            acc[2] = t
        elif self.tracer.enabled:
            if uniform:
                for k_ in run.tolist():
                    self.tracer.record(kind, step, fast.name, k_, nb, time_s)
            else:
                for k_, nb_, t_ in zip(run.tolist(), nbs, times.tolist()):
                    self.tracer.record(kind, step, fast.name, k_, nb_, t_)
        return time_s if uniform else times

    def _fetch_miss_run(
        self,
        run: np.ndarray,
        step: int,
        prefetch: bool,
        min_free_step: Optional[int],
        agg: "Optional[dict]",
        latency_scale: float,
        times: np.ndarray,
        pos: int,
        tenant: Optional[str] = None,
    ) -> None:
        """Bulk-process a run of fastest-level misses (uniform block size).

        Bookkeeping that commutes across the run — miss/hit/byte counters,
        fetch histograms, backing totals, aggregated movement events — is
        grouped per serving source and flushed once after the run; recency
        touches and admissions, whose interleaving is observable through
        victim choice, stay per-key in scalar order.  The serving source
        is probed against *live* residency per key (an admission can evict
        a later run member from an intermediate level).  Requires unique
        ids (a fastest-level miss cannot turn resident mid-run) and an
        aggregated-or-disabled tracer (per-event emission order is not
        preserved).
        """
        levels = self.levels
        fast = levels[0]
        lowers = levels[1:]
        n_lowers = len(lowers)
        nb = self._uniform_nbytes
        n = run.size
        if prefetch:
            fast.stats.prefetch_misses += n
        else:
            fast.stats.misses += n
        t_src = [self._read_time(j + 1, nb, latency_scale) for j in range(n_lowers)]
        t_back = self._read_time(-1, nb, latency_scale)
        counts = [0] * (n_lowers + 1)  # keys per serving source; [-1] = backing
        # Admissions into the fastest level are order-independent of the
        # per-key work below (no fast-level probe or touch happens inside a
        # miss run), so they can go through the bulk path in one call.
        batch_fast = fast.policy.supports_victim_order
        note_re_miss = not prefetch and self.forensics is not None
        i = pos
        for key in run.tolist():
            if note_re_miss:
                self._note_re_miss(key, step)
            found = -1
            for j in range(n_lowers):
                if lowers[j]._resident[key]:
                    found = j
                    break
            if found < 0:
                counts[-1] += 1
                times[i] = t_back
                for level in lowers:
                    level.admit(key, step, min_free_step=min_free_step, agg=agg, tenant=tenant)
            else:
                counts[found] += 1
                if not prefetch:
                    lowers[found].touch(key, step)
                times[i] = t_src[found]
                for level in lowers[:found]:
                    level.admit(key, step, min_free_step=min_free_step, agg=agg, tenant=tenant)
            if not batch_fast:
                fast.admit(key, step, min_free_step=min_free_step, agg=agg, tenant=tenant)
            i += 1
        if batch_fast:
            fast.admit_many_absent(
                run, step, min_free_step=min_free_step, agg=agg, tenant=tenant
            )
        # -- grouped flushes (order-independent bookkeeping) -------------------
        n_back = counts[-1]
        if n_back:
            self.backing_reads += n_back
            self.backing_bytes += n_back * nb
        served_below = n_back  # keys served strictly deeper than lowers[j]
        for j in range(n_lowers - 1, -1, -1):
            lower = lowers[j]
            if served_below:  # each of those missed this level on the way down
                if prefetch:
                    lower.stats.prefetch_misses += served_below
                else:
                    lower.stats.misses += served_below
            c = counts[j]
            if c:
                if prefetch:
                    lower.stats.prefetch_hits += c
                else:
                    lower.stats.hits += c
                lower.stats.bytes_read += c * nb
            served_below += c
        kind = "prefetch" if prefetch else "fetch"
        record = self.registry.enabled
        for j in range(n_lowers + 1):
            c = counts[j]
            if not c:
                continue
            if j < n_lowers:
                source_name, t = lowers[j].name, t_src[j]
            else:
                source_name, t = self.backing.name, t_back
            if record:
                demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = (
                    self._fetch_metrics[source_name]
                )
                (prefetch_h if prefetch else demand_h).observe_many(t, c)
                (prefetch_c if prefetch else demand_c).inc(c)
                bytes_c.inc(c * nb)
            if agg is not None:
                acc = agg.setdefault((kind, source_name), [0, 0, 0.0])
                acc[0] += c
                acc[1] += c * nb
                # Repeated adds of the per-source constant reproduce the
                # per-event accumulation bit-for-bit.
                tt = acc[2]
                for _ in range(c):
                    tt += t
                acc[2] = tt

    def fetch_many(
        self,
        ids: np.ndarray,
        step: int,
        prefetch: bool = False,
        min_free_step: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> BatchFetchResult:
        """Fetch a whole id array; result-identical to scalar :meth:`fetch`.

        ``ids`` must be *unique* (a visible set is — ids come from
        ``np.flatnonzero``).  The fastest level's residency mask partitions
        the array into hit runs and misses in one vectorized pass; the mask
        is a *hint* — an admit during a miss can evict a later batch member
        from the fastest level (``min_free_step`` only protects blocks
        already touched this step), so every tentative hit run is
        re-verified against live residency and demoted to the scalar miss
        path where stale.  Uniqueness guarantees the opposite staleness
        (absent at partition time, resident later) cannot happen: only
        batch members are admitted, each at its own position.

        The total ``time_s`` is accumulated with a sequential left fold
        (``np.add.accumulate``), so it is bit-identical to the scalar
        loop's ``io += fetch(...).time_s``.
        """
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        n = ids.size
        if n == 0:
            return BatchFetchResult(0, 0, 0.0)
        if self.fault_injector is not None:
            return self._fetch_many_resilient(ids, step, prefetch, min_free_step, tenant)
        mx = int(ids.max())
        for level in self.levels:
            level.ensure_ids(mx)
        fast = self.levels[0]
        hint = fast._resident[ids]
        latency_scale = self.prefetch_latency_factor if prefetch else 1.0
        times = np.zeros(n, dtype=np.float64)
        agg: "Optional[dict]" = {} if (self.aggregate_trace and self.tracer.enabled) else None
        # Miss runs can be bulk-processed when block size is uniform and the
        # tracer is aggregated (or off): per-event emission order is the only
        # thing the grouped path does not preserve.
        batch_miss = self._uniform_nbytes is not None and (
            agg is not None or not self.tracer.enabled
        )
        rec: "Optional[dict]" = (
            {} if (self.registry.enabled and self._uniform_nbytes is not None) else None
        )
        n_fast_hits = 0
        # Hints can only go stale through a fastest-level eviction, so while
        # the eviction counter still reads its partition-time value every
        # hinted hit run is provably live and needs no re-verification.
        ev0 = fast.stats.evictions
        if n == 1:
            bounds = np.array([0, 1])
        else:
            change = np.flatnonzero(hint[1:] != hint[:-1])
            bounds = np.concatenate(([0], change + 1, [n]))
        for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            if hint[a]:
                if fast.stats.evictions == ev0:
                    times[a:b] = self._serve_fast_hits(
                        ids[a:b], step, prefetch, latency_scale, agg
                    )
                    n_fast_hits += b - a
                    continue
                pos = a
                seg = ids[a:b]
                while seg.size:
                    live = fast._resident[seg]
                    k = int(seg.size) if live.all() else int(np.argmin(live))
                    if k:
                        times[pos: pos + k] = self._serve_fast_hits(
                            seg[:k], step, prefetch, latency_scale, agg
                        )
                        n_fast_hits += k
                    if k < seg.size:  # stale hint: evicted mid-batch
                        times[pos + k] = self._fetch_one(
                            int(seg[k]), step, prefetch, min_free_step, agg, rec, tenant
                        ).time_s
                    seg = seg[k + 1:]
                    pos += k + 1
            elif batch_miss:
                self._fetch_miss_run(
                    ids[a:b], step, prefetch, min_free_step, agg, latency_scale, times, a,
                    tenant,
                )
            else:
                for p, key in enumerate(ids[a:b].tolist(), start=a):
                    result = self._fetch_one(
                        key, step, prefetch, min_free_step, agg, rec, tenant
                    )
                    times[p] = result.time_s
                    if result.fastest_hit:  # unreachable for unique ids; stay exact anyway
                        n_fast_hits += 1
        total = float(np.add.accumulate(times)[-1]) if n > 1 else float(times[0])
        self._flush_agg(agg, step)
        self._flush_rec(rec, prefetch)
        return BatchFetchResult(n, n_fast_hits, total)

    def prefetch_many(
        self,
        candidates,
        step: int,
        min_free_step: Optional[int] = None,
        max_fetch: Optional[int] = None,
        dedupe: bool = False,
        tenant: Optional[str] = None,
    ) -> "tuple[List[int], float]":
        """Issue prefetches for ``candidates`` in order; returns
        ``(issued ids, total prefetch time)``.

        Replicates the drivers' scalar prefetch loop exactly: candidates
        already resident in the fastest level are skipped against *live*
        residency (an earlier prefetch in the same batch may have evicted
        a later candidate), at most ``max_fetch`` fetches are issued
        (None = unlimited; the cap check precedes the skip checks, as in
        the scalar loops), and ``dedupe=True`` fetches each candidate id
        at most once (the attempted-set semantics of
        ``run_with_prefetcher`` — note a duplicate of a *skipped* resident
        candidate may still be fetched later if it was evicted in between).

        Vectorization mirrors :meth:`fetch_many`: the initial residency
        mask partitions the candidates; runs of hinted-resident candidates
        are skipped wholesale once a fancy-indexed probe confirms they are
        all still resident (skips mutate nothing, so skipping past the
        cap is unobservable — the cap only gates *fetches*); stale
        entries and hinted-miss candidates go through the scalar per-block
        checks.  A hinted-miss candidate can still turn resident mid-batch
        when the candidate list has duplicates (the first copy was
        fetched), so the live ``in fast`` probe stays.
        """
        arr = np.ascontiguousarray(candidates, dtype=np.int64)
        n = arr.size
        issued: List[int] = []
        total_time = 0.0
        if n == 0:
            return issued, total_time
        if self.fault_injector is not None:
            return self._prefetch_many_resilient(
                arr, step, min_free_step, max_fetch, dedupe, tenant
            )
        mx = int(arr.max())
        for level in self.levels:
            level.ensure_ids(mx)
        fast = self.levels[0]
        hint = fast._resident[arr]
        latency_scale = self.prefetch_latency_factor
        agg: "Optional[dict]" = {} if (self.aggregate_trace and self.tracer.enabled) else None
        rec: "Optional[dict]" = (
            {} if (self.registry.enabled and self._uniform_nbytes is not None) else None
        )
        attempted = set() if dedupe else None
        if n == 1:
            bounds = [0, 1]
        else:
            change = np.flatnonzero(hint[1:] != hint[:-1])
            bounds = np.concatenate(([0], change + 1, [n])).tolist()
        # With unique candidates a hinted miss can never turn resident
        # mid-batch (only batch members are admitted), so whole miss runs
        # can go through the bulk path — same conditions as fetch_many,
        # and dedupe/live-residency checks trivially pass.  Uniqueness is
        # one sort, computed lazily the first time a run is worth batching.
        unique: Optional[bool] = True if n == 1 else None
        batch_ok = self._uniform_nbytes is not None and (
            agg is not None or not self.tracer.enabled
        )
        capped = False
        # As in fetch_many: hints only go stale via a fastest-level eviction.
        ev0 = fast.stats.evictions
        for a, b in zip(bounds[:-1], bounds[1:]):
            if capped:
                break
            if hint[a]:
                if fast.stats.evictions == ev0:
                    continue  # whole run provably still resident: skip it
                seg = arr[a:b]
                while seg.size:
                    live = fast._resident[seg]
                    k = int(seg.size) if live.all() else int(np.argmin(live))
                    # seg[:k] still resident: skipped, no state change.
                    if k == seg.size:
                        break
                    key = int(seg[k])  # stale hint: evicted mid-batch
                    if max_fetch is not None and len(issued) >= max_fetch:
                        capped = True
                        break
                    if attempted is None or key not in attempted:
                        if attempted is not None:
                            attempted.add(key)
                        total_time += self._fetch_one(
                            key, step, True, min_free_step, agg, rec, tenant
                        ).time_s
                        issued.append(key)
                    seg = seg[k + 1:]
            elif batch_ok and b - a >= 4 and (
                unique
                if unique is not None
                else (unique := bool(np.unique(arr).size == n))
            ):
                run = arr[a:b]
                if max_fetch is not None:
                    left = max_fetch - len(issued)
                    if left <= 0:
                        capped = True
                        break
                    if left < run.size:
                        run = run[:left]  # the cap cut; next check trips it
                tbuf = np.empty(run.size, dtype=np.float64)
                self._fetch_miss_run(
                    run, step, True, min_free_step, agg, latency_scale, tbuf, 0, tenant
                )
                # Scalar-order left fold, bit-identical to `total_time +=`.
                for t in tbuf.tolist():
                    total_time += t
                issued.extend(run.tolist())
            else:
                # Live probe via the residency array directly; binding it is
                # safe because every candidate id is covered by the upfront
                # ensure_ids, so no admit in this batch can regrow it.
                fast_resident = fast._resident
                for key in arr[a:b].tolist():
                    if max_fetch is not None and len(issued) >= max_fetch:
                        capped = True
                        break
                    if attempted is not None and key in attempted:
                        continue
                    if fast_resident[key]:
                        continue
                    if attempted is not None:
                        attempted.add(key)
                    total_time += self._fetch_one(
                        key, step, True, min_free_step, agg, rec, tenant
                    ).time_s
                    issued.append(key)
        self._flush_agg(agg, step)
        self._flush_rec(rec, True)
        return issued, total_time

    def _flush_agg(self, agg: "Optional[dict]", step: int) -> None:
        """Emit one aggregated trace event per accumulated (kind, source)."""
        if agg:
            for (kind, src), (cnt, nb, t) in agg.items():
                self.tracer.record(kind, step, src, -1, nb, t, count=cnt)

    def _flush_rec(self, rec: "Optional[dict]", prefetch: bool) -> None:
        """Flush grouped registry fetch metrics (uniform block size only)."""
        if not rec:
            return
        nb = self._uniform_nbytes
        for (source_name, t), c in rec.items():
            demand_h, prefetch_h, bytes_c, demand_c, prefetch_c = (
                self._fetch_metrics[source_name]
            )
            (prefetch_h if prefetch else demand_h).observe_many(t, c)
            (prefetch_c if prefetch else demand_c).inc(c)
            bytes_c.inc(c * nb)

    # -- preload (Step 2 / Alg. 1 line 7) -----------------------------------------

    def preload(self, keys_by_priority: Sequence[int]) -> "dict[str, int]":
        """Fill every level from the head of a priority-ordered key list.

        Inclusive placement: the top ``capacity`` keys of each level go into
        it, so the fastest level holds the most important blocks and slower
        levels hold supersets.  Returns blocks placed per level.
        """
        placed = {}
        aggregate = self.aggregate_trace and self.tracer.enabled
        for level in self.levels:
            placed[level.name] = level.preload(keys_by_priority, aggregate_trace=aggregate)
        return placed

    # -- stats & lifecycle -------------------------------------------------------

    def stats(self) -> HierarchyStats:
        return HierarchyStats(levels={lv.name: lv.stats for lv in self.levels})

    def reset_stats(self) -> None:
        for level in self.levels:
            level.stats.reset()
        self.backing_reads = 0
        self.backing_bytes = 0

    def clear(self) -> None:
        """Empty every level (stats preserved)."""
        for level in self.levels:
            level.clear()

    def check_invariants(self) -> None:
        for level in self.levels:
            level.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lv = ", ".join(f"{lvl.name}:{lvl.capacity}" for lvl in self.levels)
        return f"MemoryHierarchy([{lv}] over {self.backing.name})"


def make_standard_hierarchy(
    n_blocks: int,
    block_nbytes: BlockSize,
    cache_ratio: float = 0.5,
    policy: str = "lru",
    devices: Sequence[StorageDevice] = (DRAM, SSD),
    backing: StorageDevice = HDD,
    tracer=None,
    registry=None,
) -> MemoryHierarchy:
    """The paper's DRAM/SSD-over-HDD setup for a dataset of ``n_blocks``.

    ``cache_ratio`` is the size ratio between two successive memory levels
    (§V-A: 0.5 → SSD holds 50 % of the dataset, DRAM 25 %; Fig. 13(b) uses
    0.7).  Each level gets its own fresh ``policy`` instance.
    """
    if not 0 < cache_ratio <= 1:
        raise ValueError(f"cache_ratio must be in (0, 1], got {cache_ratio}")
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
    levels: List[CacheLevel] = []
    frac = 1.0
    for device in reversed(devices):  # slowest cache level first for sizing
        frac *= cache_ratio
        capacity = max(1, int(round(n_blocks * frac)))
        levels.append(CacheLevel(device.name, capacity, make_policy(policy), n_blocks=n_blocks))
    levels.reverse()  # fastest first
    return MemoryHierarchy(
        levels, list(devices), backing, block_nbytes, tracer=tracer, registry=registry
    )
