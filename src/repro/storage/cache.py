"""One cache level: residency, protected-aware admission, statistics.

The level owns *which* blocks are resident and *when* each was last used;
the plugged-in :class:`~repro.policies.base.ReplacementPolicy` only ranks
eviction candidates.  Algorithm 1's eviction constraint — a victim's
last-used time must be ``< i`` (lines 16 and 22) — is realised by the
``min_free_step`` argument of :meth:`admit`: blocks touched at or after
that step are not evictable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.obs.metrics import NULL_REGISTRY
from repro.policies.base import ReplacementPolicy
from repro.storage.stats import CacheStats
from repro.trace.tracer import NULL_TRACER
from repro.utils.validation import check_positive

__all__ = ["CacheLevel"]

_NEVER_USED = -1  # last_used for preloaded blocks (Alg. 1 line 5: time <- -1)


class CacheLevel:
    """A fixed-capacity cache of block ids with a pluggable policy."""

    def __init__(
        self,
        name: str,
        capacity_blocks: int,
        policy: ReplacementPolicy,
        tracer=NULL_TRACER,
    ) -> None:
        self.name = str(name)
        self.capacity = int(check_positive("capacity_blocks", capacity_blocks))
        self.policy = policy
        policy.set_capacity(self.capacity)
        self._last_used: Dict[int, int] = {}
        self.stats = CacheStats()
        self.tracer = tracer
        self.registry = NULL_REGISTRY
        self._occupancy = NULL_REGISTRY.gauge("cache_occupancy_blocks")
        self._evictions = NULL_REGISTRY.counter("cache_evictions_total")
        self._bypasses = NULL_REGISTRY.counter("cache_bypasses_total")

    def set_registry(self, registry) -> None:
        """Bind this level's metrics on ``registry`` (occupancy, churn)."""
        self.registry = registry
        self._occupancy = registry.gauge("cache_occupancy_blocks", level=self.name)
        self._evictions = registry.counter("cache_evictions_total", level=self.name)
        self._bypasses = registry.counter("cache_bypasses_total", level=self.name)
        if registry.enabled:
            self._occupancy.set(len(self._last_used))

    # -- queries -------------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return key in self._last_used

    def __len__(self) -> int:
        return len(self._last_used)

    @property
    def is_full(self) -> bool:
        return len(self._last_used) >= self.capacity

    def resident_ids(self) -> Iterable[int]:
        """Snapshot iterator over resident block ids."""
        return iter(tuple(self._last_used))

    def last_used(self, key: int) -> int:
        """Step at which ``key`` was last touched (−1 for untouched preloads)."""
        return self._last_used[key]

    # -- mutation --------------------------------------------------------------

    def touch(self, key: int, step: int) -> None:
        """Record a hit on a resident ``key`` at ``step``."""
        if key not in self._last_used:
            raise KeyError(f"{self.name}: touch of non-resident block {key}")
        self._last_used[key] = step
        self.policy.on_hit(key, step)

    def admit(
        self,
        key: int,
        step: int,
        min_free_step: Optional[int] = None,
    ) -> bool:
        """Make ``key`` resident, evicting if full; returns False on bypass.

        ``min_free_step`` is Algorithm 1's constraint: only blocks with
        ``last_used < min_free_step`` are eviction candidates.  When the
        cache is full and no candidate exists, the insert is *bypassed*
        (the caller still gets the data, it just is not cached) — this is
        the safe degradation when the working set exceeds capacity.
        """
        if key in self._last_used:
            raise KeyError(f"{self.name}: block {key} already resident")
        while len(self._last_used) >= self.capacity:
            victim = self.policy.choose_victim(self._evictable_predicate(min_free_step))
            if victim is None:
                self.stats.bypasses += 1
                if self.registry.enabled:
                    self._bypasses.inc()
                if self.tracer.enabled:
                    self.tracer.record("bypass", step, self.name, key)
                return False
            self.evict(victim, step=step)
        self._last_used[key] = step
        self.policy.on_insert(key, step)
        self.stats.inserts += 1
        if self.registry.enabled:
            self._occupancy.set(len(self._last_used))
        return True

    def _evictable_predicate(self, min_free_step: Optional[int]):
        if min_free_step is None:
            return lambda key: True
        last_used = self._last_used
        return lambda key: last_used[key] < min_free_step

    def evict(self, key: int, step: Optional[int] = None) -> None:
        """Remove a resident ``key`` (policy notified).

        ``step`` is only used for tracing: the replay step whose admission
        forced this eviction (``None`` for evictions outside a replay).
        """
        if key not in self._last_used:
            raise KeyError(f"{self.name}: evict of non-resident block {key}")
        del self._last_used[key]
        self.policy.on_evict(key)
        self.stats.evictions += 1
        if self.registry.enabled:
            self._evictions.inc()
            self._occupancy.set(len(self._last_used))
        if self.tracer.enabled:
            self.tracer.record("evict", -1 if step is None else step, self.name, key)

    def preload(self, keys: Iterable[int]) -> int:
        """Fill the cache with ``keys`` (up to capacity) before a run.

        Used for Step 2's importance preload (Alg. 1 line 7).  Preloaded
        blocks get ``last_used = -1`` so any later step may evict them.
        Counts toward ``stats.inserts`` like any other placement, so the
        insert/eviction ledger stays balanced.  Returns how many were
        actually placed.
        """
        placed = 0
        for key in keys:
            if len(self._last_used) >= self.capacity:
                break
            if key in self._last_used:
                continue
            self._last_used[key] = _NEVER_USED
            self.policy.on_insert(key, _NEVER_USED)
            self.stats.inserts += 1
            if self.tracer.enabled:
                self.tracer.record("preload", _NEVER_USED, self.name, key)
            placed += 1
        if self.registry.enabled:
            self._occupancy.set(len(self._last_used))
        return placed

    def clear(self) -> None:
        """Drop all residents and reset policy state (stats preserved)."""
        self._last_used.clear()
        self.policy.reset()
        if self.registry.enabled:
            self._occupancy.set(0)

    def check_invariants(self) -> None:
        """Raise if residency and policy bookkeeping have diverged."""
        if len(self._last_used) > self.capacity:
            raise AssertionError(
                f"{self.name}: {len(self._last_used)} residents exceed capacity {self.capacity}"
            )
        if len(self.policy) != len(self._last_used):
            raise AssertionError(
                f"{self.name}: policy tracks {len(self.policy)} keys, cache has {len(self._last_used)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheLevel(name={self.name!r}, capacity={self.capacity}, "
            f"resident={len(self._last_used)}, policy={self.policy.name!r})"
        )
