"""One cache level: residency, protected-aware admission, statistics.

The level owns *which* blocks are resident and *when* each was last used;
the plugged-in :class:`~repro.policies.base.ReplacementPolicy` only ranks
eviction candidates.  Algorithm 1's eviction constraint — a victim's
last-used time must be ``< i`` (lines 16 and 22) — is realised by the
``min_free_step`` argument of :meth:`admit`: blocks touched at or after
that step are not evictable.

Residency is a pair of dense arrays indexed by block id — ``_resident``
(bool) and ``_last_used`` (int64) — grown by doubling as larger ids show
up.  Membership is one array load, whole visible sets partition with one
fancy-indexed read (:meth:`contains_many`), and the evictable-candidate
set under ``min_free_step`` is a single vectorized compare, which policies
that implement ``choose_victim_masked`` consume directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.obs.metrics import NULL_REGISTRY
from repro.policies.base import ReplacementPolicy
from repro.storage.stats import CacheStats
from repro.trace.tracer import NULL_TRACER
from repro.utils.validation import check_positive

__all__ = ["CacheLevel"]

_NEVER_USED = -1  # last_used for preloaded blocks (Alg. 1 line 5: time <- -1)


class CacheLevel:
    """A fixed-capacity cache of block ids with a pluggable policy."""

    def __init__(
        self,
        name: str,
        capacity_blocks: int,
        policy: ReplacementPolicy,
        tracer=NULL_TRACER,
        n_blocks: Optional[int] = None,
    ) -> None:
        self.name = str(name)
        self.capacity = int(check_positive("capacity_blocks", capacity_blocks))
        self.policy = policy
        policy.set_capacity(self.capacity)
        size = max(64, int(n_blocks)) if n_blocks else 64
        self._resident = np.zeros(size, dtype=bool)
        self._last_used = np.full(size, _NEVER_USED, dtype=np.int64)
        self._n_resident = 0
        # Amortised victim selection: when the policy supports victim_order,
        # the full eviction order for one (step, min_free_step) epoch is
        # computed once and consumed entry-by-entry, with entries validated
        # against live state on pop (see _pop_victim).
        self._vq: Optional[np.ndarray] = None  # victim queue, consumed via cursor
        self._vq_pos = 0
        self._vq_epoch: Optional[tuple] = None
        self._vq_token = 0  # policy order token (unconstrained-queue mode)
        self.stats = CacheStats()
        self.tracer = tracer
        self.registry = NULL_REGISTRY
        # Eviction forensics (opt-in): an EvictionLineage installed via
        # MemoryHierarchy.set_forensics.  Purely observational — never
        # changes a decision, so enabled runs stay byte-identical.
        self.forensics = None
        self._occupancy = NULL_REGISTRY.gauge("cache_occupancy_blocks")
        self._evictions = NULL_REGISTRY.counter("cache_evictions_total")
        self._bypasses = NULL_REGISTRY.counter("cache_bypasses_total")
        self._cross_evictions = NULL_REGISTRY.counter("cache_tenant_cross_evictions_total")
        # Tenant partitioning (disabled unless set_tenant_quotas is called):
        # _owner maps block id -> tenant index (-1 = unowned), _tenant_used /
        # _tenant_quota are per-tenant residency counters and caps.
        self._tenant_index: Optional[dict] = None
        self._tenant_names: tuple = ()
        self._tenant_quota: Optional[np.ndarray] = None
        self._tenant_used: Optional[np.ndarray] = None
        self._owner: Optional[np.ndarray] = None
        self.tenant_cross_evictions = 0

    def set_registry(self, registry) -> None:
        """Bind this level's metrics on ``registry`` (occupancy, churn)."""
        self.registry = registry
        self._occupancy = registry.gauge("cache_occupancy_blocks", level=self.name)
        self._evictions = registry.counter("cache_evictions_total", level=self.name)
        self._bypasses = registry.counter("cache_bypasses_total", level=self.name)
        self._cross_evictions = registry.counter(
            "cache_tenant_cross_evictions_total", level=self.name
        )
        if registry.enabled:
            self._occupancy.set(self._n_resident)

    def ensure_ids(self, max_key: int) -> None:
        """Grow the residency arrays to cover ids up to ``max_key``."""
        if max_key >= len(self._resident):
            size = max(len(self._resident) * 2, int(max_key) + 1)
            resident = np.zeros(size, dtype=bool)
            resident[: len(self._resident)] = self._resident
            last_used = np.full(size, _NEVER_USED, dtype=np.int64)
            last_used[: len(self._last_used)] = self._last_used
            if self._owner is not None:
                owner = np.full(size, -1, dtype=np.int32)
                owner[: len(self._owner)] = self._owner
                self._owner = owner
            self._resident = resident
            self._last_used = last_used

    # -- tenant partitioning ---------------------------------------------------

    def set_tenant_quotas(self, quotas: Optional[Mapping[str, int]]) -> None:
        """Partition this level between tenants (``None``/empty disables).

        ``quotas`` maps tenant label -> maximum resident blocks *owned* by
        that tenant.  A tenant-labelled :meth:`admit` never exceeds its
        quota (at quota it evicts one of its own blocks first) and never
        evicts another tenant's block, so one hot session cannot push a
        neighbour below its partition.  Unlabelled admits (``tenant=None``)
        stay unowned and follow the legacy policy-global path; unowned
        residents are fair game for any tenant under its quota.

        Quotas must each be >= 1 and sum to at most ``capacity``.  Blocks
        already resident when quotas are installed stay unowned.
        """
        if not quotas:
            self._tenant_index = None
            self._tenant_names = ()
            self._tenant_quota = None
            self._tenant_used = None
            self._owner = None
            return
        names = tuple(quotas)
        caps = []
        for name in names:
            cap = int(quotas[name])
            if cap < 1:
                raise ValueError(f"{self.name}: quota for {name!r} must be >= 1, got {cap}")
            caps.append(cap)
        if sum(caps) > self.capacity:
            raise ValueError(
                f"{self.name}: tenant quotas sum to {sum(caps)}, "
                f"exceeding capacity {self.capacity}"
            )
        self._tenant_index = {name: i for i, name in enumerate(names)}
        self._tenant_names = names
        self._tenant_quota = np.asarray(caps, dtype=np.int64)
        self._tenant_used = np.zeros(len(names), dtype=np.int64)
        self._owner = np.full(len(self._resident), -1, dtype=np.int32)
        self.tenant_cross_evictions = 0

    @property
    def tenant_quotas_enabled(self) -> bool:
        return self._tenant_index is not None

    def tenant_usage(self) -> dict:
        """Resident block counts per tenant (empty when quotas disabled)."""
        if self._tenant_index is None:
            return {}
        used = self._tenant_used.tolist()
        return {name: used[i] for i, name in enumerate(self._tenant_names)}

    def tenant_quota(self, tenant: str) -> int:
        """The installed quota for ``tenant`` (KeyError when unknown)."""
        if self._tenant_index is None:
            raise KeyError(f"{self.name}: tenant quotas are not enabled")
        return int(self._tenant_quota[self._tenant_index[tenant]])

    def _tenant_id(self, tenant: Optional[str]) -> int:
        """Resolve a tenant label to its index (-1 = untracked)."""
        if tenant is None or self._tenant_index is None:
            return -1
        try:
            return self._tenant_index[tenant]
        except KeyError:
            raise KeyError(f"{self.name}: unknown tenant {tenant!r}") from None

    # -- queries -------------------------------------------------------------

    def __contains__(self, key: int) -> bool:
        return key < len(self._resident) and bool(self._resident[key])

    def __len__(self) -> int:
        return self._n_resident

    @property
    def is_full(self) -> bool:
        return self._n_resident >= self.capacity

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Boolean residency mask for an id array (grows arrays as needed)."""
        if keys.size:
            self.ensure_ids(int(keys.max()))
        return self._resident[keys]

    def resident_ids(self) -> Iterable[int]:
        """Snapshot iterator over resident block ids (ascending)."""
        return iter(np.flatnonzero(self._resident).tolist())

    def last_used(self, key: int) -> int:
        """Step at which ``key`` was last touched (−1 for untouched preloads)."""
        if key not in self:
            raise KeyError(key)
        return int(self._last_used[key])

    def evictable_mask(self, min_free_step: Optional[int]) -> np.ndarray:
        """Residents whose ``last_used < min_free_step`` (all, when None)."""
        if min_free_step is None:
            return self._resident
        return self._resident & (self._last_used < min_free_step)

    # -- mutation --------------------------------------------------------------

    def touch(self, key: int, step: int) -> None:
        """Record a hit on a resident ``key`` at ``step``."""
        resident = self._resident
        if key >= len(resident) or not resident[key]:
            raise KeyError(f"{self.name}: touch of non-resident block {key}")
        epoch = self._vq_epoch
        if epoch is not None and epoch[1] is not None and step < epoch[1]:
            self._vq_epoch = None  # touch keeps the key evictable: order stale
        self._last_used[key] = step
        self.policy.on_hit(key, step)

    def touch_many(self, keys: np.ndarray, step: int) -> None:
        """Record hits on an array of resident keys at ``step``."""
        epoch = self._vq_epoch
        if epoch is not None and epoch[1] is not None and step < epoch[1]:
            self._vq_epoch = None
        self._last_used[keys] = step
        self.policy.on_hit_many(keys, step)

    def admit(
        self,
        key: int,
        step: int,
        min_free_step: Optional[int] = None,
        agg: Optional[dict] = None,
        tenant: Optional[str] = None,
    ) -> bool:
        """Make ``key`` resident, evicting if full; returns False on bypass.

        ``min_free_step`` is Algorithm 1's constraint: only blocks with
        ``last_used < min_free_step`` are eviction candidates.  When the
        cache is full and no candidate exists, the insert is *bypassed*
        (the caller still gets the data, it just is not cached) — this is
        the safe degradation when the working set exceeds capacity.

        ``agg`` is the batched engine's trace-aggregation accumulator:
        when given, evict/bypass events are counted into it per
        (kind, level) instead of recorded individually.

        ``tenant`` labels the admission for quota accounting when
        :meth:`set_tenant_quotas` is active: the block is owned by the
        tenant, victims are restricted to the tenant's own blocks (at
        quota) or own-plus-unowned blocks (under quota), and the insert
        bypasses when no such victim exists.  With quotas disabled, or
        ``tenant=None``, the legacy path is taken unchanged.
        """
        tid = self._tenant_id(tenant)
        if tid >= 0:
            return self._admit_tenant(key, step, tid, min_free_step, agg)
        self.ensure_ids(key)
        if self._resident[key]:
            raise KeyError(f"{self.name}: block {key} already resident")
        if self._n_resident >= self.capacity:
            # One victim frees one slot, but loop for safety with
            # pathological policies.
            use_queue = self.policy.supports_victim_order and (
                min_free_step is None or min_free_step <= step
            )
            while self._n_resident >= self.capacity:
                vrank = -1
                if use_queue:
                    victim = self._pop_victim(step, min_free_step)
                    if victim is not None:
                        vrank = self._vq_pos - 1
                elif self.policy.supports_masked_victim:
                    victim = self.policy.choose_victim_masked(
                        self.evictable_mask(min_free_step)
                    )
                else:
                    victim = self.policy.choose_victim(
                        self._evictable_predicate(min_free_step)
                    )
                if victim is None:
                    self.stats.bypasses += 1
                    if self.registry.enabled:
                        self._bypasses.inc()
                    if agg is not None:
                        acc = agg.setdefault(("bypass", self.name), [0, 0, 0.0])
                        acc[0] += 1
                    elif self.tracer.enabled:
                        self.tracer.record("bypass", step, self.name, key)
                    return False
                self.evict(victim, step=step, agg=agg, rank=vrank)
        self._resident[key] = True
        self._last_used[key] = step
        self._n_resident += 1
        self.policy.on_insert(key, step)
        epoch = self._vq_epoch
        if epoch is not None and epoch[1] is not None and step < epoch[1]:
            self._vq_epoch = None  # insert is immediately evictable: not queued
        self.stats.inserts += 1
        if self.registry.enabled:
            self._occupancy.set(self._n_resident)
        return True

    def _admit_tenant(
        self,
        key: int,
        step: int,
        tid: int,
        min_free_step: Optional[int],
        agg: Optional[dict],
    ) -> bool:
        """Quota-constrained admission for tenant ``tid``.

        Victim selection goes through ``choose_victim_masked`` (or the
        predicate fallback) on an owner-restricted candidate mask rather
        than the amortised victim queue: the queue is policy-global and
        cannot express per-tenant constraints.  Evicting here only
        *shrinks* the global candidate set, which scalar queue pops
        re-validate against live state, so interleaved untenanted admits
        stay correct.
        """
        self.ensure_ids(key)
        if self._resident[key]:
            raise KeyError(f"{self.name}: block {key} already resident")
        owner = self._owner
        used = self._tenant_used
        quota = int(self._tenant_quota[tid])
        while self._n_resident >= self.capacity or used[tid] >= quota:
            at_quota = used[tid] >= quota
            if self.policy.supports_masked_victim:
                allowed = self.evictable_mask(min_free_step) & (owner == tid)
                if not at_quota:
                    allowed |= self.evictable_mask(min_free_step) & (owner == -1)
                victim = self.policy.choose_victim_masked(allowed)
            else:
                base = self._evictable_predicate(min_free_step)
                if at_quota:
                    def pred(k, base=base, owner=owner):
                        return owner[k] == tid and base(k)
                else:
                    def pred(k, base=base, owner=owner):
                        return owner[k] in (tid, -1) and base(k)
                victim = self.policy.choose_victim(pred)
            if victim is None:
                self.stats.bypasses += 1
                if self.registry.enabled:
                    self._bypasses.inc()
                if agg is not None:
                    acc = agg.setdefault(("bypass", self.name), [0, 0, 0.0])
                    acc[0] += 1
                elif self.tracer.enabled:
                    self.tracer.record("bypass", step, self.name, key)
                return False
            self.evict(victim, step=step, agg=agg, by=tid)
        self._resident[key] = True
        self._last_used[key] = step
        self._n_resident += 1
        owner[key] = tid
        used[tid] += 1
        self.policy.on_insert(key, step)
        epoch = self._vq_epoch
        if epoch is not None and epoch[1] is not None and step < epoch[1]:
            self._vq_epoch = None
        self.stats.inserts += 1
        if self.registry.enabled:
            self._occupancy.set(self._n_resident)
        return True

    def _pop_victim(self, step: int, min_free_step: Optional[int]) -> Optional[int]:
        """Next victim from the amortised eviction queue.

        The policy's full eviction order over the *current* candidates is
        computed once and consumed entry-by-entry; each popped entry is
        re-validated against live state, so the result is exactly what a
        fresh ``choose_victim_masked`` would return.

        With a ``min_free_step`` constraint the queue lives for one
        ``(step, min_free_step)`` epoch: later accesses within it can only
        *shrink* the candidate set (a touch sets ``last_used = step >=
        min_free_step``; an insert is never an immediate candidate), and
        mutations that could grow or reorder it invalidate the epoch at
        the mutation site.  Validation is ``resident & last_used <
        min_free_step``.

        Unconstrained (``min_free_step is None``), candidates never leave
        the set, but a touch *reorders* — it makes the key more recent
        than every queue entry (policy token contract), so the first entry
        that still holds its rank is the global victim.  The queue then
        survives across steps and is rebuilt only when exhausted.
        """
        policy = self.policy
        if min_free_step is None:
            while True:
                if self._vq_epoch != ("*", None):
                    order = policy.victim_order(self._resident)
                    if order.size == 0:
                        return None
                    self._vq = order
                    self._vq_pos = 0
                    self._vq_token = policy.victim_order_token()
                    self._vq_epoch = ("*", None)
                queue = self._vq
                pos = self._vq_pos
                end = len(queue)
                token = self._vq_token
                while pos < end:
                    key = int(queue[pos])
                    pos += 1
                    if policy.victim_still_ordered(key, token):
                        self._vq_pos = pos
                        return key
                self._vq_pos = pos
                self._vq_epoch = None  # every entry moved since build: rebuild
        epoch = (step, min_free_step)
        if self._vq_epoch != epoch:
            self._vq = policy.victim_order(self.evictable_mask(min_free_step))
            self._vq_pos = 0
            self._vq_epoch = epoch
        queue = self._vq
        pos = self._vq_pos
        end = len(queue)
        resident = self._resident
        last_used = self._last_used
        while pos < end:
            key = int(queue[pos])
            pos += 1
            if resident[key] and last_used[key] < min_free_step:
                self._vq_pos = pos
                return key
        self._vq_pos = pos
        return None

    def admit_many_absent(
        self,
        keys: np.ndarray,
        step: int,
        min_free_step: Optional[int] = None,
        agg: Optional[dict] = None,
        tenant: Optional[str] = None,
    ) -> None:
        """Admit an array of unique *non-resident* keys, in array order.

        Vectorized equivalent of calling :meth:`admit` per key — same
        inserts, same victims in the same order, same bypasses: free slots
        go to the leading keys, then one victim-queue entry per key while
        candidates last; keys beyond that fall back to scalar
        :meth:`admit` (which bypasses, or rebuilds the unconstrained
        queue).  Requires ``policy.supports_victim_order``; the victim
        choices are batch-safe because nothing else touches this level
        between the admissions (see :meth:`_pop_victim` for why accesses
        *between* victim picks cannot reorder the queue).

        Bookkeeping (stats, registry counters/occupancy, ``agg`` counts)
        is grouped but total-identical to the scalar calls.
        """
        m = int(keys.size)
        if m == 0:
            return
        if self._tenant_id(tenant) >= 0:
            # Tenant-labelled bulk admits take the scalar reference path:
            # quota accounting is per-victim and the owner-restricted
            # candidate mask changes after every eviction, so there is no
            # batch-safe victim window to exploit.
            for key in keys.tolist():
                self.admit(key, step, min_free_step=min_free_step, agg=agg, tenant=tenant)
            return
        if m <= 2:
            # Vectorization overhead beats the win at this size; the scalar
            # path is the reference semantics anyway.
            for key in keys.tolist():
                self.admit(key, step, min_free_step=min_free_step, agg=agg)
            return
        try:
            resident_in = self._resident[keys]
        except IndexError:
            self.ensure_ids(int(keys.max()))
            resident_in = self._resident[keys]
        if resident_in.any():
            raise KeyError(f"{self.name}: admit_many_absent got a resident key")
        policy = self.policy
        free = self.capacity - self._n_resident
        k1 = min(free, m) if free > 0 else 0
        r = 0
        victims = None
        if k1 < m:
            # Build/reuse the victim queue exactly as _pop_victim would,
            # then take the next (m - k1) valid entries — validated in a
            # window that grows toward the tail end, not the whole tail.
            if min_free_step is None:
                if self._vq_epoch != ("*", None):
                    self._vq = policy.victim_order(self._resident)
                    self._vq_pos = 0
                    self._vq_token = policy.victim_order_token()
                    self._vq_epoch = ("*", None)
            else:
                epoch = (step, min_free_step)
                if self._vq_epoch != epoch:
                    self._vq = policy.victim_order(self.evictable_mask(min_free_step))
                    self._vq_pos = 0
                    self._vq_epoch = epoch
            queue = self._vq
            end = len(queue)
            pos = self._vq_pos
            need = m - k1
            taken: list = []
            taken_pos: list = []  # absolute queue positions (forensics rank)
            while pos < end and r < need:
                hi = min(end, pos + max(2 * (need - r), 8))
                window = queue[pos:hi]
                if min_free_step is None:
                    valid = policy.victim_still_ordered_many(window, self._vq_token)
                else:
                    valid = self._resident[window] & (
                        self._last_used[window] < min_free_step
                    )
                idx = np.flatnonzero(valid)
                take = min(need - r, int(idx.size))
                if take:
                    taken.append(window[idx[:take]])
                    taken_pos.append(pos + idx[:take])
                    r += take
                    # Entries skipped over as invalid are consumed for good,
                    # exactly like the scalar pops would discard them.
                    pos += int(idx[take - 1]) + 1
                else:
                    pos = hi
            self._vq_pos = pos
            if r:
                victims = taken[0] if len(taken) == 1 else np.concatenate(taken)
        if r:
            if self.forensics is not None:
                ranks = (
                    taken_pos[0] if len(taken_pos) == 1 else np.concatenate(taken_pos)
                ).tolist()
                owners = (
                    self._owner[victims].tolist() if self._owner is not None else None
                )
                names = self._tenant_names
                for j, vkey in enumerate(victims.tolist()):
                    tname = names[owners[j]] if owners is not None and owners[j] >= 0 else ""
                    self.forensics.record_eviction(
                        vkey, self.name, step, self.policy.name, tname, int(ranks[j])
                    )
            if self._owner is not None:
                owned = self._owner[victims]
                owned = owned[owned >= 0]
                if owned.size:
                    np.subtract.at(self._tenant_used, owned, 1)
                    self._owner[victims] = -1
            self._resident[victims] = False
            self._last_used[victims] = _NEVER_USED
            self._n_resident -= r
            policy.on_evict_many(victims)
            self.stats.evictions += r
            if self.registry.enabled:
                self._evictions.inc(r)
            if agg is not None:
                acc = agg.setdefault(("evict", self.name), [0, 0, 0.0])
                acc[0] += r
            elif self.tracer.enabled:
                for key in victims.tolist():
                    self.tracer.record("evict", step, self.name, key)
        n_ins = k1 + r
        if n_ins:
            ins = keys[:n_ins]
            self._resident[ins] = True
            self._last_used[ins] = step
            self._n_resident += n_ins
            policy.on_insert_many(ins, step)
            self.stats.inserts += n_ins
            if self.registry.enabled:
                # n_ins insert-sets plus r evict-sets, ending at the live
                # occupancy (the walk never exceeds it — evict dips recover).
                self._occupancy.set_n(self._n_resident, n_ins + r)
        if n_ins < m:
            # Queue exhausted: scalar admits bypass (constrained) or
            # rebuild over the freshly inserted keys (unconstrained).
            for key in keys[n_ins:].tolist():
                self.admit(key, step, min_free_step=min_free_step, agg=agg)

    def _evictable_predicate(self, min_free_step: Optional[int]):
        if min_free_step is None:
            return lambda key: True
        last_used = self._last_used
        return lambda key: last_used[key] < min_free_step

    def evict(
        self,
        key: int,
        step: Optional[int] = None,
        agg: Optional[dict] = None,
        by: Optional[int] = None,
        rank: int = -1,
    ) -> None:
        """Remove a resident ``key`` (policy notified).

        ``step`` is only used for tracing: the replay step whose admission
        forced this eviction (``None`` for evictions outside a replay).
        ``agg`` aggregates the evict event instead of recording it
        (see :meth:`admit`).  ``by`` is the tenant index whose admission
        forced the eviction; evicting a block owned by a *different*
        tenant counts as a cross-tenant eviction (always zero under quota
        partitioning — the admission path never selects such victims).
        ``rank`` is the victim's absolute position in the amortised victim
        queue when the admission path selected it from one (−1 for
        masked/predicate selection and direct evicts); it flows into the
        forensics lineage only.
        """
        resident = self._resident
        if key >= len(resident) or not resident[key]:
            raise KeyError(f"{self.name}: evict of non-resident block {key}")
        tenant_name = ""
        if self._owner is not None:
            prev = int(self._owner[key])
            if prev >= 0:
                tenant_name = self._tenant_names[prev]
                self._tenant_used[prev] -= 1
                self._owner[key] = -1
                if by is not None and by != prev:
                    self.tenant_cross_evictions += 1
                    if self.registry.enabled:
                        self._cross_evictions.inc()
        self._resident[key] = False
        self._last_used[key] = _NEVER_USED
        self._n_resident -= 1
        self.policy.on_evict(key)
        self.stats.evictions += 1
        if self.registry.enabled:
            self._evictions.inc()
            self._occupancy.set(self._n_resident)
        if self.forensics is not None:
            self.forensics.record_eviction(
                key,
                self.name,
                -1 if step is None else step,
                self.policy.name,
                tenant_name,
                rank,
            )
        if agg is not None:
            acc = agg.setdefault(("evict", self.name), [0, 0, 0.0])
            acc[0] += 1
        elif self.tracer.enabled:
            self.tracer.record("evict", -1 if step is None else step, self.name, key)

    def preload(self, keys: Iterable[int], aggregate_trace: bool = False) -> int:
        """Fill the cache with ``keys`` (up to capacity) before a run.

        Used for Step 2's importance preload (Alg. 1 line 7).  Preloaded
        blocks get ``last_used = -1`` so any later step may evict them.
        Counts toward ``stats.inserts`` like any other placement, so the
        insert/eviction ledger stays balanced.  Returns how many were
        actually placed.  ``aggregate_trace`` emits one counted preload
        event for the batch instead of one per key.
        """
        if isinstance(keys, np.ndarray):
            arr = keys.astype(np.int64, copy=False)
        else:
            arr = np.fromiter(keys, dtype=np.int64)
        free = self.capacity - self._n_resident
        if free <= 0 or arr.size == 0:
            return 0
        self.ensure_ids(int(arr.max()))
        # First occurrence of each key, in priority order, non-resident only —
        # exactly what a skip-duplicates/skip-resident scan would place.
        _, first = np.unique(arr, return_index=True)
        arr = arr[np.sort(first)]
        arr = arr[~self._resident[arr]][:free]
        placed = int(arr.size)
        if placed:
            self._vq_epoch = None  # preloads are evictable: any queue is stale
            self._resident[arr] = True
            self._last_used[arr] = _NEVER_USED
            self._n_resident += placed
            self.policy.on_insert_many(arr, _NEVER_USED)
            self.stats.inserts += placed
            if self.tracer.enabled:
                if aggregate_trace:
                    self.tracer.record(
                        "preload", _NEVER_USED, self.name, -1, count=placed
                    )
                else:
                    for key in arr.tolist():
                        self.tracer.record("preload", _NEVER_USED, self.name, key)
        if self.registry.enabled:
            self._occupancy.set(self._n_resident)
        return placed

    def clear(self) -> None:
        """Drop all residents and reset policy state (stats preserved)."""
        self._resident.fill(False)
        self._last_used.fill(_NEVER_USED)
        self._n_resident = 0
        self._vq_epoch = None
        if self._owner is not None:
            self._owner.fill(-1)
            self._tenant_used.fill(0)
        self.policy.reset()
        if self.registry.enabled:
            self._occupancy.set(0)

    def check_invariants(self) -> None:
        """Raise if residency and policy bookkeeping have diverged."""
        if self._n_resident != int(self._resident.sum()):
            raise AssertionError(
                f"{self.name}: resident counter {self._n_resident} != mask "
                f"population {int(self._resident.sum())}"
            )
        if self._n_resident > self.capacity:
            raise AssertionError(
                f"{self.name}: {self._n_resident} residents exceed capacity {self.capacity}"
            )
        if len(self.policy) != self._n_resident:
            raise AssertionError(
                f"{self.name}: policy tracks {len(self.policy)} keys, cache has {self._n_resident}"
            )
        if self._owner is not None:
            if ((self._owner >= 0) & ~self._resident).any():
                raise AssertionError(f"{self.name}: non-resident block has a tenant owner")
            for i, name in enumerate(self._tenant_names):
                owned = int((self._owner == i).sum())
                if owned != int(self._tenant_used[i]):
                    raise AssertionError(
                        f"{self.name}: tenant {name!r} usage counter "
                        f"{int(self._tenant_used[i])} != owned population {owned}"
                    )
                if owned > int(self._tenant_quota[i]):
                    raise AssertionError(
                        f"{self.name}: tenant {name!r} owns {owned} blocks, "
                        f"exceeding quota {int(self._tenant_quota[i])}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheLevel(name={self.name!r}, capacity={self.capacity}, "
            f"resident={self._n_resident}, policy={self.policy.name!r})"
        )
