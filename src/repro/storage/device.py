"""Analytic storage-device cost models.

A read of ``n`` bytes from a device costs ``latency + n / bandwidth``
seconds.  The defaults are calibrated to the commodity hardware of the
paper's testbed (§V-A: desktop DRAM, SATA SSD, 3 TB HDD); they only need
to preserve the *ordering and rough ratios* between levels for the
experiment shapes to hold (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["StorageDevice", "DRAM", "SSD", "HDD"]


@dataclass(frozen=True)
class StorageDevice:
    """An immutable device read-cost model.

    Parameters
    ----------
    name:
        Label used in statistics and reports.
    read_latency_s:
        Fixed per-request cost in seconds (seek/command overhead).
    read_bandwidth_bps:
        Sustained read bandwidth in bytes per second.
    """

    name: str
    read_latency_s: float
    read_bandwidth_bps: float

    def __post_init__(self) -> None:
        check_non_negative("read_latency_s", self.read_latency_s)
        check_positive("read_bandwidth_bps", self.read_bandwidth_bps)

    def read_time(self, nbytes: int, latency_scale: float = 1.0) -> float:
        """Seconds to read ``nbytes`` in one request.

        ``latency_scale`` < 1 models queued/batched requests that amortise
        the per-request latency (readahead, NCQ): prefetchers issue many
        outstanding reads, so each one pays only a fraction of the seek.
        Demand reads (the user waiting on one block) pay the full latency.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if not 0.0 <= latency_scale <= 1.0:
            raise ValueError(f"latency_scale must be in [0, 1], got {latency_scale}")
        return self.read_latency_s * latency_scale + nbytes / self.read_bandwidth_bps


# Calibrated defaults (per-request latency, sustained bandwidth):
DRAM = StorageDevice("dram", read_latency_s=100e-9, read_bandwidth_bps=12e9)
SSD = StorageDevice("ssd", read_latency_s=80e-6, read_bandwidth_bps=500e6)
HDD = StorageDevice("hdd", read_latency_s=8e-3, read_bandwidth_bps=150e6)
