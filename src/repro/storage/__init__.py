"""Memory/storage hierarchy simulator.

Models the paper's three-level testbed (16 GB DRAM / 512 GB SSD / 3 TB HDD,
§V-A) as cache levels over a backing device, with per-device analytic read
cost (latency + bytes/bandwidth).  Miss rates are exact given the access
trace; times come from the deterministic cost model (DESIGN.md §2).
"""

from repro.storage.device import StorageDevice, DRAM, SSD, HDD
from repro.storage.cache import CacheLevel
from repro.storage.forensics import (
    EvictionLineage,
    EvictionRecord,
    ReMissRecord,
    optimal_miss_count,
)
from repro.storage.hierarchy import MemoryHierarchy, FetchResult, make_standard_hierarchy
from repro.storage.stats import CacheStats, HierarchyStats

__all__ = [
    "StorageDevice",
    "DRAM",
    "SSD",
    "HDD",
    "CacheLevel",
    "MemoryHierarchy",
    "FetchResult",
    "make_standard_hierarchy",
    "CacheStats",
    "HierarchyStats",
    "EvictionLineage",
    "EvictionRecord",
    "ReMissRecord",
    "optimal_miss_count",
]
