"""Access statistics for cache levels and whole hierarchies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CacheStats", "HierarchyStats"]


@dataclass
class CacheStats:
    """Counters for one cache level, split by demand vs prefetch traffic.

    ``bypasses`` counts inserts that were abandoned because no evictable
    victim existed (every resident block was protected at that moment);
    the read still happens, the block just is not cached — see
    :meth:`repro.storage.cache.CacheLevel.admit`.
    """

    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    inserts: int = 0
    evictions: int = 0
    bypasses: int = 0
    bytes_read: int = 0

    @property
    def accesses(self) -> int:
        """Demand accesses only (the paper's miss rate is over demand traffic)."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate; 0.0 when there were no accesses."""
        n = self.accesses
        return self.misses / n if n else 0.0

    @property
    def hit_rate(self) -> float:
        """Demand hit rate; 0.0 when there were no accesses."""
        n = self.accesses
        return self.hits / n if n else 0.0

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.prefetch_hits = self.prefetch_misses = 0
        self.inserts = self.evictions = self.bypasses = 0
        self.bytes_read = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "accesses": self.accesses,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "bytes_read": self.bytes_read,
            "miss_rate": self.miss_rate,
            "hit_rate": self.hit_rate,
        }


@dataclass
class HierarchyStats:
    """Aggregated view over all levels of a hierarchy.

    The paper reports "the total miss rate ... across DRAM, SSD and HDD"
    (§V-A): all demand misses at every cache level over all demand accesses
    at every cache level, which :attr:`total_miss_rate` reproduces.
    """

    levels: Dict[str, CacheStats] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return sum(s.accesses for s in self.levels.values())

    @property
    def total_misses(self) -> int:
        return sum(s.misses for s in self.levels.values())

    @property
    def total_miss_rate(self) -> float:
        n = self.total_accesses
        return self.total_misses / n if n else 0.0

    @property
    def total_bytes_read(self) -> int:
        return sum(s.bytes_read for s in self.levels.values())

    def level_miss_rates(self) -> Dict[str, float]:
        return {name: s.miss_rate for name, s in self.levels.items()}

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_miss_rate": self.total_miss_rate,
            "total_accesses": self.total_accesses,
            "total_misses": self.total_misses,
            "total_bytes_read": self.total_bytes_read,
            "levels": {name: s.as_dict() for name, s in self.levels.items()},
        }
