"""A small CPU volume ray-caster (perspective, front-to-back compositing).

This is the real renderer behind the examples: it produces images from the
same camera model the pipeline uses, and can restrict sampling to a set of
resident blocks — visualising exactly what a partially-cached volume looks
like mid-exploration.

Implementation notes (per the HPC guides): all rays are marched together
as one ``(n_rays, n_samples, 3)`` coordinate tensor fed to
``scipy.ndimage.map_coordinates`` once per frame; compositing is a single
vectorised scan over the sample axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.ndimage import map_coordinates

from repro.camera.model import Camera
from repro.render.transfer_function import TransferFunction
from repro.utils.geometry import normalize, perpendicular_unit_vector
from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = ["RenderSettings", "Raycaster"]


@dataclass(frozen=True)
class RenderSettings:
    """Image and sampling resolution for the ray-caster."""

    width: int = 128
    height: int = 128
    n_samples: int = 128  # samples per ray across the volume cube
    background: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"image size must be >= 1x1, got {self.width}x{self.height}")
        if self.n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {self.n_samples}")


class Raycaster:
    """Render a :class:`Volume` from :class:`Camera` positions."""

    def __init__(
        self,
        volume: Volume,
        transfer_function: Optional[TransferFunction] = None,
        settings: Optional[RenderSettings] = None,
        variable: Optional[str] = None,
    ) -> None:
        self.volume = volume
        self.tf = transfer_function or TransferFunction.grayscale_ramp()
        self.settings = settings or RenderSettings()
        self._data = volume.data(variable).astype(np.float32)
        lo, hi = float(self._data.min()), float(self._data.max())
        self._lo, self._span = lo, (hi - lo) if hi > lo else 1.0

    # -- ray setup ---------------------------------------------------------------

    def _ray_directions(self, camera: Camera) -> np.ndarray:
        """Unit direction per pixel, shape ``(H*W, 3)``."""
        s = self.settings
        forward = camera.direction
        right = perpendicular_unit_vector(forward)
        up = np.cross(right, forward)
        half = np.tan(camera.half_angle_rad)
        # Pixel centres in NDC [-1, 1] (x right, y up), aspect-corrected.
        xs = (np.arange(s.width) + 0.5) / s.width * 2.0 - 1.0
        ys = 1.0 - (np.arange(s.height) + 0.5) / s.height * 2.0
        aspect = s.width / s.height
        px, py = np.meshgrid(xs * half * aspect, ys * half, indexing="xy")
        dirs = (
            forward[None, None, :]
            + px[:, :, None] * right[None, None, :]
            + py[:, :, None] * up[None, None, :]
        )
        return normalize(dirs.reshape(-1, 3))

    @staticmethod
    def _box_intersections(origin: np.ndarray, dirs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Entry/exit distances of each ray with the cube [-1, 1]³ (slab test)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / dirs
        t0 = (-1.0 - origin[None, :]) * inv
        t1 = (1.0 - origin[None, :]) * inv
        # Rays parallel to a slab: +-inf propagates correctly through min/max,
        # but 0 * inf = nan needs cleanup.
        t0 = np.nan_to_num(t0, nan=-np.inf, posinf=np.inf, neginf=-np.inf)
        t1 = np.nan_to_num(t1, nan=np.inf, posinf=np.inf, neginf=-np.inf)
        tnear = np.maximum.reduce(np.minimum(t0, t1), axis=1)
        tfar = np.minimum.reduce(np.maximum(t0, t1), axis=1)
        tnear = np.maximum(tnear, 0.0)  # start at the camera, not behind it
        return tnear, tfar

    # -- rendering -----------------------------------------------------------------

    def render(
        self,
        camera: Camera,
        resident_blocks: Optional[np.ndarray] = None,
        grid: Optional[BlockGrid] = None,
    ) -> np.ndarray:
        """Render an RGB image of shape ``(height, width, 3)`` in [0, 1].

        When ``resident_blocks`` (ids) and ``grid`` are given, samples in
        non-resident blocks contribute nothing — the image shows holes
        where data has not been fetched yet.
        """
        s = self.settings
        origin = camera.position_array
        dirs = self._ray_directions(camera)
        tnear, tfar = self._box_intersections(origin, dirs)
        hit = tfar > tnear
        n_rays = dirs.shape[0]

        image = np.empty((n_rays, 3), dtype=np.float64)
        image[:] = np.asarray(s.background)
        if not hit.any():
            return image.reshape(s.height, s.width, 3)

        d_hit = dirs[hit]
        t0 = tnear[hit]
        t1 = tfar[hit]
        ts = t0[:, None] + (t1 - t0)[:, None] * np.linspace(0.0, 1.0, s.n_samples)[None, :]
        pts = origin[None, None, :] + d_hit[:, None, :] * ts[:, :, None]  # (R, S, 3)

        # Normalized cube [-1,1] -> voxel index space per axis.
        shape = np.asarray(self.volume.shape, dtype=np.float64)
        coords = (pts + 1.0) * 0.5 * shape[None, None, :] - 0.5
        flat = coords.reshape(-1, 3).T  # (3, R*S)
        samples = map_coordinates(self._data, flat, order=1, mode="nearest")
        samples = samples.reshape(len(d_hit), s.n_samples)
        samples = (samples - self._lo) / self._span

        if resident_blocks is not None:
            if grid is None:
                raise ValueError("resident_blocks requires the matching BlockGrid")
            mask = self._resident_sample_mask(pts, grid, resident_blocks)
            samples = np.where(mask, samples, 0.0)

        rgba = self.tf(samples)  # (R, S, 4)
        # Opacity correction for the per-ray step length (reference step =
        # cube diagonal / n_samples).
        step_len = (t1 - t0) / (s.n_samples - 1)
        ref = 2.0 * np.sqrt(3.0) / s.n_samples
        alpha = 1.0 - np.power(
            np.clip(1.0 - rgba[..., 3], 1e-9, 1.0), step_len[:, None] / ref
        )

        color = np.zeros((len(d_hit), 3), dtype=np.float64)
        transmittance = np.ones(len(d_hit), dtype=np.float64)
        for k in range(s.n_samples):  # front-to-back, vectorised over rays
            a = alpha[:, k] * transmittance
            color += a[:, None] * rgba[:, k, :3]
            transmittance *= 1.0 - alpha[:, k]
            if transmittance.max() < 1e-4:
                break
        color += transmittance[:, None] * np.asarray(s.background)[None, :]

        image[hit] = np.clip(color, 0.0, 1.0)
        return image.reshape(s.height, s.width, 3)

    @staticmethod
    def _resident_sample_mask(
        pts: np.ndarray, grid: BlockGrid, resident_blocks: np.ndarray
    ) -> np.ndarray:
        """True where a sample point falls inside a resident block."""
        resident = np.zeros(grid.n_blocks, dtype=bool)
        resident[np.asarray(resident_blocks, dtype=np.int64)] = True
        gx, gy, gz = grid.blocks_per_axis
        dims = np.asarray(grid.volume_shape, dtype=np.float64)
        block = np.asarray(grid.block_shape, dtype=np.float64)
        # Normalized [-1,1] -> voxel -> block index per axis.
        vox = (pts + 1.0) * 0.5 * dims[None, None, :]
        idx = np.floor(vox / block[None, None, :]).astype(np.int64)
        np.clip(idx[..., 0], 0, gx - 1, out=idx[..., 0])
        np.clip(idx[..., 1], 0, gy - 1, out=idx[..., 1])
        np.clip(idx[..., 2], 0, gz - 1, out=idx[..., 2])
        flat = (idx[..., 0] * gy + idx[..., 1]) * gz + idx[..., 2]
        return resident[flat]

    @staticmethod
    def to_ppm(image: np.ndarray, path: str) -> str:
        """Write an RGB float image to a binary PPM file (no deps needed)."""
        arr = np.clip(np.asarray(image) * 255.0 + 0.5, 0, 255).astype(np.uint8)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"image must be (H, W, 3), got {arr.shape}")
        h, w, _ = arr.shape
        with open(path, "wb") as f:
            f.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
            f.write(arr.tobytes())
        return path
