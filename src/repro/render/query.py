"""Query-based visualization (§III-A's second data-dependent operation).

Scientists select data by *value predicates* ("show regions where
QVAPOR > 0.8 and wind < 0.2"), not only by view.  Evaluating a predicate
naively touches every voxel; the standard out-of-core accelerator is a
**block-level min/max index**: a block whose value interval cannot
intersect the predicate is skipped without being fetched — which is also
exactly the set of blocks the replacement policy must materialise.

:class:`BlockRangeIndex` holds per-block min/max per variable;
:class:`RangeQuery` is a conjunction of per-variable intervals.  The index
returns *candidate* blocks (interval overlap — a superset of the true
answer); :func:`evaluate_query` refines candidates voxel-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = ["BlockRangeIndex", "RangeQuery", "evaluate_query"]


@dataclass(frozen=True)
class RangeQuery:
    """Conjunction of closed value intervals, one per queried variable.

    >>> RangeQuery({"smoke_pm10": (0.5, 1.0), "wind_magnitude": (0.0, 0.2)})
    """

    intervals: Mapping[str, Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("query needs at least one variable interval")
        for name, (lo, hi) in self.intervals.items():
            if not hi >= lo:
                raise ValueError(f"interval for {name!r} must satisfy hi >= lo, got ({lo}, {hi})")
        object.__setattr__(self, "intervals", dict(self.intervals))

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self.intervals)


class BlockRangeIndex:
    """Per-block value intervals for every variable of a volume.

    Built once per dataset (like ``T_important``); query evaluation is a
    vectorised interval-overlap test over ``(n_blocks,)`` arrays.
    """

    def __init__(self, mins: Dict[str, np.ndarray], maxs: Dict[str, np.ndarray], n_blocks: int) -> None:
        if set(mins) != set(maxs):
            raise ValueError("mins and maxs must cover the same variables")
        for name in mins:
            if mins[name].shape != (n_blocks,) or maxs[name].shape != (n_blocks,):
                raise ValueError(f"index arrays for {name!r} must have shape ({n_blocks},)")
            if np.any(mins[name] > maxs[name]):
                raise ValueError(f"min > max in index for {name!r}")
        self._mins = {k: np.asarray(v, dtype=np.float64) for k, v in mins.items()}
        self._maxs = {k: np.asarray(v, dtype=np.float64) for k, v in maxs.items()}
        self.n_blocks = int(n_blocks)

    @classmethod
    def build(cls, volume: Volume, grid: BlockGrid) -> "BlockRangeIndex":
        """Scan the volume once per variable and record per-block extrema."""
        if grid.volume_shape != volume.shape:
            raise ValueError(
                f"grid shape {grid.volume_shape} does not match volume shape {volume.shape}"
            )
        mins: Dict[str, np.ndarray] = {}
        maxs: Dict[str, np.ndarray] = {}
        for name, data in volume.variables():
            lo = np.empty(grid.n_blocks)
            hi = np.empty(grid.n_blocks)
            for bid in grid.iter_ids():
                blk = data[grid.block_slices(bid)]
                lo[bid] = float(blk.min())
                hi[bid] = float(blk.max())
            mins[name] = lo
            maxs[name] = hi
        return cls(mins, maxs, grid.n_blocks)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._mins)

    def block_range(self, variable: str, block_id: int) -> Tuple[float, float]:
        return float(self._mins[variable][block_id]), float(self._maxs[variable][block_id])

    def candidates(self, query: RangeQuery) -> np.ndarray:
        """Ids of blocks whose intervals overlap every query interval.

        Guaranteed superset of the blocks containing matching voxels
        (no false negatives — the property test checks this).
        """
        mask = np.ones(self.n_blocks, dtype=bool)
        for name, (lo, hi) in query.intervals.items():
            if name not in self._mins:
                raise KeyError(f"variable {name!r} not in index; have {self.variables}")
            mask &= (self._maxs[name] >= lo) & (self._mins[name] <= hi)
        return np.flatnonzero(mask)

    def selectivity(self, query: RangeQuery) -> float:
        """Fraction of blocks that are candidates — the I/O the query costs."""
        return self.candidates(query).size / self.n_blocks


def evaluate_query(
    volume: Volume,
    grid: BlockGrid,
    query: RangeQuery,
    index: Optional[BlockRangeIndex] = None,
    restrict_to: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Voxel-exact query result.

    Returns ``(block_ids, match_counts)``: the candidate blocks that
    actually contain matching voxels and how many voxels match in each.
    ``restrict_to`` intersects the candidates with another block set —
    typically the current *visible* set, composing view-dependent and
    data-dependent selection exactly as the paper's Fig. 3 panels do.
    """
    if index is None:
        index = BlockRangeIndex.build(volume, grid)
    candidates = index.candidates(query)
    if restrict_to is not None:
        candidates = np.intersect1d(candidates, np.asarray(restrict_to, dtype=np.int64))

    hit_ids = []
    counts = []
    for bid in candidates:
        bid = int(bid)
        sl = grid.block_slices(bid)
        mask = np.ones(grid.block_voxel_shape(bid), dtype=bool)
        for name, (lo, hi) in query.intervals.items():
            blk = volume.data(name)[sl]
            mask &= (blk >= lo) & (blk <= hi)
        n = int(mask.sum())
        if n:
            hit_ids.append(bid)
            counts.append(n)
    return np.asarray(hit_ids, dtype=np.int64), np.asarray(counts, dtype=np.int64)
