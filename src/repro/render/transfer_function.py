"""Transfer functions: scalar value → RGBA (the data-dependent control, §III-A).

A piecewise-linear map from normalized scalar values to colour and
opacity.  Interactive users retune these constantly ("dynamically changed
transfer functions", §IV-A); in the pipeline a transfer-function change
invalidates nothing in the cache (blocks are raw data) but changes which
blocks *matter*, which is why importance-based placement helps.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["TransferFunction"]


class TransferFunction:
    """Piecewise-linear RGBA transfer function over [0, 1] scalar values.

    Parameters
    ----------
    control_points:
        Sequence of ``(value, (r, g, b, a))`` with values in [0, 1],
        strictly increasing.  Colours/opacities in [0, 1].
    """

    def __init__(self, control_points: Sequence[Tuple[float, Tuple[float, float, float, float]]]) -> None:
        if len(control_points) < 2:
            raise ValueError("need at least two control points")
        values = np.array([float(v) for v, _ in control_points])
        rgba = np.array([[float(c) for c in color] for _, color in control_points])
        if rgba.shape[1] != 4:
            raise ValueError("each control point needs an (r, g, b, a) colour")
        if np.any(np.diff(values) <= 0):
            raise ValueError("control-point values must be strictly increasing")
        if values[0] < 0 or values[-1] > 1:
            raise ValueError("control-point values must lie in [0, 1]")
        if rgba.min() < 0 or rgba.max() > 1:
            raise ValueError("colour components must lie in [0, 1]")
        self._values = values
        self._rgba = rgba

    def __call__(self, scalars: np.ndarray) -> np.ndarray:
        """Map scalars (any shape, clipped to [0,1]) to RGBA, shape ``(..., 4)``."""
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        out = np.empty(s.shape + (4,), dtype=np.float64)
        for c in range(4):
            out[..., c] = np.interp(s, self._values, self._rgba[:, c])
        return out

    def opacity(self, scalars: np.ndarray) -> np.ndarray:
        """Just the alpha channel (used by visibility-weighted analyses)."""
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        return np.interp(s, self._values, self._rgba[:, 3])

    # -- stock functions --------------------------------------------------------

    @classmethod
    def grayscale_ramp(cls) -> "TransferFunction":
        """Transparent black → opaque white."""
        return cls([(0.0, (0, 0, 0, 0)), (1.0, (1, 1, 1, 1))])

    @classmethod
    def fire(cls) -> "TransferFunction":
        """A combustion-style map: transparent → red → yellow → white."""
        return cls(
            [
                (0.0, (0.0, 0.0, 0.0, 0.0)),
                (0.3, (0.6, 0.05, 0.0, 0.05)),
                (0.6, (1.0, 0.4, 0.0, 0.35)),
                (0.85, (1.0, 0.85, 0.3, 0.7)),
                (1.0, (1.0, 1.0, 1.0, 0.95)),
            ]
        )

    @classmethod
    def cool_warm(cls) -> "TransferFunction":
        """Diverging blue → white → red with ramped opacity."""
        return cls(
            [
                (0.0, (0.23, 0.3, 0.75, 0.0)),
                (0.5, (0.86, 0.86, 0.86, 0.15)),
                (1.0, (0.7, 0.015, 0.15, 0.8)),
            ]
        )

    @classmethod
    def isolate_range(cls, lo: float, hi: float, color=(1.0, 0.8, 0.2)) -> "TransferFunction":
        """Opaque only inside [lo, hi] — a query-style transfer function."""
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"need 0 <= lo < hi <= 1, got ({lo}, {hi})")
        eps = min(1e-3, (hi - lo) / 4, lo if lo > 0 else 1.0, (1.0 - hi) if hi < 1 else 1.0)
        pts = []
        if lo > 0:
            pts.append((0.0, (0, 0, 0, 0.0)))
            pts.append((max(lo - eps, 1e-6), (0, 0, 0, 0.0)))
        pts.append((lo, (*color, 0.8)))
        pts.append((hi, (*color, 0.8)))
        if hi < 1:
            pts.append((min(hi + eps, 1.0 - 1e-6), (0, 0, 0, 0.0)))
            pts.append((1.0, (0, 0, 0, 0.0)))
        return cls(pts)
