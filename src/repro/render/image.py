"""Image comparison metrics.

Used by the budgeted-interaction experiments: when a frame deadline forces
rendering with only the cache-resident blocks, the image differs from the
full-data render; MSE/PSNR quantify the visual cost of each replacement
policy's residency choices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "psnr", "mean_abs_error"]


def _pair(a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("cannot compare empty images")
    return a, b


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images (any matching shape)."""
    a, b = _pair(a, b)
    return float(np.mean((a - b) ** 2))


def mean_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean absolute error between two images."""
    a, b = _pair(a, b)
    return float(np.mean(np.abs(a - b)))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    if data_range <= 0:
        raise ValueError(f"data_range must be > 0, got {data_range}")
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range * data_range / err))
