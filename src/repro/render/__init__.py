"""Rendering substrate.

The pipeline's *timing* uses the analytic :class:`RenderCostModel` (only
the render duration matters for the overlap rule, §V-D); the examples use
the real CPU ray-caster in :mod:`repro.render.raycast` to produce images,
including partial renders restricted to cache-resident blocks.  The
data-dependent operations of Fig. 3 (histograms, correlation matrices over
the visible region) live in :mod:`repro.render.analysis`.
"""

from repro.render.transfer_function import TransferFunction
from repro.render.render_model import RenderCostModel
from repro.render.raycast import Raycaster, RenderSettings
from repro.render.analysis import (
    visible_histogram,
    visible_correlation_matrix,
    visible_statistics,
)
from repro.render.query import BlockRangeIndex, RangeQuery, evaluate_query
from repro.render.image import mse, psnr, mean_abs_error
from repro.render.isosurface import (
    isosurface_blocks,
    isosurface_mask,
    isosurface_statistics,
    IsoStatistics,
)

__all__ = [
    "TransferFunction",
    "RenderCostModel",
    "Raycaster",
    "RenderSettings",
    "visible_histogram",
    "visible_correlation_matrix",
    "visible_statistics",
    "BlockRangeIndex",
    "RangeQuery",
    "evaluate_query",
    "mse",
    "psnr",
    "mean_abs_error",
    "isosurface_blocks",
    "isosurface_mask",
    "isosurface_statistics",
    "IsoStatistics",
]
