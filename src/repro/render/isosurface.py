"""Isosurface operations (the paper's Fig. 1(d,e) workload).

The paper's first data-dependent example is an isosurface of one variable
*coloured by another* — accurate shape and colour need every intersected
block at full resolution (§III-B).  Three pieces:

- :func:`isosurface_blocks` — blocks whose value interval straddles the
  isovalue, served from the :class:`~repro.render.query.BlockRangeIndex`
  (the Temporal Branch-On-Need idea of Sutton & Hansen, §II): this is the
  demand set an isosurface pass must materialise;
- :func:`isosurface_mask` — voxels adjacent to a sign change of
  ``value − iso`` (a light-weight surface extraction without meshing);
- :func:`isosurface_statistics` — statistics of a *colour* variable over
  the surface voxels, per the paper's mixfrac-coloured-by-OH example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.render.query import BlockRangeIndex
from repro.volume.volume import Volume

__all__ = ["isosurface_blocks", "isosurface_mask", "isosurface_statistics", "IsoStatistics"]


def isosurface_blocks(
    index: BlockRangeIndex,
    variable: str,
    iso: float,
) -> np.ndarray:
    """Ids of blocks whose [min, max] straddles ``iso`` (candidate set).

    Guaranteed superset of blocks containing surface voxels: a surface
    crossing inside a block forces values on both sides of ``iso`` there.
    Blocks straddled only *across* a block boundary contribute their
    boundary voxels from whichever side straddles — tested against the
    voxel-exact mask.
    """
    if variable not in index.variables:
        raise KeyError(f"variable {variable!r} not in index; have {index.variables}")
    lo = index._mins[variable]
    hi = index._maxs[variable]
    return np.flatnonzero((lo <= iso) & (hi >= iso))


def isosurface_mask(
    volume: Volume,
    iso: float,
    variable: Optional[str] = None,
) -> np.ndarray:
    """Boolean voxel mask: True where the voxel touches a sign change.

    A voxel belongs to the surface shell when ``value − iso`` changes sign
    between it and a face neighbour (6-connectivity), or when it equals
    ``iso`` exactly.  Fully vectorised (three shifted comparisons).
    """
    data = volume.data(variable).astype(np.float64)
    s = data - float(iso)
    mask = s == 0.0
    for axis in range(3):
        a = np.take(s, range(0, s.shape[axis] - 1), axis=axis)
        b = np.take(s, range(1, s.shape[axis]), axis=axis)
        cross = (a * b) < 0.0
        pad_lo = [(0, 0)] * 3
        pad_lo[axis] = (0, 1)
        pad_hi = [(0, 0)] * 3
        pad_hi[axis] = (1, 0)
        mask |= np.pad(cross, pad_lo)
        mask |= np.pad(cross, pad_hi)
    return mask


@dataclass(frozen=True)
class IsoStatistics:
    """Colour-variable statistics over an isosurface shell."""

    iso: float
    n_surface_voxels: int
    color_mean: float
    color_std: float
    color_min: float
    color_max: float


def isosurface_statistics(
    volume: Volume,
    iso: float,
    surface_variable: Optional[str] = None,
    color_variable: Optional[str] = None,
    mask: Optional[np.ndarray] = None,
) -> IsoStatistics:
    """Statistics of ``color_variable`` on the ``surface_variable`` isosurface.

    The paper's iso-of-mixfrac-coloured-by-OH pattern: extract the surface
    shell of one variable, evaluate another variable on it.  ``mask`` can
    be supplied to reuse a precomputed shell.
    """
    if mask is None:
        mask = isosurface_mask(volume, iso, surface_variable)
    color = volume.data(color_variable)[mask]
    if color.size == 0:
        nan = float("nan")
        return IsoStatistics(float(iso), 0, nan, nan, nan, nan)
    return IsoStatistics(
        iso=float(iso),
        n_surface_voxels=int(color.size),
        color_mean=float(color.mean()),
        color_std=float(color.std()),
        color_min=float(color.min()),
        color_max=float(color.max()),
    )
