"""Analytic render-time model.

The total-time experiments (Fig. 13) need only the *duration* of each
render pass: for baselines it adds to the step time; for the app-aware
pipeline it is the budget that hides prefetch (``total = io +
max(prefetch, render)``, §V-D).  Time scales with the number of visible
blocks — a GPU ray-caster's cost is dominated by sampling the visible
working set.

The defaults model a GPU pass at roughly 30–60 ms for a few hundred
visible blocks, which sits in the same regime as the simulated device
costs (an HDD block read ≈ 8 ms) — preserving the paper's crossover
behaviour rather than its absolute numbers (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative

__all__ = ["RenderCostModel"]


@dataclass(frozen=True)
class RenderCostModel:
    """``render_time = base_s + per_block_s * n_visible_blocks``."""

    base_s: float = 5e-3
    per_block_s: float = 0.15e-3

    def __post_init__(self) -> None:
        check_non_negative("base_s", self.base_s)
        check_non_negative("per_block_s", self.per_block_s)

    def render_time(self, n_visible_blocks: int) -> float:
        if n_visible_blocks < 0:
            raise ValueError(f"n_visible_blocks must be >= 0, got {n_visible_blocks}")
        return self.base_s + self.per_block_s * n_visible_blocks
