"""Data-dependent analysis over the visible region (Fig. 3 of the paper).

While exploring, scientists want per-view statistics — histograms of a
variable and the correlation matrix among variables, computed over exactly
the data seen from the current view.  These are the operations that force
full-resolution access to every visible block (§III-B), which is why the
replacement policy matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, resolve_rng
from repro.volume.blocks import BlockGrid
from repro.volume.volume import Volume

__all__ = [
    "gather_visible_values",
    "visible_histogram",
    "visible_correlation_matrix",
    "visible_statistics",
    "VisibleStatistics",
]


def gather_visible_values(
    volume: Volume,
    grid: BlockGrid,
    block_ids: np.ndarray,
    variable: Optional[str] = None,
    max_voxels: Optional[int] = None,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Concatenate the voxels of ``variable`` across the given blocks.

    ``max_voxels`` caps the result with a deterministic uniform subsample —
    the memory guard for large visible regions.
    """
    if grid.volume_shape != volume.shape:
        raise ValueError(
            f"grid shape {grid.volume_shape} does not match volume shape {volume.shape}"
        )
    data = volume.data(variable)
    block_ids = np.asarray(block_ids, dtype=np.int64)
    if block_ids.size == 0:
        return np.empty(0, dtype=data.dtype)
    parts = [data[grid.block_slices(int(b))].ravel() for b in block_ids]
    values = np.concatenate(parts)
    if max_voxels is not None and values.size > max_voxels:
        rng = resolve_rng(seed)
        idx = rng.choice(values.size, size=max_voxels, replace=False)
        values = values[np.sort(idx)]
    return values


def visible_histogram(
    volume: Volume,
    grid: BlockGrid,
    block_ids: np.ndarray,
    variable: Optional[str] = None,
    n_bins: int = 32,
    value_range: Optional[Tuple[float, float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram ``(counts, bin_edges)`` of a variable over the visible blocks.

    ``value_range`` defaults to the variable's global range so histograms
    from different views are directly comparable (as in Fig. 3).
    """
    values = gather_visible_values(volume, grid, block_ids, variable)
    if value_range is None:
        value_range = volume.value_range(variable)
    lo, hi = value_range
    if hi == lo:
        hi = lo + 1.0
    return np.histogram(values, bins=n_bins, range=(lo, hi))


def visible_correlation_matrix(
    volume: Volume,
    grid: BlockGrid,
    block_ids: np.ndarray,
    variables: Optional[Sequence[str]] = None,
    max_voxels: int = 200_000,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Pearson correlation among ``variables`` over the visible blocks.

    Returns ``(matrix, variable_names)``.  Constant variables get zero
    off-diagonal correlation (instead of NaN) and unit diagonal.
    """
    names = tuple(variables) if variables is not None else volume.variable_names
    if len(names) < 2:
        raise ValueError("correlation needs at least two variables")
    block_ids = np.asarray(block_ids, dtype=np.int64)
    if block_ids.size == 0:
        return np.eye(len(names)), names

    # Subsample voxel *positions* once so all variables align.
    total = int(sum(grid.block_n_voxels(int(b)) for b in block_ids))
    rng = resolve_rng(seed)
    if total > max_voxels:
        pick = np.sort(rng.choice(total, size=max_voxels, replace=False))
    else:
        pick = None

    columns = []
    for name in names:
        vals = gather_visible_values(volume, grid, block_ids, variable=name)
        columns.append(vals[pick] if pick is not None else vals)
    stack = np.stack(columns, axis=0).astype(np.float64)

    std = stack.std(axis=1)
    safe = std > 0
    matrix = np.eye(len(names))
    if safe.sum() >= 2:
        sub = np.corrcoef(stack[safe])
        ii = np.flatnonzero(safe)
        matrix[np.ix_(ii, ii)] = sub
    return matrix, names


@dataclass(frozen=True)
class VisibleStatistics:
    """Summary statistics of one variable over the visible region."""

    variable: str
    n_voxels: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_voxels": self.n_voxels,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def visible_statistics(
    volume: Volume,
    grid: BlockGrid,
    block_ids: np.ndarray,
    variable: Optional[str] = None,
) -> VisibleStatistics:
    """Mean/std/min/max of a variable over the visible blocks."""
    name = variable or volume.primary
    values = gather_visible_values(volume, grid, block_ids, variable)
    if values.size == 0:
        return VisibleStatistics(name, 0, float("nan"), float("nan"), float("nan"), float("nan"))
    return VisibleStatistics(
        variable=name,
        n_voxels=int(values.size),
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        maximum=float(values.max()),
    )
