"""Resilience primitives: retry policy and per-device circuit breaker.

Both are clock-agnostic — the caller passes "now" in explicitly — so the
same classes serve the simulated clock in
:class:`~repro.storage.hierarchy.MemoryHierarchy` (deterministic replay)
and the wall clock in :class:`~repro.parallel.fetcher.ParallelBlockFetcher`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    A read is attempted up to ``1 + max_retries`` times; after a failed
    attempt ``a`` (0-based) the reader waits ``backoff_s(a)`` seconds:

        ``min(backoff_base_s * backoff_factor ** a, backoff_max_s)``

    No jitter — replay determinism requires the backoff schedule to be a
    pure function of the attempt index.  ``read_timeout_s`` bounds one
    attempt: an attempt whose (simulated or wall) cost would exceed it is
    abandoned at the timeout and treated as a failure, so a pathological
    latency spike costs at most the timeout plus the backoff schedule.
    """

    max_retries: int = 3
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    backoff_max_s: float = 50e-3
    read_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.read_timeout_s is not None and self.read_timeout_s <= 0:
            raise ValueError(f"read_timeout_s must be > 0, got {self.read_timeout_s}")

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff_s(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (0-based)."""
        return min(self.backoff_base_s * self.backoff_factor**attempt, self.backoff_max_s)


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-device health tracking with the classic three-state breaker.

    - ``closed``: reads flow normally; consecutive failures are counted.
    - ``open``: after ``failure_threshold`` consecutive failures the
      breaker opens and ``allows(now)`` returns False until ``cooldown_s``
      has elapsed — callers skip the device and fall back to the next
      slower level instead of hammering a sick one.
    - ``half-open``: after the cooldown one probe read is allowed; success
      closes the breaker, failure re-opens it (with a fresh cooldown).

    Time is injected by the caller, so the breaker runs equally well on
    the deterministic simulated clock and on the wall clock.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 0.25) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opens = 0  # total times the breaker tripped
        self._opened_at = 0.0

    def allows(self, now: float) -> bool:
        """May a read be attempted at time ``now``?  (May move open → half-open.)"""
        if self.state == BREAKER_OPEN:
            if now - self._opened_at >= self.cooldown_s:
                self.state = BREAKER_HALF_OPEN
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> bool:
        """Record a failed read; returns True when this failure tripped the
        breaker open."""
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BREAKER_OPEN
            self._opened_at = now
            self.consecutive_failures = 0
            self.opens += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state}, "
            f"failures={self.consecutive_failures}/{self.failure_threshold})"
        )
