"""Deterministic fault injection and resilience for the storage stack.

- :mod:`repro.faults.plan` — seeded, immutable per-device fault plans
  (transient errors, latency spikes, degraded-bandwidth windows,
  payload corruption) with counter-based deterministic draws.
- :mod:`repro.faults.injector` — per-run injector: plan queries plus
  per-device stats of what was actually injected.
- :mod:`repro.faults.resilience` — retry policy (deterministic
  exponential backoff) and per-device circuit breaker, clock-agnostic.
- :mod:`repro.faults.store` — :class:`FaultyBlockStore`, the payload-path
  wrapper for any :class:`~repro.volume.store.BlockStore`.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FAULT_PROFILES, DeviceFaultProfile, FaultPlan, unit_draw
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.faults.store import CorruptPayloadError, FaultInjectedError, FaultyBlockStore

__all__ = [
    "DeviceFaultProfile",
    "FaultPlan",
    "FAULT_PROFILES",
    "unit_draw",
    "FaultInjector",
    "FaultStats",
    "RetryPolicy",
    "CircuitBreaker",
    "FaultyBlockStore",
    "FaultInjectedError",
    "CorruptPayloadError",
]
