"""The stateful side of fault injection: plan queries plus running stats.

:class:`FaultInjector` is what gets installed on a
:class:`~repro.storage.hierarchy.MemoryHierarchy` — it delegates every
decision to the immutable :class:`~repro.faults.plan.FaultPlan` and
counts what actually happened per device (errors, retries, timeouts,
spikes, degraded reads, breaker transitions, dropped blocks), so a run
can report its fault exposure in bench snapshots and summaries.
"""

from __future__ import annotations

from typing import Dict

from repro.faults.plan import FaultPlan

__all__ = ["FaultStats", "FaultInjector"]

#: Per-device event kinds a :class:`FaultStats` tracks.
FAULT_STAT_KINDS = (
    "errors",
    "retries",
    "timeouts",
    "spikes",
    "degraded_reads",
    "breaker_opens",
    "breaker_skips",
    "dropped_blocks",
    "corruptions",
)


class FaultStats:
    """Per-device counters of injected faults and resilience actions."""

    __slots__ = FAULT_STAT_KINDS

    def __init__(self) -> None:
        for kind in FAULT_STAT_KINDS:
            setattr(self, kind, {})

    def bump(self, kind: str, device: str, n: int = 1) -> None:
        counts: Dict[str, int] = getattr(self, kind)
        counts[device] = counts.get(device, 0) + n

    def total(self, kind: str) -> int:
        return sum(getattr(self, kind).values())

    @property
    def any_faults(self) -> bool:
        return any(self.total(kind) for kind in FAULT_STAT_KINDS)

    def as_dict(self) -> Dict[str, object]:
        """Totals plus the per-device breakdown (sorted for stable JSON)."""
        out: Dict[str, object] = {}
        for kind in FAULT_STAT_KINDS:
            counts: Dict[str, int] = getattr(self, kind)
            out[kind] = self.total(kind)
            out[f"{kind}_by_device"] = {d: counts[d] for d in sorted(counts)}
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={self.total(k)}" for k in FAULT_STAT_KINDS if self.total(k))
        return f"FaultStats({parts or 'clean'})"


class FaultInjector:
    """A :class:`FaultPlan` plus the stats of what it actually injected.

    The query methods mirror the plan's (pure) queries but record each
    positive outcome, so the plan stays shareable/immutable while the
    injector is per-run state.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()

    @property
    def is_null(self) -> bool:
        return self.plan.is_null

    # -- plan queries (recorded) ----------------------------------------------

    def fails(self, device: str, key: int, step: int, attempt: int) -> bool:
        if self.plan.fails(device, key, step, attempt):
            self.stats.bump("errors", device)
            return True
        return False

    def spike_s(self, device: str, key: int, step: int, attempt: int) -> float:
        s = self.plan.spike_s(device, key, step, attempt)
        if s > 0.0:
            self.stats.bump("spikes", device)
        return s

    def slowdown(self, device: str, step: int) -> float:
        return self.plan.slowdown(device, step)

    def corrupts(self, device: str, key: int, attempt: int) -> bool:
        if self.plan.corrupts(device, key, attempt):
            self.stats.bump("corruptions", device)
            return True
        return False

    # -- resilience-action records ---------------------------------------------

    def record_retry(self, device: str) -> None:
        self.stats.bump("retries", device)

    def record_timeout(self, device: str) -> None:
        self.stats.bump("timeouts", device)

    def record_degraded(self, device: str) -> None:
        self.stats.bump("degraded_reads", device)

    def record_breaker_open(self, device: str) -> None:
        self.stats.bump("breaker_opens", device)

    def record_breaker_skip(self, device: str) -> None:
        self.stats.bump("breaker_skips", device)

    def record_drop(self, device: str) -> None:
        self.stats.bump("dropped_blocks", device)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(seed={self.plan.seed}, {self.stats!r})"
