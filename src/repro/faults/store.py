"""FaultyBlockStore: wrap any :class:`~repro.volume.store.BlockStore`
with a deterministic, seeded :class:`~repro.faults.plan.FaultPlan`.

Where the hierarchy-side injection perturbs the *timing model*, this
wrapper perturbs the *payload path*: reads raise transient
:class:`FaultInjectedError`, pay optional wall-clock latency spikes, or
return corrupted bytes that a checksum verify catches.  Per-block attempt
counters make each retry a fresh draw from the plan, so a wrapped store
composes correctly with :class:`~repro.volume.store.RetryingBlockStore`
and :class:`~repro.parallel.fetcher.ParallelBlockFetcher` retries.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.volume.store import BlockStore

__all__ = ["FaultInjectedError", "CorruptPayloadError", "FaultyBlockStore"]


class FaultInjectedError(IOError):
    """A transient read error injected by a :class:`FaultPlan`."""

    def __init__(self, device: str, block_id: int, attempt: int) -> None:
        super().__init__(
            f"injected transient read error on {device!r} for block {block_id} "
            f"(attempt {attempt})"
        )
        self.device = device
        self.block_id = block_id
        self.attempt = attempt


class CorruptPayloadError(IOError):
    """A payload failed checksum verification."""

    def __init__(self, device: str, block_id: int) -> None:
        super().__init__(f"checksum mismatch on {device!r} for block {block_id}")
        self.device = device
        self.block_id = block_id


def payload_checksum(block: np.ndarray) -> int:
    """crc32 of the block's bytes — cheap, deterministic, dtype-exact."""
    return zlib.crc32(np.ascontiguousarray(block).tobytes())


class FaultyBlockStore(BlockStore):
    """Inject plan-driven faults into another store's read path.

    Parameters
    ----------
    inner:
        The store actually holding the payloads.
    plan:
        Seeded fault plan; the profile for ``device`` governs this store.
    device:
        Device name this store plays in the plan (default ``"store"``).
    wall_delay_scale:
        When > 0, latency spikes are also *slept* for
        ``spike_s * wall_delay_scale`` wall seconds — lets timeout tests
        exercise real slow reads without modelling full device costs.
        Default 0 keeps reads instant (pure simulation).

    Each block carries its own attempt counter, so a retry of a failed
    read redraws from the plan (the transient-fault model: retries can
    succeed).  Checksums of the *true* payloads are cached lazily on
    first read, making :meth:`verify` and :meth:`read_verified` cheap.
    """

    def __init__(
        self,
        inner: BlockStore,
        plan: FaultPlan,
        device: str = "store",
        wall_delay_scale: float = 0.0,
    ) -> None:
        if wall_delay_scale < 0:
            raise ValueError(f"wall_delay_scale must be >= 0, got {wall_delay_scale}")
        super().__init__(inner.grid)
        self.inner = inner
        self.plan = plan
        self.device = device
        self.wall_delay_scale = wall_delay_scale
        self.reads = 0
        self.errors_injected = 0
        self.corruptions_injected = 0
        self.spikes_injected = 0
        self._attempts: Dict[int, int] = {}
        self._checksums: Dict[int, int] = {}

    # -- faulty read path ------------------------------------------------------

    def read_block(self, block_id: int) -> np.ndarray:
        attempt = self._attempts.get(block_id, 0)
        self._attempts[block_id] = attempt + 1
        self.reads += 1
        spike = self.plan.spike_s(self.device, block_id, 0, attempt)
        if spike > 0.0:
            self.spikes_injected += 1
            if self.wall_delay_scale > 0.0:
                time.sleep(spike * self.wall_delay_scale)
        if self.plan.fails(self.device, block_id, 0, attempt):
            self.errors_injected += 1
            raise FaultInjectedError(self.device, block_id, attempt)
        block = self.inner.read_block(block_id)
        if block_id not in self._checksums:
            self._checksums[block_id] = payload_checksum(block)
        if self.plan.corrupts(self.device, block_id, attempt):
            self.corruptions_injected += 1
            return self._corrupt(block)
        return block

    @staticmethod
    def _corrupt(block: np.ndarray) -> np.ndarray:
        """A copy of ``block`` with its first byte flipped — guaranteed to
        change the checksum while keeping shape/dtype valid."""
        out = np.ascontiguousarray(block).copy()
        flat = out.view(np.uint8).reshape(-1)
        flat[0] ^= 0xFF
        return out

    # -- verification ----------------------------------------------------------

    def true_checksum(self, block_id: int) -> int:
        """Checksum of the uncorrupted payload (reads through on first use)."""
        cs = self._checksums.get(block_id)
        if cs is None:
            cs = self._checksums[block_id] = payload_checksum(self.inner.read_block(block_id))
        return cs

    def verify(self, block_id: int, block: np.ndarray) -> bool:
        """Does ``block`` match the true payload's checksum?"""
        return payload_checksum(block) == self.true_checksum(block_id)

    def read_verified(self, block_id: int) -> np.ndarray:
        """Read and checksum-verify; corrupted payloads raise
        :class:`CorruptPayloadError` (an ``IOError``, so retry wrappers
        treat corruption as one more transient failure)."""
        block = self.read_block(block_id)
        if not self.verify(block_id, block):
            raise CorruptPayloadError(self.device, block_id)
        return block

    def make_validator(self) -> "callable":
        """A ``validate(block_id, block)`` callable for
        :class:`~repro.parallel.fetcher.ParallelBlockFetcher` — raises
        :class:`CorruptPayloadError` on checksum mismatch."""

        def validate(block_id: int, block: Optional[np.ndarray]) -> None:
            if block is not None and not self.verify(block_id, block):
                raise CorruptPayloadError(self.device, block_id)

        return validate
