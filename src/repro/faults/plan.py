"""Deterministic, seeded fault plans for the storage hierarchy.

A :class:`FaultPlan` describes *what can go wrong* per device — transient
read errors, latency spikes, degraded-bandwidth windows, corrupted
payloads — without any mutable state.  Every decision is a pure function
of ``(seed, device, block, step, attempt, channel)`` through a counter
based hash (splitmix64), so

- two runs with the same seed draw identical faults,
- the scalar and batched replay engines (which issue the same reads in
  the same order) see identical faults, and
- concurrent readers (thread-pool fetchers) draw race-free: no shared
  RNG stream exists to contend on.

Named profiles (:data:`FAULT_PROFILES`) give the CLI and the bench suite
reproducible chaos scenarios; ``FaultPlan.from_profile("none")`` is the
null plan that injects nothing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "DeviceFaultProfile",
    "FaultPlan",
    "FAULT_PROFILES",
    "unit_draw",
]

_M64 = (1 << 64) - 1

# Hash channels: one per decision kind so draws never alias.
_CH_ERROR = 1
_CH_SPIKE = 2
_CH_CORRUPT = 3


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _M64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def unit_draw(seed: int, *parts: int) -> float:
    """A deterministic draw in ``[0, 1)`` keyed by ``(seed, *parts)``.

    Counter-based (stateless): the value depends only on the arguments,
    never on call order — the property the fault model's determinism and
    engine-equivalence guarantees rest on.
    """
    x = seed & _M64
    for p in parts:
        x = _splitmix64(x ^ (int(p) & _M64))
    return _splitmix64(x) / 2.0**64


def _device_id(name: str) -> int:
    """Stable 32-bit id for a device name (crc32; not Python ``hash``,
    which is salted per process)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class DeviceFaultProfile:
    """What can go wrong on one named device.

    Parameters
    ----------
    device:
        Device/level name the profile applies to (``"hdd"``, ``"ssd"``, ...).
    error_rate:
        Probability that one read *attempt* fails with a transient error.
        Retries draw independently, so a retry can succeed.
    spike_rate / spike_s:
        Probability that a read attempt pays an extra ``spike_s`` seconds
        of latency (queueing, thermal throttle, rotational miss).
    slow_windows:
        ``(start_step, end_step, slowdown)`` triples: during replay steps
        in ``[start, end)`` every read from this device takes ``slowdown``
        times its nominal cost (degraded-bandwidth window, e.g. a RAID
        rebuild or a noisy neighbour).
    corruption_rate:
        Probability that a *payload* read returns corrupted bytes
        (checksum mismatch).  Only meaningful for payload stores
        (:class:`~repro.faults.store.FaultyBlockStore`); the timing-model
        hierarchy has no payloads to corrupt.
    """

    device: str
    error_rate: float = 0.0
    spike_rate: float = 0.0
    spike_s: float = 0.0
    slow_windows: Tuple[Tuple[int, int, float], ...] = ()
    corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "spike_rate", "corruption_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.spike_s < 0:
            raise ValueError(f"spike_s must be >= 0, got {self.spike_s}")
        for window in self.slow_windows:
            if len(window) != 3:
                raise ValueError(f"slow window must be (start, end, slowdown), got {window}")
            start, end, slowdown = window
            if end <= start:
                raise ValueError(f"slow window must have end > start, got {window}")
            if slowdown < 1.0:
                raise ValueError(f"slowdown must be >= 1, got {slowdown}")

    @property
    def is_null(self) -> bool:
        return (
            self.error_rate == 0.0
            and self.spike_rate == 0.0
            and not self.slow_windows
            and self.corruption_rate == 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable set of per-device fault profiles.

    All queries are pure: the plan holds no RNG state, so it can be
    shared between hierarchies, stores, and threads.
    """

    seed: int = 0
    profiles: Tuple[DeviceFaultProfile, ...] = ()
    _by_device: Dict[str, DeviceFaultProfile] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        by_device: Dict[str, DeviceFaultProfile] = {}
        for p in self.profiles:
            if p.device in by_device:
                raise ValueError(f"duplicate fault profile for device {p.device!r}")
            by_device[p.device] = p
        object.__setattr__(self, "_by_device", by_device)

    # -- queries (all pure) ---------------------------------------------------

    def profile_for(self, device: str) -> Optional[DeviceFaultProfile]:
        return self._by_device.get(device)

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject anything."""
        return all(p.is_null for p in self.profiles)

    def fails(self, device: str, key: int, step: int, attempt: int) -> bool:
        """Does read attempt ``attempt`` of ``key`` at ``step`` error out?"""
        p = self._by_device.get(device)
        if p is None or p.error_rate == 0.0:
            return False
        u = unit_draw(self.seed, _device_id(device), key, step, attempt, _CH_ERROR)
        return u < p.error_rate

    def spike_s(self, device: str, key: int, step: int, attempt: int) -> float:
        """Extra latency-spike seconds for this attempt (0.0 = no spike)."""
        p = self._by_device.get(device)
        if p is None or p.spike_rate == 0.0 or p.spike_s == 0.0:
            return 0.0
        u = unit_draw(self.seed, _device_id(device), key, step, attempt, _CH_SPIKE)
        return p.spike_s if u < p.spike_rate else 0.0

    def slowdown(self, device: str, step: int) -> float:
        """Read-time multiplier at ``step`` (1.0 outside degraded windows)."""
        p = self._by_device.get(device)
        if p is None or not p.slow_windows:
            return 1.0
        factor = 1.0
        for start, end, slowdown in p.slow_windows:
            if start <= step < end:
                factor = max(factor, slowdown)
        return factor

    def corrupts(self, device: str, key: int, attempt: int) -> bool:
        """Does this payload read return corrupted bytes?"""
        p = self._by_device.get(device)
        if p is None or p.corruption_rate == 0.0:
            return False
        u = unit_draw(self.seed, _device_id(device), key, attempt, _CH_CORRUPT)
        return u < p.corruption_rate

    # -- construction / description -------------------------------------------

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """A named chaos scenario (see :data:`FAULT_PROFILES`)."""
        try:
            profiles = _PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; expected one of {FAULT_PROFILES}"
            ) from None
        return cls(seed=seed, profiles=profiles)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "devices": [
                {
                    "device": p.device,
                    "error_rate": p.error_rate,
                    "spike_rate": p.spike_rate,
                    "spike_s": p.spike_s,
                    "slow_windows": [list(w) for w in p.slow_windows],
                    "corruption_rate": p.corruption_rate,
                }
                for p in self.profiles
            ],
        }


#: The named chaos scenarios ``--faults`` accepts.
_PROFILES: Dict[str, Tuple[DeviceFaultProfile, ...]] = {
    # Nothing ever goes wrong; with this plan every wrapper is a no-op.
    "none": (),
    # An ageing spinning disk: occasional transient read errors plus
    # rotational/queueing latency spikes.  Retries almost always recover.
    "flaky-hdd": (
        DeviceFaultProfile("hdd", error_rate=0.05, spike_rate=0.05, spike_s=0.04),
    ),
    # The SSD spends part of the replay in a degraded-bandwidth window
    # (firmware GC / RAID rebuild) while the HDD hiccups occasionally.
    "degraded-ssd": (
        DeviceFaultProfile("ssd", spike_rate=0.02, spike_s=0.002,
                           slow_windows=((8, 24, 4.0),)),
        DeviceFaultProfile("hdd", error_rate=0.01),
    ),
    # Heavy, persistent failures: enough to exhaust retries, trip circuit
    # breakers, and drop blocks — exercises the graceful-degradation path.
    "lossy": (
        DeviceFaultProfile("hdd", error_rate=0.55, spike_rate=0.1, spike_s=0.05),
        DeviceFaultProfile("ssd", error_rate=0.25),
    ),
    # Everything at once, at rates a resilient reader should mostly absorb.
    "chaos": (
        DeviceFaultProfile("hdd", error_rate=0.15, spike_rate=0.10, spike_s=0.05,
                           slow_windows=((5, 15, 3.0),), corruption_rate=0.05),
        DeviceFaultProfile("ssd", error_rate=0.05, spike_rate=0.05, spike_s=0.004,
                           slow_windows=((20, 30, 2.0),), corruption_rate=0.02),
    ),
}

#: Names accepted by ``FaultPlan.from_profile`` and every ``--faults`` flag.
FAULT_PROFILES: Tuple[str, ...] = tuple(sorted(_PROFILES))
