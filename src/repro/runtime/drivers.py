"""Canonical replay drivers, expressed as :class:`SimulationEngine` recipes.

Each function here is the *authoritative* implementation of a replay mode;
the historical import paths (``repro.core.pipeline.run_baseline``,
``repro.prefetch.driver.run_with_prefetcher``,
``repro.core.interactive.run_budgeted``, ``repro.core.temporal.run_temporal``
and ``repro.core.optimizer.AppAwareOptimizer``) are deprecation shims that
delegate here.  A driver builds a stage list + collector and hands them to
the engine — the loop itself lives in exactly one place now.

For the ``engine="batched"|"scalar"`` semantics shared by every driver see
:mod:`repro.runtime.engine` (the module docstring is the single reference;
the per-driver boilerplate that used to repeat it is gone).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.pipeline import PipelineContext
from repro.runtime.config import OptimizerConfig
from repro.runtime.context import RunContext
from repro.runtime.engine import (
    BudgetedCollector,
    SimulationEngine,
    StepMetricsCollector,
    movement_extras,
)
from repro.runtime.stages import (
    AdaptiveSigmaStage,
    BudgetedFetchStage,
    BudgetedPrefetchStage,
    DemandFetchStage,
    PreloadStage,
    RenderStage,
    SigmaState,
    Stage,
    StrategyPrefetchStage,
    TablePrefetchStage,
    TemporalPrefetchStage,
    TemporalRemapStage,
)
from repro.utils.validation import check_positive

__all__ = [
    "run_baseline",
    "run_with_prefetcher",
    "run_budgeted",
    "run_temporal",
    "AppAwareOptimizer",
    "OptimizerConfig",
]


def _resolve_ctx(ctx, tracer, registry, profiler) -> RunContext:
    """One context per run: either a caller-built :class:`RunContext` or
    the legacy tracer/registry/profiler keyword trio — never both."""
    if ctx is None:
        return RunContext(tracer=tracer, registry=registry, profiler=profiler)
    if tracer is not None or registry is not None or profiler is not None:
        raise ValueError("pass either ctx= or tracer=/registry=/profiler=, not both")
    return ctx


def run_baseline(
    context: PipelineContext,
    hierarchy,
    name: Optional[str] = None,
    protect_current_step: bool = False,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx: Optional[RunContext] = None,
) -> "RunResult":
    """Replay the path with a conventional policy (FIFO/LRU/ARC/...).

    Per step: fetch every visible block through the hierarchy, then render;
    no prediction, no prefetch, so the step time is ``io + render`` (§IV-D:
    "I/O is idle during the rendering time").

    ``protect_current_step=True`` applies Algorithm 1's eviction constraint
    (victims must not have been used at the current step) to the baseline
    too — an ablation knob; the paper's baselines run unprotected.

    ``tracer``/``registry``/``profiler`` and ``engine`` behave as described
    in :mod:`repro.runtime` (see :class:`~repro.runtime.context.RunContext`
    and the :mod:`repro.runtime.engine` reference).
    """
    policy_name = hierarchy.fastest.policy.name
    collector = StepMetricsCollector(
        name=name or f"baseline-{policy_name}",
        policy=policy_name,
        overlap_prefetch=False,
        observe="serial",
        charge=("io", "render"),
        extras_fn=movement_extras,
    )
    stages: List[Stage] = [
        DemandFetchStage(protect=protect_current_step),
        RenderStage(),
    ]
    ctx = _resolve_ctx(ctx, tracer, registry, profiler)
    return SimulationEngine(context, hierarchy, stages, collector, ctx=ctx, engine=engine).run()


def run_with_prefetcher(
    context: PipelineContext,
    hierarchy,
    prefetcher,
    preload_importance=None,
    preload_sigma: float = float("-inf"),
    max_prefetch_per_step: Optional[int] = None,
    name: Optional[str] = None,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx: Optional[RunContext] = None,
) -> "RunResult":
    """Replay ``context.path`` using ``prefetcher`` for predictions.

    Per step: demand-fetch the visible blocks (Algorithm 1's protected
    eviction), render, and overlap the strategy's prediction + prefetch
    with the render, charging the strategy's own query cost.  The paper's
    optimizer is equivalent to this driver with
    :class:`~repro.prefetch.strategies.TableLookupPrefetcher` plus the
    importance preload.

    ``preload_importance``/``preload_sigma`` optionally run the Step 2
    importance preload first (pass the table the paper's method uses, or
    ``None`` for a cold start).  ``registry`` additionally records prefetch
    queue depth and precision/recall counters (a prefetch at step *i* is
    *useful* when the block is demanded at step *i + 1*).

    ``tracer``/``registry``/``profiler`` and ``engine`` behave as described
    in the :mod:`repro.runtime.engine` reference.
    """
    collector = StepMetricsCollector(
        name=name or f"prefetch-{prefetcher.name}",
        policy=f"prefetch-{prefetcher.name}",
        overlap_prefetch=True,
        observe="overlapped",
        charge=("io", "lookup", "prefetch", "render"),
        extras_fn=movement_extras,
    )
    stages: List[Stage] = []
    if preload_importance is not None:
        stages.append(PreloadStage(lambda: preload_importance.ids_above(preload_sigma)))
    stages += [
        DemandFetchStage(protect=True),
        RenderStage(),
        StrategyPrefetchStage(prefetcher, max_prefetch_per_step=max_prefetch_per_step),
    ]
    ctx = _resolve_ctx(ctx, tracer, registry, profiler)
    return SimulationEngine(context, hierarchy, stages, collector, ctx=ctx, engine=engine).run()


def run_budgeted(
    context: PipelineContext,
    hierarchy,
    io_budget_s: float,
    importance=None,
    visible_table=None,
    sigma: float = float("-inf"),
    preload: bool = False,
    name: str = "budgeted",
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx: Optional[RunContext] = None,
) -> "BudgetedResult":
    """Replay with a per-step demand-I/O deadline.

    Per step: visible blocks already resident are free — their (cheap)
    fast-memory read time is recorded in ``io_time_s`` but never charged
    against the budget, so a fully-resident frame always renders complete.
    Missing blocks are fetched most-important-first (when ``importance``
    is given) until the accumulated *miss* fetch time would exceed
    ``io_budget_s`` — the rest are holes this frame.  When
    ``visible_table`` is given, the predicted next view is prefetched
    during rendering exactly as in Algorithm 1 (the prefetch rides the
    render time, not the budget).

    On top of the hierarchy's fetch metrics, ``registry`` records a
    per-step ``frame_coverage`` histogram and a ``frame_time_seconds``
    histogram.  ``tracer``/``profiler`` and ``engine`` behave as described
    in the :mod:`repro.runtime.engine` reference (the budget cut-off keeps
    the miss loop sequential on either engine).
    """
    check_positive("io_budget_s", io_budget_s)
    collector = BudgetedCollector(name=name, io_budget_s=io_budget_s)
    stages: List[Stage] = []
    if preload and importance is not None:
        stages.append(PreloadStage(lambda: importance.ids_above(sigma)))
    stages.append(BudgetedFetchStage(io_budget_s, importance=importance))
    if visible_table is not None:
        stages.append(BudgetedPrefetchStage(visible_table, importance=importance, sigma=sigma))
    stages.append(RenderStage(count="rendered", span=False))
    ctx = _resolve_ctx(ctx, tracer, registry, profiler)
    return SimulationEngine(context, hierarchy, stages, collector, ctx=ctx, engine=engine).run()


def run_temporal(
    context: PipelineContext,
    series,
    hierarchy,
    steps_per_timestep: int,
    visible_table=None,
    importance=None,
    sigma: float = float("-inf"),
    prefetch_next_timestep: bool = True,
    lookup_cost=None,
    name: str = "temporal",
    ctx: Optional[RunContext] = None,
) -> "RunResult":
    """Replay a camera path over a time-varying volume.

    As the user orbits, the simulation time also advances, so the working
    set is the *visible blocks of the current timestep*.  Extends
    Algorithm 1 with temporal prefetch: during rendering it prefetches the
    predicted visible set of the **next timestep** — the same spatial
    prediction, shifted one step forward in time.

    Parameters
    ----------
    context:
        The spatial replay context (path + grid + visible sets).
    series:
        The time-varying volume; timestep at path step ``i`` is
        ``min(i // steps_per_timestep, n_timesteps - 1)``.
    hierarchy:
        Must be sized for the *temporal* id space
        (``series.n_total_blocks(grid)`` blocks).
    visible_table, importance, sigma:
        The paper's tables; when given, prefetch pulls the σ-filtered
        predicted set of the next timestep during rendering.
    prefetch_next_timestep:
        Turn the temporal prefetch off to measure its contribution.
    """
    from repro.tables.visible_table import LookupCostModel

    lookup_cost = lookup_cost or LookupCostModel()
    remap = TemporalRemapStage(series, steps_per_timestep)
    collector = StepMetricsCollector(
        name=name,
        policy="temporal-app-aware" if prefetch_next_timestep else "temporal-lru",
        overlap_prefetch=True,
        observe=None,
        charge=(),
        extras_fn=lambda engine: {
            "n_timesteps": float(series.n_timesteps),
            "backing_bytes": float(engine.hierarchy.backing_bytes),
        },
        fault_extras=False,
        metrics=False,
    )
    stages: List[Stage] = []
    if importance is not None:
        stages.append(PreloadStage(lambda: [int(b) for b in importance.ids_above(sigma)]))
    stages += [
        remap,
        DemandFetchStage(protect=True),
        RenderStage(count="visible", span=False, emit_trace=False),
    ]
    if prefetch_next_timestep:
        stages.append(
            TemporalPrefetchStage(
                remap, visible_table, importance=importance, sigma=sigma, lookup_cost=lookup_cost
            )
        )
    return SimulationEngine(
        context, hierarchy, stages, collector, ctx=ctx or RunContext(), engine="scalar"
    ).run()


class AppAwareOptimizer:
    """Replays camera paths with the paper's application-aware policy.

    Composes the three steps of Algorithm 1 at run time:

    1. **Preload** (lines 1–7): blocks whose importance exceeds σ are
       placed into the hierarchy in importance order before the first view.
    2. **Demand fetch** (lines 8–19): per view point, every visible block
       is brought to fast memory; eviction candidates must not have been
       used at the current step (``time < i``), falling back to a bypass
       when the working set alone fills the cache.
    3. **Prefetch overlapped with rendering** (lines 20–22): the nearest
       sampled position's ``T_visible`` entry predicts the next view's
       blocks; those above σ are prefetched while the frame renders, so
       the step costs ``io + max(prefetch, render)`` instead of
       ``io + render``.
    """

    def __init__(
        self,
        visible_table,
        importance_table,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        self.visible_table = visible_table
        self.importance_table = importance_table
        self.config = config or OptimizerConfig()
        self.sigma = self.config.resolve_sigma(importance_table)

    # -- Alg. 1 lines 1-7 ------------------------------------------------------

    def preload(self, hierarchy) -> "dict[str, int]":
        """Place important blocks into every level before the first view."""
        return hierarchy.preload(self.importance_table.ids_above(self.sigma))

    # -- Alg. 1 main loop ------------------------------------------------------

    def run(
        self,
        context: PipelineContext,
        hierarchy,
        name: str = "app-aware",
        tracer=None,
        registry=None,
        profiler=None,
        engine: str = "batched",
        ctx: Optional[RunContext] = None,
    ) -> "RunResult":
        """Replay ``context.path`` with Algorithm 1 on ``hierarchy``.

        ``registry`` additionally records prefetch queue depth and
        precision/recall counters (a prefetch at step *i* counts as
        *useful* when the block is demanded at step *i + 1*).
        ``tracer``/``profiler`` and ``engine`` behave as described in the
        :mod:`repro.runtime.engine` reference.
        """
        cfg = self.config
        sigma_state = SigmaState(self.sigma, cfg.sigma_percentile)
        collector = StepMetricsCollector(
            name=name,
            policy="app-aware",
            overlap_prefetch=True,
            observe="overlapped",
            charge=("io", "lookup", "prefetch", "render"),
            extras_fn=lambda engine: {
                "sigma": self.sigma,
                "final_sigma": sigma_state.sigma,
                **movement_extras(engine),
            },
        )
        stages: List[Stage] = []
        if cfg.preload:
            stages.append(PreloadStage(lambda: self.importance_table.ids_above(self.sigma)))
        stages += [
            DemandFetchStage(protect=True),
            RenderStage(),
            TablePrefetchStage(
                self.visible_table,
                self.importance_table,
                sigma_state,
                cfg.lookup_cost,
                use_importance_filter=cfg.use_importance_filter,
                max_prefetch_per_step=cfg.max_prefetch_per_step,
                enabled=cfg.prefetch,
            ),
        ]
        if cfg.adaptive_sigma and cfg.prefetch:
            stages.append(AdaptiveSigmaStage(sigma_state, self.importance_table, cfg))
        ctx = _resolve_ctx(ctx, tracer, registry, profiler)
        return SimulationEngine(
            context, hierarchy, stages, collector, ctx=ctx, engine=engine
        ).run()
