"""The single replay step loop, composed from pluggable stages.

:class:`SimulationEngine` is what the five legacy drivers each hand-rolled:
one pass over a camera path's visible sets, calling an ordered list of
:class:`~repro.runtime.stages.Stage` objects per view point and handing the
finished :class:`~repro.runtime.stages.Frame` to a *collector* that rows it
up into the run's result type.  A legacy driver is now a *recipe* — a
particular stage list plus collector — built by
:mod:`repro.runtime.drivers`.

Engine variants (see :data:`repro.runtime.config.REPLAY_ENGINES`):

- ``"batched"`` (default) — stages drive the hierarchy through the
  vectorized ``fetch_many``/``prefetch_many`` fast paths, one call per
  step;
- ``"scalar"`` — stages issue one ``fetch`` per block, the compatibility
  path.

Both produce identical results: simulated clocks, cache stats, byte
ledger, and trace stream are pinned against each other (and against
frozen copies of the pre-runtime drivers) by the equivalence suite.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import RunResult, StepMetrics
from repro.runtime.config import REPLAY_ENGINES
from repro.runtime.context import RunContext
from repro.runtime.stages import Frame, Stage

__all__ = [
    "SimulationEngine",
    "Collector",
    "StepMetricsCollector",
    "BudgetedCollector",
    "movement_extras",
]

#: sim-clock channel -> StepMetrics field, for end-of-run charge_sim.
_CHANNEL_FIELDS = {
    "io": "io_time_s",
    "lookup": "lookup_time_s",
    "prefetch": "prefetch_time_s",
    "render": "render_time_s",
}


class Collector:
    """The bookkeeping stage: snapshots each finished frame into a result.

    Unlike ordinary stages, the collector's ``start`` runs *first* (its
    metrics are created before any stage side effects) and its ``collect``
    runs *last* each step (after every stage wrote the frame).
    """

    def start(self, engine) -> None:
        """Called before any stage's ``start``."""

    def collect(self, engine, frame: Frame) -> None:
        """Called after every stage's ``step`` for this frame."""

    def finish(self, engine):
        """Called after every stage's ``finish``; returns the run result."""
        raise NotImplementedError


class SimulationEngine:
    """Replays a :class:`~repro.core.pipeline.PipelineContext` through a
    stage recipe against one hierarchy.

    Parameters
    ----------
    context:
        The precomputed replay context (path + grid + visible sets +
        render cost model).
    hierarchy:
        The storage hierarchy the stages fetch through; the run context's
        services are installed on it at construction.
    stages:
        Ordered stage list; each runs once per step in this order.
    collector:
        The bookkeeping stage producing the final result object.
    ctx:
        Cross-cutting services (tracer/metrics/profiler/faults/clock/rng);
        ``None`` builds a default (null services, adopt the hierarchy's).
    engine:
        ``"batched"`` or ``"scalar"`` — see the module docstring.
    """

    def __init__(
        self,
        context,
        hierarchy,
        stages: Sequence[Stage],
        collector: Collector,
        ctx: Optional[RunContext] = None,
        engine: str = "batched",
        tenant: Optional[str] = None,
    ) -> None:
        if engine not in REPLAY_ENGINES:
            raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
        self.context = context
        self.hierarchy = hierarchy
        self.stages: List[Stage] = list(stages)
        self.collector = collector
        self.ctx = (ctx if ctx is not None else RunContext()).bind(hierarchy)
        self.engine = engine
        self.batched = engine == "batched"
        #: Tenant label stamped on every fetch the stages issue (quota
        #: accounting in a shared hierarchy); None outside multi-tenant runs.
        self.tenant = tenant

    def run(self):
        """Execute the recipe over every view point; returns the result."""
        self.collector.start(self)
        for stage in self.stages:
            stage.start(self)
        for i, ids in enumerate(self.context.visible_sets):
            frame = Frame(step=i, ids=ids)
            for stage in self.stages:
                stage.step(self, frame)
            self.collector.collect(self, frame)
        for stage in self.stages:
            stage.finish(self)
        return self.collector.finish(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = [getattr(s, "name", type(s).__name__) for s in self.stages]
        return f"SimulationEngine(engine={self.engine!r}, stages={names})"


def movement_extras(engine) -> Dict[str, float]:
    """The data-movement extras every RunResult-producing recipe reports."""
    hierarchy = engine.hierarchy
    return {
        "backing_bytes": float(hierarchy.backing_bytes),
        "bytes_moved": float(
            hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
        ),
    }


class StepMetricsCollector(Collector):
    """Rows frames into :class:`StepMetrics` and builds a :class:`RunResult`.

    Parameters
    ----------
    name, policy, overlap_prefetch:
        The result's identity fields.
    observe:
        What the per-step ``frame_time_seconds`` histogram sees:
        ``"serial"`` (``io + lookup + render``), ``"overlapped"``
        (``io + lookup + max(prefetch, render)``), or ``None``.
    charge:
        Sim-clock channels charged on the profiler at run end, in order
        (subset of ``io``/``lookup``/``prefetch``/``render``).
    extras_fn:
        ``engine -> dict`` of result extras (ordering preserved).
    fault_extras:
        Append dropped-block/degraded-frame/fault-stats extras when the
        hierarchy carries a fault injector (gated so fault-free summaries
        stay byte-identical to pre-fault snapshots).
    metrics:
        ``False`` skips the frame-time histogram entirely (the temporal
        driver's historical behaviour).
    """

    def __init__(
        self,
        name: str,
        policy: str,
        overlap_prefetch: bool,
        observe: Optional[str] = "serial",
        charge: Sequence[str] = ("io", "render"),
        extras_fn: Optional[Callable[..., Dict[str, float]]] = movement_extras,
        fault_extras: bool = True,
        metrics: bool = True,
    ) -> None:
        if observe not in (None, "serial", "overlapped"):
            raise ValueError(f"observe must be None, 'serial' or 'overlapped', got {observe!r}")
        unknown = [ch for ch in charge if ch not in _CHANNEL_FIELDS]
        if unknown:
            raise ValueError(f"unknown sim channels {unknown}; known: {sorted(_CHANNEL_FIELDS)}")
        self.name = name
        self.policy = policy
        self.overlap_prefetch = overlap_prefetch
        self.observe = observe
        self.charge = tuple(charge)
        self.extras_fn = extras_fn
        self.fault_extras = fault_extras
        self.metrics = metrics
        self.steps: List[StepMetrics] = []
        self.dropped_blocks = 0
        self.degraded_frames = 0
        self._frame_hist = None
        self._faulty = False

    def start(self, engine) -> None:
        self.steps = []
        self.dropped_blocks = 0
        self.degraded_frames = 0
        self._faulty = engine.hierarchy.fault_injector is not None
        if self.metrics:
            self._frame_hist = engine.ctx.registry.histogram("frame_time_seconds", kind="sim")

    def collect(self, engine, frame: Frame) -> None:
        row = StepMetrics(
            step=frame.step,
            n_visible=frame.n_visible,
            n_fast_misses=frame.n_fast_misses,
            io_time_s=frame.io_time_s,
            lookup_time_s=frame.lookup_time_s,
            prefetch_time_s=frame.prefetch_time_s,
            render_time_s=frame.render_time_s,
            n_prefetched=frame.n_prefetched,
        )
        if frame.n_dropped:
            # Graceful degradation: the frame rendered without the blocks
            # the storage stack could not deliver.
            self.dropped_blocks += frame.n_dropped
            self.degraded_frames += 1
        if self.metrics and engine.ctx.registry.enabled and self.observe is not None:
            value = (
                row.step_total_serial_s
                if self.observe == "serial"
                else row.step_total_overlapped_s
            )
            self._frame_hist.observe(value)
        self.steps.append(row)

    def finish(self, engine) -> RunResult:
        profiler = engine.ctx.profiler
        if profiler.enabled:
            for channel in self.charge:
                field = _CHANNEL_FIELDS[channel]
                profiler.charge_sim(channel, sum(getattr(s, field) for s in self.steps))
        extras = dict(self.extras_fn(engine)) if self.extras_fn is not None else {}
        if self.fault_extras and self._faulty:
            # Added only under fault injection so fault-free summaries stay
            # byte-identical to pre-faults snapshots.
            extras["dropped_blocks"] = float(self.dropped_blocks)
            extras["degraded_frames"] = float(self.degraded_frames)
            extras["fault_stats"] = engine.hierarchy.fault_injector.stats.as_dict()
        return RunResult(
            name=self.name,
            policy=self.policy,
            overlap_prefetch=self.overlap_prefetch,
            steps=self.steps,
            hierarchy_stats=engine.hierarchy.stats(),
            extras=extras,
        )


class BudgetedCollector(Collector):
    """Rows frames into :class:`~repro.core.interactive.BudgetedStep` and
    builds a :class:`~repro.core.interactive.BudgetedResult`."""

    def __init__(self, name: str, io_budget_s: float) -> None:
        self.name = name
        self.io_budget_s = float(io_budget_s)
        self.steps: list = []
        self._frame_hist = None
        self._coverage_hist = None

    def start(self, engine) -> None:
        registry = engine.ctx.registry
        self.steps = []
        self._frame_hist = registry.histogram("frame_time_seconds", kind="sim")
        self._coverage_hist = registry.histogram(
            "frame_coverage", buckets=tuple(k / 10.0 for k in range(11))
        )

    def collect(self, engine, frame: Frame) -> None:
        from repro.core.interactive import BudgetedStep

        rendered = frame.rendered if frame.rendered is not None else []
        row = BudgetedStep(
            step=frame.step,
            n_visible=frame.n_visible,
            n_rendered=len(rendered),
            io_time_s=frame.io_time_s,
            prefetch_time_s=frame.prefetch_time_s,
            rendered_ids=np.asarray(sorted(rendered), dtype=np.int64),
            n_dropped=frame.n_dropped,
        )
        if engine.ctx.registry.enabled:
            self._frame_hist.observe(
                frame.io_time_s + max(frame.prefetch_time_s, frame.render_time_s)
            )
            self._coverage_hist.observe(row.coverage)
        self.steps.append(row)

    def finish(self, engine):
        from repro.core.interactive import BudgetedResult

        return BudgetedResult(name=self.name, io_budget_s=self.io_budget_s, steps=self.steps)
