"""Composable step-loop stages of the :class:`~repro.runtime.engine.SimulationEngine`.

One replay step of every legacy driver decomposes into the same pipeline:

    demand fetch -> render -> overlap prefetch -> budget enforcement -> bookkeeping

Each phase is a :class:`Stage`: an object with three hooks —
``start(engine)`` once before the loop, ``step(engine, frame)`` once per
view point (in recipe order), and ``finish(engine)`` once after the loop.
A recipe is an ordered list of stages plus a *collector* (the bookkeeping
stage that rows up :class:`~repro.core.metrics.StepMetrics` and builds the
result).  The stages below reproduce the five legacy drivers exactly —
byte ledger, time ledger, cache stats, and trace stream are pinned against
frozen copies of the seed loops by ``tests/runtime/test_equivalence.py``.

Write a custom stage by subclassing :class:`Stage` and registering it with
:func:`repro.runtime.registries.register_stage`; see ``docs/TUTORIAL.md``
("Writing a custom stage") for a worked logging-stage example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "Frame",
    "Stage",
    "PreloadStage",
    "DemandFetchStage",
    "RenderStage",
    "StrategyPrefetchStage",
    "TablePrefetchStage",
    "AdaptiveSigmaStage",
    "BudgetedFetchStage",
    "BudgetedPrefetchStage",
    "TemporalRemapStage",
    "TemporalPrefetchStage",
    "SigmaState",
]


@dataclass
class Frame:
    """Mutable per-step state the stages read and write.

    ``ids`` starts as the step's visible block ids; a remapping stage
    (e.g. temporal) may replace it before the demand fetch.  Timing fields
    accumulate simulated seconds; the collector snapshots them into the
    immutable result row at the end of the step.
    """

    step: int
    ids: Any  # np.ndarray of visible block ids
    io_time_s: float = 0.0
    lookup_time_s: float = 0.0
    prefetch_time_s: float = 0.0
    render_time_s: float = 0.0
    n_fast_misses: int = 0
    n_prefetched: int = 0
    n_dropped: int = 0
    #: budgeted recipes: block ids actually available to the renderer.
    rendered: Optional[List[int]] = None

    @property
    def n_visible(self) -> int:
        return len(self.ids)


class Stage:
    """Base class: one pluggable phase of the engine's step loop."""

    name = "stage"

    def start(self, engine) -> None:
        """Called once, before the first step (preloads, metric setup)."""

    def step(self, engine, frame: Frame) -> None:
        """Called once per view point, in recipe order."""

    def finish(self, engine) -> None:
        """Called once, after the last step (final accounting)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# preload


class PreloadStage(Stage):
    """Algorithm 1 lines 1-7: place important blocks before the first view.

    ``ids_fn`` defers the id computation to run start so σ resolution and
    table construction stay owned by the recipe builder.
    """

    name = "preload"

    def __init__(self, ids_fn: Callable[[], Sequence[int]]) -> None:
        self.ids_fn = ids_fn

    def start(self, engine) -> None:
        with engine.ctx.profiler.span("preload"):
            engine.hierarchy.preload(self.ids_fn())


# ---------------------------------------------------------------------------
# demand fetch


class DemandFetchStage(Stage):
    """Bring every visible block to fast memory (Alg. 1 lines 8-19).

    ``protect=True`` applies the paper's eviction constraint: victims must
    not have been used at the current step (``min_free_step = i``).
    Batched engines issue one ``fetch_many`` per step; scalar engines one
    ``fetch`` per block — identical results, different constant factors.
    """

    name = "demand-fetch"

    def __init__(self, protect: bool = True) -> None:
        self.protect = protect

    def step(self, engine, frame: Frame) -> None:
        hierarchy = engine.hierarchy
        fastest = hierarchy.fastest
        min_free = frame.step if self.protect else None
        fast_misses_before = fastest.stats.misses
        tenant = getattr(engine, "tenant", None)
        with engine.ctx.profiler.span("fetch"):
            if engine.batched:
                res = hierarchy.fetch_many(
                    frame.ids, frame.step, min_free_step=min_free, tenant=tenant
                )
                frame.io_time_s = res.time_s
                frame.n_dropped = res.n_dropped
            else:
                io = 0.0
                dropped = 0
                for b in frame.ids:
                    r = hierarchy.fetch(
                        int(b), frame.step, min_free_step=min_free, tenant=tenant
                    )
                    io += r.time_s
                    if r.dropped:
                        dropped += 1
                frame.io_time_s = io
                frame.n_dropped = dropped
        frame.n_fast_misses = fastest.stats.misses - fast_misses_before


class BudgetedFetchStage(Stage):
    """Deadline-bounded demand fetch: budget enforcement on the miss stream.

    Resident blocks are free with respect to the budget (their cheap
    fast-memory read time is recorded but never charged); missing blocks
    are fetched most-important-first until the accumulated *miss* time
    would exceed ``io_budget_s`` — the rest stay holes this frame.  Sets
    ``frame.rendered`` to the ids available at the deadline.
    """

    name = "budgeted-fetch"

    def __init__(self, io_budget_s: float, importance=None) -> None:
        self.io_budget_s = float(io_budget_s)
        self.importance = importance

    def step(self, engine, frame: Frame) -> None:
        hierarchy = engine.hierarchy
        fastest = hierarchy.fastest
        importance = self.importance
        i = frame.step
        ids = frame.ids
        if engine.batched:
            ids_arr = np.ascontiguousarray(ids, dtype=np.int64)
            mask = fastest.contains_many(ids_arr)
            resident = ids_arr[mask]
            missing_arr = ids_arr[~mask]
            if importance is not None and missing_arr.size:
                missing_arr = missing_arr[
                    np.argsort(-importance.scores[missing_arr], kind="stable")
                ]
            missing = missing_arr.tolist()
            rendered = resident.tolist()
        else:
            ids_int = [int(b) for b in ids]
            resident = [b for b in ids_int if hierarchy.contains_fast(b)]
            resident_set = set(resident)
            missing = [b for b in ids_int if b not in resident_set]
            if importance is not None and missing:
                order = np.argsort(-importance.scores[np.asarray(missing)], kind="stable")
                missing = [missing[k] for k in order]
            rendered = list(resident)

        miss_time = 0.0
        step_dropped = 0
        with engine.ctx.profiler.span("fetch"):
            # Hits: account + touch; free wrt the budget.
            if engine.batched:
                res = hierarchy.fetch_many(resident, i, min_free_step=i)
                hit_time = res.time_s
                if res.n_dropped:  # resident copy unreadable, nothing served
                    step_dropped += res.n_dropped
                    gone = set(res.dropped_ids)
                    rendered = [b for b in rendered if b not in gone]
            else:
                hit_time = 0.0
                for b in resident:
                    r = hierarchy.fetch(b, i, min_free_step=i)
                    hit_time += r.time_s
                    if r.dropped:
                        step_dropped += 1
                        rendered.remove(b)
            for b in missing:
                r = hierarchy.fetch(b, i, min_free_step=i)
                miss_time += r.time_s
                if r.dropped:
                    step_dropped += 1  # charged time but no data: a hole
                else:
                    rendered.append(b)
                if miss_time >= self.io_budget_s:
                    break  # deadline: remaining blocks stay holes this frame
        frame.io_time_s = hit_time + miss_time
        frame.n_dropped = step_dropped
        frame.rendered = rendered


# ---------------------------------------------------------------------------
# render


class RenderStage(Stage):
    """Charge the render cost model for the blocks that actually arrived.

    ``count`` selects what the renderer sees: ``"visible-minus-dropped"``
    (graceful degradation — fault-dropped blocks are holes),
    ``"visible"`` (ignore drops; the temporal driver's historical
    behaviour), or ``"rendered"`` (the budgeted recipes' resident set).
    """

    name = "render"

    _COUNTS = ("visible-minus-dropped", "visible", "rendered")

    def __init__(
        self,
        count: str = "visible-minus-dropped",
        span: bool = True,
        emit_trace: bool = True,
    ) -> None:
        if count not in self._COUNTS:
            raise ValueError(f"count must be one of {self._COUNTS}, got {count!r}")
        self.count = count
        self.span = span
        self.emit_trace = emit_trace

    def _n_blocks(self, frame: Frame) -> int:
        if self.count == "rendered":
            return len(frame.rendered or ())
        if self.count == "visible":
            return frame.n_visible
        return frame.n_visible - frame.n_dropped

    def step(self, engine, frame: Frame) -> None:
        model = engine.context.render_model
        if self.span:
            with engine.ctx.profiler.span("render"):
                render = model.render_time(self._n_blocks(frame))
        else:
            render = model.render_time(self._n_blocks(frame))
        frame.render_time_s = render
        if self.emit_trace and engine.ctx.tracer.enabled:
            engine.ctx.tracer.record("render", frame.step, time_s=render)


# ---------------------------------------------------------------------------
# overlap prefetch


class _OverlapPrefetchBase(Stage):
    """Shared machinery: usefulness scoreboard + capped issue loop.

    A prefetch issued at step *i* counts as *useful* when the demand
    stream touches the block at step *i + 1*; the precision/recall
    counters live on the registry so unmetered runs pay nothing.
    """

    def __init__(self, max_prefetch_per_step: Optional[int] = None, dedupe: bool = False) -> None:
        self.max_prefetch_per_step = max_prefetch_per_step
        self.dedupe = dedupe
        self._cap = 0
        self._issued_prev: "set[int]" = set()  # scalar engine
        self._issued_prev_arr = np.empty(0, dtype=np.int64)  # batched engine
        self._queue_gauge = None
        self._issued_counter = None
        self._useful_counter = None
        self._demanded_counter = None

    def start(self, engine) -> None:
        registry = engine.ctx.registry
        self._queue_gauge = registry.gauge("prefetch_queue_depth")
        self._issued_counter = registry.counter("prefetch_evaluated_total")
        self._useful_counter = registry.counter("prefetch_useful_total")
        self._demanded_counter = registry.counter("prefetch_demand_window_total")
        self._issued_prev = set()
        self._issued_prev_arr = np.empty(0, dtype=np.int64)
        cap = self.max_prefetch_per_step
        self._cap = cap if cap is not None else engine.hierarchy.fastest.capacity

    def _scoreboard(self, engine, frame: Frame) -> None:
        # Prefetch usefulness: blocks prefetched at step i-1 that the
        # demand stream touches at step i were correct predictions.
        if not engine.ctx.registry.enabled:
            return
        ids = frame.ids
        if engine.batched:
            if self._issued_prev_arr.size:
                self._issued_counter.inc(self._issued_prev_arr.size)
                # Set membership beats np.isin at visible-set sizes.
                demand_now = set(np.asarray(ids).tolist())
                self._useful_counter.inc(
                    sum(1 for b in self._issued_prev_arr.tolist() if b in demand_now)
                )
            self._issued_prev_arr = np.empty(0, dtype=np.int64)
        else:
            demand_now = {int(b) for b in ids}
            if self._issued_prev:
                self._issued_counter.inc(len(self._issued_prev))
                self._useful_counter.inc(len(self._issued_prev & demand_now))
            self._issued_prev = set()
        if frame.step > 0:
            self._demanded_counter.inc(len(ids))

    def _issue(self, engine, frame: Frame, candidates) -> None:
        """The capped prefetch loop; fills prefetch_time_s/n_prefetched."""
        hierarchy = engine.hierarchy
        registry = engine.ctx.registry
        i = frame.step
        if engine.batched:
            issued, prefetch_time = hierarchy.prefetch_many(
                candidates, i, min_free_step=i, max_fetch=self._cap, dedupe=self.dedupe
            )
            n_prefetched = len(issued)
            if registry.enabled:
                self._issued_prev_arr = np.asarray(issued, dtype=np.int64)
        else:
            prefetch_time = 0.0
            n_prefetched = 0
            # With dedupe, a predictor may repeat ids; fetch each at most once.
            attempted: Optional[set] = set() if self.dedupe else None
            for b in candidates:
                if n_prefetched >= self._cap:
                    break
                b = int(b)
                if attempted is not None:
                    if b in attempted or hierarchy.contains_fast(b):
                        continue
                    attempted.add(b)
                elif hierarchy.contains_fast(b):
                    continue
                prefetch_time += hierarchy.fetch(
                    b, i, prefetch=True, min_free_step=i
                ).time_s
                n_prefetched += 1
                if registry.enabled:
                    self._issued_prev.add(b)
        frame.prefetch_time_s = prefetch_time
        frame.n_prefetched = n_prefetched


class StrategyPrefetchStage(_OverlapPrefetchBase):
    """Overlapped prefetch driven by a :class:`~repro.prefetch.base.Prefetcher`.

    The strategy's prediction runs in its own ``predict`` profiler span
    and its per-query compute cost is charged to ``lookup_time_s``;
    duplicate candidate ids are fetched at most once (attempted-set
    semantics).
    """

    name = "strategy-prefetch"

    def __init__(self, prefetcher, max_prefetch_per_step: Optional[int] = None) -> None:
        super().__init__(max_prefetch_per_step=max_prefetch_per_step, dedupe=True)
        self.prefetcher = prefetcher

    def start(self, engine) -> None:
        self.prefetcher.reset()
        # Let index-backed strategies resolve the whole path in one batch;
        # per-step predictions (and simulated costs) are unchanged.
        self.prefetcher.prime(engine.context.path.positions)
        super().start(engine)

    def step(self, engine, frame: Frame) -> None:
        self._scoreboard(engine, frame)
        profiler = engine.ctx.profiler
        registry = engine.ctx.registry
        positions = engine.context.path.positions
        with profiler.span("predict"):
            candidates = self.prefetcher.predict(frame.step, positions[frame.step], frame.ids)
        frame.lookup_time_s = self.prefetcher.query_cost_s()
        if registry.enabled:
            self._queue_gauge.set(len(candidates))
        with profiler.span("prefetch"):
            self._issue(engine, frame, candidates)


class _BatchedTableLookupMixin:
    """Resolve every frame's nearest ``T_visible`` key in ONE KD-tree query.

    The per-point results are bit-identical to single-frame
    :meth:`VisibleTable.lookup` calls (same tree, same metric), and the
    simulated lookup cost is still charged per frame — so the ledger is
    byte-stable whether ``batch_lookups`` is on or off (tested).  Stages
    mix this in and call :meth:`_predicted` instead of ``lookup``.
    """

    #: Flip to False to fall back to one KD-tree query per frame.
    batch_lookups = True

    _path_keys: Optional[np.ndarray] = None

    def _reset_path_keys(self) -> None:
        self._path_keys = None

    def _predicted(self, engine, step: int) -> np.ndarray:
        table = self.visible_table
        if not self.batch_lookups:
            _, predicted = table.lookup(engine.context.path.positions[step])
            return predicted
        if self._path_keys is None:
            self._path_keys, _ = table.nearest_entries(engine.context.path.positions)
        return table.entry(int(self._path_keys[step]))


class SigmaState:
    """Mutable σ shared between the table prefetch stage and the adaptive
    controller (the paper fixes σ; the controller tunes it online)."""

    __slots__ = ("sigma", "percentile")

    def __init__(self, sigma: float, percentile: float) -> None:
        self.sigma = float(sigma)
        self.percentile = float(percentile)


class TablePrefetchStage(_BatchedTableLookupMixin, _OverlapPrefetchBase):
    """Algorithm 1 lines 20-22: ``T_visible`` lookup, σ-filter, prefetch.

    The whole predict-filter-issue sequence shares one ``prefetch``
    profiler span (matching the optimizer's historical profile shape) and
    the lookup cost model charges the simulated table-query time.
    ``enabled=False`` keeps the usefulness scoreboard (and its metrics)
    alive while skipping the issuance — the ``prefetch=False`` ablation.
    """

    name = "table-prefetch"

    def __init__(
        self,
        visible_table,
        importance_table,
        sigma_state: SigmaState,
        lookup_cost,
        use_importance_filter: bool = True,
        max_prefetch_per_step: Optional[int] = None,
        enabled: bool = True,
    ) -> None:
        super().__init__(max_prefetch_per_step=max_prefetch_per_step, dedupe=False)
        self.visible_table = visible_table
        self.importance_table = importance_table
        self.sigma_state = sigma_state
        self.lookup_cost = lookup_cost
        self.use_importance_filter = use_importance_filter
        self.enabled = enabled

    def start(self, engine) -> None:
        self._reset_path_keys()
        super().start(engine)

    def step(self, engine, frame: Frame) -> None:
        self._scoreboard(engine, frame)
        if not self.enabled:
            return
        registry = engine.ctx.registry
        with engine.ctx.profiler.span("prefetch"):
            predicted = self._predicted(engine, frame.step)
            frame.lookup_time_s = self.lookup_cost.query_time(self.visible_table.n_entries)
            if self.use_importance_filter:
                candidates = self.importance_table.filter_and_rank(
                    predicted, self.sigma_state.sigma
                )
            else:
                candidates = predicted
            if registry.enabled:
                self._queue_gauge.set(len(candidates))
            self._issue(engine, frame, candidates)


class AdaptiveSigmaStage(Stage):
    """Online σ controller: keep the prefetch stream inside the overlap
    window.  Overrun -> prefetch less (raise σ); big slack -> prefetch
    more (lower σ).  Runs after the prefetch stage each step."""

    name = "adaptive-sigma"

    def __init__(self, sigma_state: SigmaState, importance_table, config) -> None:
        self.sigma_state = sigma_state
        self.importance_table = importance_table
        self.config = config

    def step(self, engine, frame: Frame) -> None:
        cfg = self.config
        state = self.sigma_state
        lo, hi = cfg.sigma_bounds
        if frame.prefetch_time_s > frame.render_time_s:
            state.percentile = min(hi, state.percentile + cfg.sigma_step)
        elif frame.prefetch_time_s < 0.5 * frame.render_time_s:
            state.percentile = max(lo, state.percentile - cfg.sigma_step)
        state.sigma = self.importance_table.threshold_for_percentile(state.percentile)


class BudgetedPrefetchStage(_BatchedTableLookupMixin, Stage):
    """Budgeted-replay prefetch: the predicted next view rides the render.

    Candidates are sliced to the fastest level's capacity *before* the
    resident skip (skipped candidates still consume queue slots — the
    historical scalar semantics), and the prefetch time is never charged
    against the frame budget.
    """

    name = "budgeted-prefetch"

    def __init__(self, visible_table, importance=None, sigma: float = float("-inf")) -> None:
        self.visible_table = visible_table
        self.importance = importance
        self.sigma = float(sigma)

    def start(self, engine) -> None:
        self._reset_path_keys()

    def step(self, engine, frame: Frame) -> None:
        hierarchy = engine.hierarchy
        fastest = hierarchy.fastest
        i = frame.step
        prefetch_time = 0.0
        with engine.ctx.profiler.span("prefetch"):
            predicted = self._predicted(engine, i)
            if self.importance is not None:
                candidates = self.importance.filter_and_rank(predicted, self.sigma)
            else:
                candidates = predicted
            # Slice *before* the resident skip (scalar semantics:
            # skipped candidates still consume queue slots).
            if engine.batched:
                _, prefetch_time = hierarchy.prefetch_many(
                    candidates[: fastest.capacity], i, min_free_step=i
                )
            else:
                for b in candidates[: fastest.capacity]:
                    b = int(b)
                    if hierarchy.contains_fast(b):
                        continue
                    prefetch_time += hierarchy.fetch(
                        b, i, prefetch=True, min_free_step=i
                    ).time_s
        frame.prefetch_time_s = prefetch_time


# ---------------------------------------------------------------------------
# temporal


class TemporalRemapStage(Stage):
    """Map the step's spatial visible set into the current timestep's id
    space (time-varying data: the working set is the visible blocks *of
    the current timestep*)."""

    name = "temporal-remap"

    def __init__(self, series, steps_per_timestep: int) -> None:
        if steps_per_timestep < 1:
            raise ValueError(f"steps_per_timestep must be >= 1, got {steps_per_timestep}")
        self.series = series
        self.steps_per_timestep = int(steps_per_timestep)

    def timestep(self, step: int) -> int:
        return min(step // self.steps_per_timestep, self.series.n_timesteps - 1)

    def step(self, engine, frame: Frame) -> None:
        t = self.timestep(frame.step)
        frame.ids = self.series.temporal_visible_ids(frame.ids, t, engine.context.grid)


class TemporalPrefetchStage(_BatchedTableLookupMixin, Stage):
    """Temporal extension of Algorithm 1's prefetch: pull the predicted
    visible set of the **next timestep** during rendering — the same
    spatial prediction, shifted one step forward in time."""

    name = "temporal-prefetch"

    def __init__(
        self,
        remap: TemporalRemapStage,
        visible_table,
        importance=None,
        sigma: float = float("-inf"),
        lookup_cost=None,
    ) -> None:
        self.remap = remap
        self.visible_table = visible_table
        self.importance = importance
        self.sigma = float(sigma)
        self.lookup_cost = lookup_cost

    def start(self, engine) -> None:
        self._reset_path_keys()

    def step(self, engine, frame: Frame) -> None:
        if self.visible_table is None:
            return
        hierarchy = engine.hierarchy
        fastest = hierarchy.fastest
        series = self.remap.series
        n_spatial = engine.context.grid.n_blocks
        i = frame.step
        t_next = min((i + 1) // self.remap.steps_per_timestep, series.n_timesteps - 1)
        with engine.ctx.profiler.span("prefetch"):
            predicted = self._predicted(engine, i)
            frame.lookup_time_s = self.lookup_cost.query_time(self.visible_table.n_entries)
            if self.importance is not None:
                # Importance is over the temporal id space; rank the
                # predicted spatial set within the *next* timestep.
                shifted = np.asarray(predicted, dtype=np.int64) + t_next * n_spatial
                candidates = self.importance.filter_and_rank(shifted, self.sigma)
            else:
                candidates = np.asarray(predicted, dtype=np.int64) + t_next * n_spatial
            prefetch_time = 0.0
            n_prefetched = 0
            for b in candidates:
                if n_prefetched >= fastest.capacity:
                    break
                b = int(b)
                if hierarchy.contains_fast(b):
                    continue
                prefetch_time += hierarchy.fetch(b, i, prefetch=True, min_free_step=i).time_s
                n_prefetched += 1
        frame.prefetch_time_s = prefetch_time
        frame.n_prefetched = n_prefetched
