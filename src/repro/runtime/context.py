"""The cross-cutting service bundle every replay shares.

Before the runtime existed, each driver threaded five keyword arguments
(``tracer``, ``registry``, ``profiler``, plus an externally-installed fault
injector and ad-hoc seeds) through its own copy of the loop.
:class:`RunContext` owns them in one typed object:

- ``tracer`` — the event tracer (:class:`repro.trace.Tracer`);
- ``registry`` — the metrics registry (:class:`repro.obs.MetricsRegistry`);
- ``profiler`` — the wall/sim phase profiler (:class:`repro.obs.PhaseProfiler`);
- ``fault_injector`` — seeded storage-fault injector, or ``None``;
- ``clock`` — a :class:`~repro.utils.timers.SimClock` custom stages may
  charge simulated time against;
- ``rng`` — a deterministic :class:`numpy.random.Generator` for stages
  that need randomness.

``None`` for tracer/registry means *adopt whatever the hierarchy already
has* (the null objects by default), exactly matching the legacy drivers'
keyword semantics.  :meth:`RunContext.bind` installs the non-``None``
services on a hierarchy and resolves the rest, after which every field is
live (never ``None`` except ``fault_injector``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.profiler import resolve_profiler
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.timers import SimClock

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Cross-cutting observability/fault/determinism services of one run."""

    tracer: Any = None
    registry: Any = None
    profiler: Any = None
    fault_injector: Any = None
    clock: SimClock = field(default_factory=SimClock)
    rng: Any = None
    seed: SeedLike = 0
    session_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = resolve_rng(self.seed)
        self._fork_count = 0

    @classmethod
    def create(
        cls,
        tracer: Any = None,
        registry: Any = None,
        profiler: Any = None,
        faults: str = "none",
        fault_seed: int = 0,
        seed: SeedLike = 0,
    ) -> "RunContext":
        """Build a context, resolving a named fault profile into an injector.

        ``faults`` is a profile name from
        :data:`repro.faults.FAULT_PROFILES`; anything but ``"none"``
        constructs a fresh seeded :class:`~repro.faults.FaultInjector`.
        """
        injector = None
        if faults != "none":
            from repro.faults import FaultInjector, FaultPlan

            injector = FaultInjector(FaultPlan.from_profile(faults, seed=fault_seed))
        return cls(
            tracer=tracer,
            registry=registry,
            profiler=profiler,
            fault_injector=injector,
            seed=seed,
        )

    def bind(self, hierarchy) -> "RunContext":
        """Install the services on ``hierarchy`` and resolve null objects.

        Mirrors the legacy keyword-argument semantics exactly: a ``None``
        tracer/registry adopts the hierarchy's current one; a non-``None``
        one is installed first.  A non-``None`` ``fault_injector`` is
        installed; ``None`` leaves whatever the caller installed untouched.
        Returns ``self`` for chaining.
        """
        if self.fault_injector is not None:
            hierarchy.set_fault_injector(self.fault_injector)
        if self.tracer is not None:
            hierarchy.set_tracer(self.tracer)
        self.tracer = hierarchy.tracer
        if self.registry is not None:
            hierarchy.set_registry(self.registry)
        self.registry = hierarchy.registry
        self.profiler = resolve_profiler(self.profiler)
        return self

    def fork(self, session_id: Optional[str] = None) -> "RunContext":
        """A child context with *fresh* per-run service instances.

        Reusing one ``ctx=`` across two consecutive driver runs accumulates
        trace events and metrics samples and advances the shared ``rng``,
        silently corrupting the second run's snapshot.  ``fork`` is the
        supported way to share a configuration across runs: each enabled
        service is replaced by a fresh instance of the same shape (a new
        ``Tracer`` of the parent's capacity, a new ``MetricsRegistry``, a
        new ``PhaseProfiler``, a new ``FaultInjector`` over the same seeded
        plan, a zeroed ``SimClock``), null services pass through shared,
        and the child ``rng`` is derived deterministically from the parent
        seed and a per-parent fork counter — so fork #k of a given parent
        is reproducible without matching the parent's stream.
        """
        import numpy as np

        tracer = self.tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            from repro.trace.tracer import Tracer

            tracer = Tracer(capacity=tracer.capacity)
        registry = self.registry
        if registry is not None and getattr(registry, "enabled", False):
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        profiler = self.profiler
        if profiler is not None and getattr(profiler, "enabled", False):
            from repro.obs.profiler import PhaseProfiler

            profiler = PhaseProfiler(
                tracer=tracer, keep_timeline=getattr(profiler, "keep_timeline", False)
            )
        injector = self.fault_injector
        if injector is not None:
            from repro.faults import FaultInjector

            injector = FaultInjector(injector.plan)
        self._fork_count += 1
        if isinstance(self.seed, (int, np.integer)):
            entropy = [int(self.seed) & (2**63 - 1), self._fork_count]
        else:  # non-int seeds fork off the counter alone, still deterministic
            entropy = [self._fork_count]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return RunContext(
            tracer=tracer,
            registry=registry,
            profiler=profiler,
            fault_injector=injector,
            clock=SimClock(),
            rng=rng,
            seed=self.seed,
            session_id=session_id,
        )

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` resolved the services against a hierarchy."""
        return self.tracer is not None and self.registry is not None

    def span(self, name: str):
        """Shorthand for ``ctx.profiler.span(name)`` (profiler may be unbound)."""
        return resolve_profiler(self.profiler).span(name)
