"""Unified replay runtime: one engine, one context, pluggable stages.

This package replaces the five hand-rolled replay loops that used to live
in ``core/pipeline.py``, ``prefetch/driver.py``, ``core/interactive.py``,
``core/temporal.py`` and ``core/optimizer.py`` with a single composable
:class:`SimulationEngine`:

- :class:`RunConfig` — frozen, schema-validated description of a run
  (dataset/workload/policy/prefetcher/engine/faults/budget), round-
  trippable through ``to_dict``/``from_dict`` and buildable from the CLI;
- :class:`RunContext` — the cross-cutting services (tracer, metrics
  registry, profiler, fault injector, sim clock, rng) that previously
  travelled as repeated keyword arguments;
- :class:`SimulationEngine` + :mod:`~repro.runtime.stages` — the step loop
  (demand fetch → render → overlap prefetch → budget enforcement →
  bookkeeping) as an ordered stage recipe;
- :mod:`~repro.runtime.drivers` — the five historical drivers, each now a
  ~20-line recipe; the old import paths delegate here via deprecation
  shims;
- :mod:`~repro.runtime.registries` — stage/prefetcher/workload/policy
  registries, so new behaviours are registered rather than threaded;
- :mod:`~repro.runtime.sessions` — the event-driven multi-tenant session
  scheduler interleaving N viewer sessions over one shared hierarchy
  (``repro serve-sim``).

See ``DESIGN.md`` ("The runtime engine") for the architecture diagram and
``docs/TUTORIAL.md`` ("Writing a custom stage") for an extension example.
"""

from repro.runtime.config import (
    CLI_FIELD_MAP,
    CLI_ONLY_FLAGS,
    REPLAY_ENGINES,
    RUN_CONFIG_SCHEMA,
    OptimizerConfig,
    RunConfig,
)
from repro.runtime.context import RunContext
from repro.runtime.drivers import (
    AppAwareOptimizer,
    run_baseline,
    run_budgeted,
    run_temporal,
    run_with_prefetcher,
)
from repro.runtime.engine import (
    BudgetedCollector,
    Collector,
    SimulationEngine,
    StepMetricsCollector,
    movement_extras,
)
from repro.runtime.registries import (
    PREFETCHERS,
    STAGES,
    WORKLOADS,
    Registry,
    make_prefetcher,
    make_stage,
    make_workload,
    register_prefetcher,
    register_stage,
    register_workload,
)
from repro.runtime.sessions import SessionSpec, SessionsResult, run_sessions
from repro.runtime.stages import (
    AdaptiveSigmaStage,
    BudgetedFetchStage,
    BudgetedPrefetchStage,
    DemandFetchStage,
    Frame,
    PreloadStage,
    RenderStage,
    SigmaState,
    Stage,
    StrategyPrefetchStage,
    TablePrefetchStage,
    TemporalPrefetchStage,
    TemporalRemapStage,
)

__all__ = [
    "RunConfig",
    "OptimizerConfig",
    "RunContext",
    "RUN_CONFIG_SCHEMA",
    "CLI_FIELD_MAP",
    "CLI_ONLY_FLAGS",
    "REPLAY_ENGINES",
    "SimulationEngine",
    "Collector",
    "StepMetricsCollector",
    "BudgetedCollector",
    "movement_extras",
    "run_baseline",
    "run_with_prefetcher",
    "run_budgeted",
    "run_temporal",
    "run_sessions",
    "SessionSpec",
    "SessionsResult",
    "AppAwareOptimizer",
    "Frame",
    "Stage",
    "PreloadStage",
    "DemandFetchStage",
    "BudgetedFetchStage",
    "RenderStage",
    "StrategyPrefetchStage",
    "TablePrefetchStage",
    "AdaptiveSigmaStage",
    "BudgetedPrefetchStage",
    "TemporalRemapStage",
    "TemporalPrefetchStage",
    "SigmaState",
    "Registry",
    "STAGES",
    "PREFETCHERS",
    "WORKLOADS",
    "register_stage",
    "make_stage",
    "register_prefetcher",
    "make_prefetcher",
    "register_workload",
    "make_workload",
]
