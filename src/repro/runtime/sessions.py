"""Event-driven multi-tenant session scheduler over a shared hierarchy.

The drivers in :mod:`repro.runtime.drivers` replay ONE camera stream.
Interactive deployments serve *many* concurrent viewers from one storage
hierarchy, and what dominates at that scale is contention for the shared
block cache, not single-stream latency.  This module interleaves N
independent sessions — each its own camera path, visible-set sequence and
:class:`~repro.runtime.engine.StepMetricsCollector` — over one shared
:class:`~repro.storage.hierarchy.MemoryHierarchy` and one shared
:class:`~repro.runtime.context.RunContext`.

Scheduling is event-driven on the *simulated* clock: each session owns a
local timeline starting at its ``arrival_s``; rendering frame ``i`` costs
its simulated serial step time (io + lookup + render), which advances the
session's timeline; the session with the earliest next-frame time always
runs next (ties break by spec order).  Because frame times are pure
simulated quantities, the whole interleaving — and therefore every cache
decision in the shared hierarchy — is a deterministic function of the
session specs.  Replaying the same specs gives bit-identical byte and
time ledgers.

Tenant isolation rides on :meth:`CacheLevel.set_tenant_quotas
<repro.storage.cache.CacheLevel.set_tenant_quotas>`: with a partition
installed, every fetch a session issues is labelled with its tenant, so
one hot session can never evict a neighbour's working set beyond its
quota (cross-tenant evictions are counted and stay zero).

A single-session schedule degenerates to exactly the
:func:`~repro.runtime.drivers.run_baseline` recipe — same stages, same
collector, same call order — so its RunResult is bit-for-bit identical
to the single-stream driver's (pinned by the test suite).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.pipeline import PipelineContext
from repro.obs.attribution import AttributionReport, attribute_frames
from repro.obs.fairness import TenantFrameStats
from repro.runtime.config import WORKLOAD_NAMES
from repro.runtime.context import RunContext
from repro.runtime.engine import (
    SimulationEngine,
    StepMetricsCollector,
    movement_extras,
)
from repro.runtime.registries import WORKLOADS
from repro.runtime.stages import DemandFetchStage, Frame, RenderStage, Stage
from repro.utils.rng import SeedLike

__all__ = ["SessionSpec", "SessionsResult", "run_sessions"]


@dataclass(frozen=True)
class SessionSpec:
    """One viewer session: a workload, a seed, and an arrival time.

    ``tenant`` is the quota/accounting label; it defaults to the
    ``session_id`` (one tenant per session).  Several sessions may share
    a tenant to model one user opening multiple views.
    """

    session_id: str
    workload: str = "spherical"
    steps: int = 40
    degrees: Tuple[float, float] = (5.0, 10.0)
    distance: float = 2.5
    seed: SeedLike = 0
    arrival_s: float = 0.0
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_NAMES:
            raise ValueError(
                f"workload must be one of {WORKLOAD_NAMES}, got {self.workload!r}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")

    @property
    def tenant_label(self) -> str:
        return self.tenant if self.tenant is not None else self.session_id


@dataclass
class SessionsResult:
    """Everything one multi-tenant schedule produced.

    ``runs`` holds the per-session RunResults (the same shape the
    single-stream drivers return); ``frame_stats`` the per-tenant /
    pooled tail summaries and fairness; ``quotas``/``tenant_usage``/
    ``cross_evictions`` the partition ledger.  ``as_dict`` flattens the
    simulated (machine-independent) portion for bench snapshots.
    """

    runs: "Dict[str, object]"
    end_times: Dict[str, float]
    frame_stats: TenantFrameStats
    quotas: Dict[str, Dict[str, int]] = field(default_factory=dict)
    tenant_usage: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cross_evictions: int = 0
    #: Per-tenant latency attribution (``run_sessions(attribution=True)``);
    #: None when attribution was not requested.
    attribution: Optional[Dict[str, AttributionReport]] = None

    @property
    def makespan_s(self) -> float:
        return max(self.end_times.values()) if self.end_times else 0.0

    def as_dict(self) -> dict:
        ledger = {}
        for sid, run in self.runs.items():
            n_visible = sum(s.n_visible for s in run.steps)
            n_misses = sum(s.n_fast_misses for s in run.steps)
            ledger[sid] = {
                "total_time_s": run.total_time_s,
                "io_time_s": sum(s.io_time_s for s in run.steps),
                "n_steps": len(run.steps),
                # Per-session miss rate from the step rows (the RunResult's
                # hierarchy_stats snapshot is the *shared* cumulative view).
                "fast_miss_rate": (n_misses / n_visible) if n_visible else 0.0,
                "bytes_moved": run.extras.get("bytes_moved", 0.0),
                "end_time_s": self.end_times[sid],
            }
        doc = {
            "n_sessions": len(self.runs),
            "makespan_s": self.makespan_s,
            "sessions": ledger,
            "frame_times": self.frame_stats.as_dict(),
            "quotas": self.quotas,
            "tenant_usage": self.tenant_usage,
            "cross_evictions": self.cross_evictions,
        }
        if self.attribution is not None:
            from repro.obs.attribution import ATTRIBUTION_SCHEMA_VERSION

            doc["attribution"] = {
                "schema_version": ATTRIBUTION_SCHEMA_VERSION,
                "tenants": {
                    label: rep.as_dict(include_frames=False)
                    for label, rep in self.attribution.items()
                },
            }
        return doc


@dataclass
class _SessionState:
    """Mutable per-session scheduling state."""

    spec: SessionSpec
    engine: SimulationEngine
    next_step: int = 0
    clock_s: float = 0.0
    started: bool = False
    result: object = None


def _equal_partition(tenants: Sequence[str]) -> Dict[str, float]:
    frac = 1.0 / len(tenants)
    return {t: frac for t in tenants}


def run_sessions(
    specs: Sequence[SessionSpec],
    hierarchy,
    grid,
    view_angle_deg: float = 10.0,
    render_model=None,
    ctx: Optional[RunContext] = None,
    engine: str = "batched",
    partition: "Union[None, str, Mapping[str, float]]" = None,
    protect_current_step: bool = False,
    attribution: bool = False,
) -> SessionsResult:
    """Interleave ``specs`` over one shared ``hierarchy``; see module doc.

    Parameters
    ----------
    specs:
        The sessions, in arrival order.  Session ids must be unique.
    hierarchy:
        The *shared* storage hierarchy all sessions fetch through.
    grid:
        The shared :class:`~repro.volume.blocks.BlockGrid` (every session
        views the same dataset).
    view_angle_deg, render_model:
        Camera/render parameters shared by every session.
    ctx:
        The shared :class:`RunContext`; its registry/tracer see every
        session (the ``frame_time_seconds`` histogram pools all tenants).
    engine:
        ``"batched"`` or ``"scalar"`` replay fast path, as in the drivers.
    partition:
        ``None`` — no quotas (free-for-all sharing); ``"equal"`` — each
        distinct tenant gets ``1/n`` of every level; or a mapping tenant
        -> capacity fraction.  Installed via
        :meth:`MemoryHierarchy.set_tenant_quotas`.
    protect_current_step:
        Apply Algorithm 1's eviction constraint per session step.
    attribution:
        Build per-tenant latency attribution (see
        :mod:`repro.obs.attribution`).  Frames are processed strictly
        sequentially, so slicing the shared tracer around each frame's
        stage loop captures exactly that frame's events; requires an
        enabled tracer on ``ctx``.
    """
    if not specs:
        raise ValueError("run_sessions needs at least one session spec")
    ids = [s.session_id for s in specs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"session ids must be unique, got {ids}")

    ctx = (ctx if ctx is not None else RunContext()).bind(hierarchy)
    if attribution and not ctx.tracer.enabled:
        raise ValueError(
            "attribution=True requires an enabled Tracer on the shared RunContext"
        )
    tenants = list(dict.fromkeys(s.tenant_label for s in specs))

    quotas: Dict[str, Dict[str, int]] = {}
    if partition is not None:
        fractions = _equal_partition(tenants) if partition == "equal" else dict(partition)
        missing = [t for t in tenants if t not in fractions]
        if missing:
            raise ValueError(f"partition is missing tenants {missing}")
        quotas = hierarchy.set_tenant_quotas(fractions)

    policy_name = hierarchy.fastest.policy.name
    states: List[_SessionState] = []
    for spec in specs:
        path = WORKLOADS.create(
            spec.workload,
            steps=spec.steps,
            degrees=spec.degrees,
            distance=spec.distance,
            view_angle_deg=view_angle_deg,
            seed=spec.seed,
        )
        context = PipelineContext.create(path, grid, render_model)
        collector = StepMetricsCollector(
            name=spec.session_id,
            policy=policy_name,
            overlap_prefetch=False,
            observe="serial",
            charge=("io", "render"),
            extras_fn=movement_extras,
        )
        stages: List[Stage] = [
            DemandFetchStage(protect=protect_current_step),
            RenderStage(),
        ]
        sim = SimulationEngine(
            context, hierarchy, stages, collector, ctx=ctx, engine=engine,
            tenant=spec.tenant_label if quotas else None,
        )
        states.append(_SessionState(spec=spec, engine=sim))

    stats = TenantFrameStats(registry=ctx.registry)
    # The event heap orders by (next frame's sim time, spec order); both
    # keys are deterministic, so the interleaving — and every cache
    # decision it induces — replays bit-identically.
    heap: List[Tuple[float, int]] = []
    for idx, state in enumerate(states):
        state.clock_s = float(state.spec.arrival_s)
        heapq.heappush(heap, (state.clock_s, idx))

    # Per-tenant (step, events, ledger) rows for the attribution reports.
    attr_rows: Dict[str, list] = {t: [] for t in tenants} if attribution else {}
    attr_dropped0 = ctx.tracer.n_dropped if attribution else 0

    end_times: Dict[str, float] = {}
    while heap:
        _, idx = heapq.heappop(heap)
        state = states[idx]
        sim = state.engine
        if not state.started:
            # Collector first, then stages — the exact engine.run() order.
            sim.collector.start(sim)
            for stage in sim.stages:
                stage.start(sim)
            state.started = True
        i = state.next_step
        seq0 = ctx.tracer.n_recorded if attribution else 0
        frame = Frame(step=i, ids=sim.context.visible_sets[i])
        for stage in sim.stages:
            stage.step(sim, frame)
        sim.collector.collect(sim, frame)
        if attribution:
            events = [e for e in ctx.tracer.events_since(seq0) if e.step == i]
            attr_rows[state.spec.tenant_label].append(
                (
                    i,
                    events,
                    (
                        frame.io_time_s,
                        frame.lookup_time_s,
                        frame.prefetch_time_s,
                        frame.render_time_s,
                    ),
                )
            )
        frame_time = frame.io_time_s + frame.lookup_time_s + frame.render_time_s
        stats.observe(
            state.spec.tenant_label, frame_time, frame.n_visible, frame.n_fast_misses
        )
        state.clock_s += frame_time
        state.next_step = i + 1
        if state.next_step < len(sim.context.visible_sets):
            heapq.heappush(heap, (state.clock_s, idx))
        else:
            for stage in sim.stages:
                stage.finish(sim)
            state.result = sim.collector.finish(sim)
            end_times[state.spec.session_id] = state.clock_s

    stats.fairness()  # publish the tenant_fairness_jain gauge
    reports: Optional[Dict[str, AttributionReport]] = None
    if attribution:
        incomplete = ctx.tracer.n_dropped > attr_dropped0
        reports = {
            label: attribute_frames(
                rows, drop_stats=ctx.tracer.drop_stats(), incomplete=incomplete
            )
            for label, rows in attr_rows.items()
        }
    return SessionsResult(
        runs={st.spec.session_id: st.result for st in states},
        end_times=end_times,
        frame_stats=stats,
        quotas=quotas,
        tenant_usage=hierarchy.tenant_usage(),
        cross_evictions=hierarchy.tenant_cross_evictions(),
        attribution=reports,
    )
