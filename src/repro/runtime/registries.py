"""Name-based registries: stages, prefetchers, workloads (and policies).

New behaviours are *registered*, not threaded through driver signatures:

- **stages** — custom :class:`~repro.runtime.stages.Stage` subclasses,
  resolvable by name when assembling a recipe;
- **prefetchers** — the strategy names a :class:`~repro.runtime.config.RunConfig`
  may reference (``none``/``table``/``motion``/``markov`` built in);
- **workloads** — camera-path generators (the scenario zoo, below);
- **policies** — re-exported from :mod:`repro.policies.registry`, the
  registry that predates this module.

Each registry rejects duplicate names, and ``make_*`` raises ``KeyError``
with the known names on a miss.

The scenario zoo — every registered workload name, addressable from a
``RunConfig`` / matrix spec / ``--path-type`` flag:

==================  =========================================================
name                scenario
==================  =========================================================
``random``          random walk turning ``degrees`` per step at ``distance``
                    (the paper's §V-C random path)
``spherical``       great-circle orbit, ``degrees[0]`` per step (§V-A)
``zoom``            orbiting zoom-in/zoom-out spiral, distance hi→lo→hi
``flythrough``      seeded tour through random saved viewpoints (slerp)
``random-walk``     exploratory drift: like ``random`` but the distance also
                    wanders in ``±25%`` around ``distance``
``recorded``        replay of a camera-trace JSONL (``trace_file``; written
                    by ``repro replay --record``)
``multi-focus``     collaborative session dwelling on shared foci (foci come
                    from a fixed ``focus_seed`` so sessions overlap)
``temporal-sweep``  near-stationary view with bounded jitter ``degrees[0]``
                    — a time-series sweep from one vantage point
==================  =========================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.policies.registry import POLICY_NAMES, make_policy, register_policy
from repro.runtime.stages import (
    AdaptiveSigmaStage,
    BudgetedFetchStage,
    BudgetedPrefetchStage,
    DemandFetchStage,
    PreloadStage,
    RenderStage,
    Stage,
    StrategyPrefetchStage,
    TablePrefetchStage,
    TemporalPrefetchStage,
    TemporalRemapStage,
)

__all__ = [
    "Registry",
    "STAGES",
    "PREFETCHERS",
    "WORKLOADS",
    "register_stage",
    "make_stage",
    "register_prefetcher",
    "make_prefetcher",
    "register_workload",
    "make_workload",
    "make_policy",
    "register_policy",
    "POLICY_NAMES",
]


class Registry:
    """A small name -> factory map with duplicate/missing-name errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}

    def register(self, name: str, factory: Callable[..., Any]) -> None:
        if name in self._factories:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None
        return factory(*args, **kwargs)

    def names(self) -> "list[str]":
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


# ---------------------------------------------------------------------------
# stages

STAGES = Registry("stage")
for _cls in (
    PreloadStage,
    DemandFetchStage,
    BudgetedFetchStage,
    RenderStage,
    StrategyPrefetchStage,
    TablePrefetchStage,
    AdaptiveSigmaStage,
    BudgetedPrefetchStage,
    TemporalRemapStage,
    TemporalPrefetchStage,
):
    STAGES.register(_cls.name, _cls)


def register_stage(name: str, factory: Optional[Callable[..., Stage]] = None):
    """Register a custom stage; usable as ``register_stage("x", Cls)`` or as
    a class decorator ``@register_stage("x")``."""
    if factory is not None:
        STAGES.register(name, factory)
        return factory

    def _decorator(cls: Callable[..., Stage]) -> Callable[..., Stage]:
        STAGES.register(name, cls)
        return cls

    return _decorator


def make_stage(name: str, *args: Any, **kwargs: Any) -> Stage:
    return STAGES.create(name, *args, **kwargs)


# ---------------------------------------------------------------------------
# prefetchers


def _make_none_prefetcher(**_kwargs: Any):
    from repro.prefetch.strategies import NoPrefetcher

    return NoPrefetcher()


def _make_table_prefetcher(
    visible_table=None, importance=None, sigma: float = float("-inf"),
    lookup_cost=None, **_kwargs: Any,
):
    from repro.prefetch.strategies import TableLookupPrefetcher

    if visible_table is None:
        raise ValueError("the 'table' prefetcher requires visible_table=")
    return TableLookupPrefetcher(
        visible_table, importance=importance, sigma=sigma, lookup_cost=lookup_cost
    )


def _make_motion_prefetcher(grid=None, view_angle_deg=None, **_kwargs: Any):
    from repro.prefetch.strategies import MotionExtrapolationPrefetcher

    if grid is None or view_angle_deg is None:
        raise ValueError("the 'motion' prefetcher requires grid= and view_angle_deg=")
    return MotionExtrapolationPrefetcher(grid, view_angle_deg)


def _make_markov_prefetcher(**_kwargs: Any):
    from repro.prefetch.strategies import MarkovPrefetcher

    return MarkovPrefetcher()


def _make_ghost_prefetcher(shard_map=None, home: int = 0, **_kwargs: Any):
    from repro.cluster.prefetch import GhostLayerPrefetcher

    if shard_map is None:
        raise ValueError("the 'ghost' prefetcher requires shard_map= (a sharded run)")
    return GhostLayerPrefetcher(shard_map, home=home)


def _make_replicate_prefetcher(shard_map=None, home: int = 0, **_kwargs: Any):
    from repro.cluster.prefetch import ReplicationPrefetcher

    if shard_map is None:
        raise ValueError("the 'replicate' prefetcher requires shard_map= (a sharded run)")
    return ReplicationPrefetcher(shard_map, home=home)


PREFETCHERS = Registry("prefetcher")
PREFETCHERS.register("none", _make_none_prefetcher)
PREFETCHERS.register("table", _make_table_prefetcher)
PREFETCHERS.register("motion", _make_motion_prefetcher)
PREFETCHERS.register("markov", _make_markov_prefetcher)
PREFETCHERS.register("ghost", _make_ghost_prefetcher)
PREFETCHERS.register("replicate", _make_replicate_prefetcher)


def register_prefetcher(name: str, factory: Callable[..., Any]) -> None:
    PREFETCHERS.register(name, factory)


def make_prefetcher(name: str, **kwargs: Any):
    """Build a prefetch strategy by registry name.

    Extra keyword arguments are the dependency pool (``visible_table``,
    ``importance``, ``sigma``, ``lookup_cost``, ``grid``,
    ``view_angle_deg``, ``shard_map``, ``home``); each factory picks what
    it needs and ignores the rest, so one call site can serve every
    strategy.
    """
    return PREFETCHERS.create(name, **kwargs)


# ---------------------------------------------------------------------------
# workloads (camera paths)


def _make_random_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import random_path

    lo, hi = degrees
    return random_path(
        steps, degree_change=(lo, hi), distance=distance,
        view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_spherical_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import spherical_path

    lo, _hi = degrees
    return spherical_path(
        steps, degrees_per_step=max(lo, 0.1), distance=distance,
        view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_zoom_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import zoom_path

    lo, _hi = degrees
    return zoom_path(
        steps, degrees_per_step=max(lo, 0.1),
        view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_flythrough_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import flythrough_path

    return flythrough_path(
        steps, distance=distance, view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_random_walk_path(steps, degrees, distance, view_angle_deg, seed):
    # Exploratory drift: the random workload with the paper's "randomly
    # different d and l values" — distance wanders in ±25% of the nominal.
    from repro.camera.path import random_path

    lo, hi = degrees
    return random_path(
        steps, degree_change=(lo, hi),
        distance=(0.8 * distance, 1.25 * distance),
        view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_recorded_path(steps, degrees, distance, view_angle_deg, seed,
                        trace_file=None):
    from repro.camera.recorded import read_camera_trace

    if trace_file is None:
        raise ValueError("the 'recorded' workload requires trace_file= (a JSONL trace)")
    path = read_camera_trace(trace_file)
    if len(path) < steps:
        raise ValueError(
            f"camera trace {trace_file!r} has {len(path)} positions, "
            f"but the run asks for steps={steps}"
        )
    if len(path) > steps:
        from repro.camera.path import CameraPath

        path = CameraPath(path.positions[:steps].copy(), path.view_angle_deg, path.name)
    return path


def _make_multi_focus_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import multi_focus_path

    return multi_focus_path(
        steps, distance=distance, view_angle_deg=view_angle_deg, seed=seed,
    )


def _make_temporal_sweep_path(steps, degrees, distance, view_angle_deg, seed):
    from repro.camera.path import temporal_sweep_path

    lo, _hi = degrees
    return temporal_sweep_path(
        steps, jitter_deg=lo, distance=distance,
        view_angle_deg=view_angle_deg, seed=seed,
    )


WORKLOADS = Registry("workload")
WORKLOADS.register("random", _make_random_path)
WORKLOADS.register("spherical", _make_spherical_path)
WORKLOADS.register("zoom", _make_zoom_path)
WORKLOADS.register("flythrough", _make_flythrough_path)
WORKLOADS.register("random-walk", _make_random_walk_path)
WORKLOADS.register("recorded", _make_recorded_path)
WORKLOADS.register("multi-focus", _make_multi_focus_path)
WORKLOADS.register("temporal-sweep", _make_temporal_sweep_path)


def register_workload(name: str, factory: Callable[..., Any]) -> None:
    WORKLOADS.register(name, factory)


def make_workload(config, view_angle_deg: float):
    """Build the camera path a :class:`~repro.runtime.config.RunConfig`
    describes (``workload``/``steps``/``degrees``/``distance``/``seed``,
    plus ``trace_file`` for the ``recorded`` workload)."""
    kwargs: Dict[str, Any] = dict(
        steps=config.steps,
        degrees=config.degrees,
        distance=config.distance,
        view_angle_deg=view_angle_deg,
        seed=config.seed,
    )
    if getattr(config, "trace_file", None) is not None:
        kwargs["trace_file"] = config.trace_file
    return WORKLOADS.create(config.workload, **kwargs)
