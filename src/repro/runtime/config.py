"""Typed, validated run configuration for the unified replay runtime.

:class:`RunConfig` is the single description of "one replay comparison":
which dataset/workload to replay, which policies and prefetcher to compare,
which engine variant to use, what faults to inject, and what per-frame I/O
budget (if any) applies.  It is

- **frozen** — a config never mutates after construction;
- **schema-validated** — every field is checked against
  :data:`RUN_CONFIG_SCHEMA` in ``__post_init__`` (unknown names, invalid
  ranges, and conflicting fault settings all raise ``ValueError``);
- **round-trippable** — ``RunConfig.from_dict(cfg.to_dict()) == cfg``, and
  :meth:`RunConfig.from_cli` maps every ``repro replay`` / ``repro bench``
  flag onto a field (flags that configure *reporting* rather than the run
  itself are enumerated in :data:`CLI_ONLY_FLAGS`, and the test suite
  asserts no flag falls through the cracks).

:class:`OptimizerConfig` (the Algorithm 1 tunables) also lives here; the
old ``repro.core.optimizer`` import path re-exports it unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.faults.plan import FAULT_PROFILES
from repro.policies.registry import POLICY_NAMES
from repro.tables.visible_table import LookupCostModel
from repro.utils.validation import check_probability

__all__ = [
    "RunConfig",
    "OptimizerConfig",
    "RUN_CONFIG_SCHEMA",
    "CLI_FIELD_MAP",
    "CLI_ONLY_FLAGS",
    "REPLAY_ENGINES",
]

#: Replay fast-path choices accepted by every recipe's ``engine`` argument.
#: (Canonical home; ``repro.core.pipeline`` re-exports it for compatibility.)
REPLAY_ENGINES = ("batched", "scalar")

#: Workload (camera path) generators the runtime knows how to build — the
#: scenario zoo.  The registry in ``repro.runtime.registries`` documents
#: each name; ``recorded`` additionally requires ``trace_file``.
WORKLOAD_NAMES = (
    "random",
    "spherical",
    "zoom",
    "flythrough",
    "random-walk",
    "recorded",
    "multi-focus",
    "temporal-sweep",
)

#: Prefetcher names resolvable by the runtime registry (``ghost`` and
#: ``replicate`` are the cluster-aware strategies; they require shards > 1).
PREFETCHER_NAMES = ("none", "table", "motion", "markov", "ghost", "replicate")


def _check_choice(field: str, value: Any, choices) -> None:
    if value not in choices:
        raise ValueError(f"{field} must be one of {tuple(choices)}, got {value!r}")


def _check_policy(field: str, value: Any, _cfg: "RunConfig") -> None:
    # ``app-aware`` is not a cache-level policy but the paper's optimizer
    # driving an LRU hierarchy; matrix specs address it through the same
    # ``policy`` axis as the conventional baselines.
    _check_choice(field, value, tuple(POLICY_NAMES) + ("app-aware",))


def _check_policies(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, tuple):
        raise ValueError(f"{field} must be a tuple of policy names, got {value!r}")
    for name in value:
        _check_choice(field, name, POLICY_NAMES)


def _check_prefetcher(field: str, value: Any, _cfg: "RunConfig") -> None:
    _check_choice(field, value, PREFETCHER_NAMES)


def _check_workload(field: str, value: Any, _cfg: "RunConfig") -> None:
    _check_choice(field, value, WORKLOAD_NAMES)


def _check_shard_map(field: str, value: Any, _cfg: "RunConfig") -> None:
    # Lazy: repro.cluster sits above the runtime layer (it imports the
    # prefetch package, which imports the drivers, which import this
    # module), so a top-level import here would be circular.
    from repro.cluster.shardmap import SHARD_STRATEGIES

    _check_choice(field, value, SHARD_STRATEGIES)


def _check_engine(field: str, value: Any, _cfg: "RunConfig") -> None:
    _check_choice(field, value, REPLAY_ENGINES)


def _check_faults(field: str, value: Any, cfg: "RunConfig") -> None:
    # Lazy for the same layering reason as ``_check_shard_map``.
    from repro.cluster.faults import CLUSTER_FAULT_PROFILES

    cluster_only = tuple(p for p in CLUSTER_FAULT_PROFILES if p not in FAULT_PROFILES)
    _check_choice(field, value, tuple(FAULT_PROFILES) + cluster_only)
    if value in cluster_only and cfg.shards < 2:
        raise ValueError(
            f"{field}={value!r} is a cluster fault profile; it requires shards > 1"
        )


def _check_trace_file(field: str, value: Any, cfg: "RunConfig") -> None:
    if value is not None and not isinstance(value, str):
        raise ValueError(f"{field} must be a path string (or None), got {value!r}")
    if cfg.workload == "recorded" and value is None:
        raise ValueError(
            f"{field} is required for workload='recorded' "
            f"(a camera-trace JSONL written by `repro replay --record`)"
        )


def _check_fault_seed(field: str, value: Any, cfg: "RunConfig") -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{field} must be an int, got {value!r}")
    if value != 0 and cfg.faults == "none":
        raise ValueError(
            f"{field}={value} conflicts with faults='none': a fault seed only "
            f"selects draws of an injected profile — pass faults=<profile> "
            f"(one of {tuple(n for n in FAULT_PROFILES if n != 'none')}) or drop the seed"
        )


def _check_positive_int(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ValueError(f"{field} must be an int >= 1, got {value!r}")


def _check_int(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{field} must be an int, got {value!r}")


def _check_unit_interval(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, (int, float)) or not 0.0 < float(value) <= 1.0:
        raise ValueError(f"{field} must be in (0, 1], got {value!r}")


def _check_optional_positive(field: str, value: Any, _cfg: "RunConfig") -> None:
    if value is None:
        return
    if not isinstance(value, (int, float)) or float(value) <= 0.0:
        raise ValueError(f"{field} must be positive (or None), got {value!r}")


def _check_degrees(field: str, value: Any, _cfg: "RunConfig") -> None:
    if (
        not isinstance(value, tuple)
        or len(value) != 2
        or not all(isinstance(v, (int, float)) for v in value)
    ):
        raise ValueError(f"{field} must be a (lo, hi) pair, got {value!r}")
    lo, hi = value
    if not 0.0 <= float(lo) <= float(hi):
        raise ValueError(f"{field} must satisfy 0 <= lo <= hi, got {value!r}")


def _check_positive_float(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, (int, float)) or float(value) <= 0.0:
        raise ValueError(f"{field} must be positive, got {value!r}")


def _check_bool(field: str, value: Any, _cfg: "RunConfig") -> None:
    if not isinstance(value, bool):
        raise ValueError(f"{field} must be a bool, got {value!r}")


def _check_dataset(field: str, value: Any, _cfg: "RunConfig") -> None:
    from repro.volume.datasets import DATASETS

    _check_choice(field, value, sorted(DATASETS))


#: field name -> (validator, help).  The single source of truth for what a
#: RunConfig may contain; ``from_dict`` rejects anything outside it.
RUN_CONFIG_SCHEMA: Dict[str, Tuple[Callable[[str, Any, "RunConfig"], None], str]] = {
    "dataset": (_check_dataset, "Table I dataset analogue to replay"),
    "blocks": (_check_positive_int, "target block count for the grid"),
    "scale": (_check_optional_positive, "per-axis shrink of the paper resolution"),
    "seed": (_check_int, "seed for dataset synthesis and the camera path"),
    "workload": (
        _check_workload,
        "camera-path generator (random/spherical/zoom/flythrough)",
    ),
    "steps": (_check_positive_int, "view points on the camera path"),
    "degrees": (_check_degrees, "per-step direction change range (lo, hi)"),
    "distance": (_check_positive_float, "camera distance from the volume center"),
    "cache_ratio": (_check_unit_interval, "cache size as a fraction of the data"),
    "policy": (_check_policy, "replacement policy of the primary run"),
    "policies": (_check_policies, "baseline policies for a comparison replay"),
    "belady": (_check_bool, "include the offline Belady bound"),
    "app_aware": (_check_bool, "include the paper's app-aware optimizer"),
    "prefetcher": (_check_prefetcher, "prefetch strategy of the primary run"),
    "engine": (_check_engine, "replay engine: batched fast path or scalar"),
    "faults": (_check_faults, "named fault profile injected into the storage stack"),
    "fault_seed": (_check_fault_seed, "seed of the deterministic fault draws"),
    "io_budget_s": (_check_optional_positive, "per-frame demand-I/O budget (None: stall)"),
    "shards": (_check_positive_int, "number of simulated cluster nodes (1 = single box)"),
    "shard_map": (_check_shard_map, "block-ownership strategy for sharded runs"),
    "sessions": (_check_positive_int, "concurrent tenant sessions (serve-runner cells)"),
    "trace_file": (_check_trace_file, "camera-trace JSONL for workload='recorded'"),
}


@dataclass(frozen=True)
class RunConfig:
    """Frozen, validated description of one replay run (or comparison).

    Build one directly, from a plain dict (:meth:`from_dict`), or from
    parsed CLI arguments (:meth:`from_cli`); all three construction paths
    run the same :data:`RUN_CONFIG_SCHEMA` validation.
    """

    dataset: str = "3d_ball"
    blocks: int = 512
    scale: Optional[float] = None
    seed: int = 0
    workload: str = "random"
    steps: int = 120
    degrees: Tuple[float, float] = (5.0, 10.0)
    distance: float = 2.5
    cache_ratio: float = 0.5
    policy: str = "lru"
    policies: Tuple[str, ...] = ("fifo", "lru")
    belady: bool = False
    app_aware: bool = True
    prefetcher: str = "none"
    engine: str = "batched"
    faults: str = "none"
    fault_seed: int = 0
    io_budget_s: Optional[float] = None
    shards: int = 1
    shard_map: str = "slab"
    sessions: int = 1
    trace_file: Optional[str] = None

    def __post_init__(self) -> None:
        # Collect every invalid field before raising: hand-written matrix
        # specs make config typos the common failure mode, and fixing them
        # one error message at a time is miserable.
        errors = []
        for name, (validator, _help) in RUN_CONFIG_SCHEMA.items():
            try:
                validator(name, getattr(self, name), self)
            except ValueError as exc:
                errors.append(str(exc))
        if len(errors) == 1:
            raise ValueError(errors[0])
        if errors:
            raise ValueError(
                f"{len(errors)} invalid RunConfig fields: " + "; ".join(errors)
            )

    # -- round-trip -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable view (tuples become lists)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys.

        All problems — unknown keys *and* invalid values of the known
        ones — are reported together in one ``ValueError``.
        """
        unknown = sorted(set(d) - set(RUN_CONFIG_SCHEMA))
        problems = []
        if unknown:
            problems.append(
                f"unknown RunConfig field(s) {unknown}; known: {sorted(RUN_CONFIG_SCHEMA)}"
            )
        kwargs: Dict[str, Any] = {k: v for k, v in d.items() if k in RUN_CONFIG_SCHEMA}
        if "degrees" in kwargs and isinstance(kwargs["degrees"], (list, tuple)):
            kwargs["degrees"] = tuple(float(v) for v in kwargs["degrees"])
        if "policies" in kwargs and isinstance(kwargs["policies"], (list, tuple)):
            kwargs["policies"] = tuple(str(v) for v in kwargs["policies"])
        try:
            config = cls(**kwargs)
        except ValueError as exc:
            problems.append(str(exc))
            config = None
        if problems:
            raise ValueError("; ".join(problems))
        assert config is not None
        return config

    # -- CLI ------------------------------------------------------------------

    @classmethod
    def from_cli(cls, args: Any, command: str = "replay") -> "RunConfig":
        """Build a config from a parsed ``repro replay``/``repro bench``
        argparse namespace.

        Every run-shaping flag of those subcommands maps onto a field via
        :data:`CLI_FIELD_MAP`; reporting/execution flags (snapshot label,
        worker count, comparison mode, ...) are enumerated in
        :data:`CLI_ONLY_FLAGS` and ignored here.  The test suite walks the
        real parsers and asserts the two sets cover every flag.
        """
        if command not in ("replay", "bench"):
            raise ValueError(f"command must be 'replay' or 'bench', got {command!r}")
        kwargs: Dict[str, Any] = {}
        for dest, field in CLI_FIELD_MAP.items():
            if not hasattr(args, dest):
                continue
            value = getattr(args, dest)
            if dest == "no_app_aware":
                kwargs[field] = not value
            elif dest == "policies":
                kwargs[field] = tuple(value)
            elif dest == "degrees":
                kwargs[field] = tuple(float(v) for v in value)
            elif dest == "scale" and value is not None:
                kwargs[field] = float(value)
            elif dest == "trace_file" and value is not None:
                kwargs[field] = str(value)
            else:
                kwargs[field] = value
        return cls(**kwargs)


#: argparse ``dest`` -> RunConfig field, for every run-shaping CLI flag.
CLI_FIELD_MAP: Dict[str, str] = {
    "dataset": "dataset",
    "blocks": "blocks",
    "scale": "scale",
    "seed": "seed",
    "path_type": "workload",
    "steps": "steps",
    "degrees": "degrees",
    "distance": "distance",
    "cache_ratio": "cache_ratio",
    "policies": "policies",
    "belady": "belady",
    "no_app_aware": "app_aware",
    "engine": "engine",
    "faults": "faults",
    "fault_seed": "fault_seed",
    "shards": "shards",
    "shard_map": "shard_map",
    "trace_file": "trace_file",
}

#: argparse ``dest`` names that deliberately do NOT map onto RunConfig —
#: they configure reporting or suite execution, not the simulated run.
#: dest -> reason.  ``tests/runtime/test_config.py`` asserts every replay/
#: bench flag is covered by CLI_FIELD_MAP or this table (no orphans).
CLI_ONLY_FLAGS: Dict[str, str] = {
    "command": "subcommand dispatch, not a run parameter",
    "tier": "bench tier selection (default sim-clock suite vs fullscale wall-clock)",
    "quick": "suite sizing of `repro bench` (same shape, less work)",
    "label": "snapshot file naming (BENCH_<label>.json)",
    "out": "output directory/file selection",
    "workers": "process parallelism of the bench harness",
    "profile": "extra Chrome-trace artifact emission",
    "compare": "snapshot comparison mode (no replay runs at all)",
    "threshold": "comparison regression threshold",
    "warn_only": "comparison exit-code policy",
    "verbose": "comparison table verbosity",
    "record": "camera-trace JSONL output path (records the path, doesn't shape it)",
}


@dataclass(frozen=True)
class OptimizerConfig:
    """Tunables of Algorithm 1.

    Parameters
    ----------
    sigma:
        Absolute importance threshold σ.  When ``None`` it is derived from
        ``sigma_percentile`` of the importance distribution.
    sigma_percentile:
        Fraction of blocks considered unimportant (default 0.5: the lower
        half of the entropy distribution is neither preloaded nor
        prefetched).
    preload:
        Run the importance preload (Alg. 1 line 7).  Ablation knob.
    prefetch:
        Run the overlapped prefetch (lines 20-22).  Ablation knob.
    use_importance_filter:
        Filter prefetch candidates by σ (line 22).  With ``False`` every
        predicted block is prefetched — the over-prediction failure mode
        §IV-C warns about.  Ablation knob.
    max_prefetch_per_step:
        Hard cap on prefetch fetches per step (None = fastest-level
        capacity).
    lookup_cost:
        Simulated ``T_visible`` query-cost model (drives Fig. 7b).
    adaptive_sigma:
        Tune σ online (extension): when a step's prefetch time overruns
        its render time, raise the threshold (prefetch less next step);
        when prefetch uses less than half the render budget, lower it.
        The paper fixes σ; this controller keeps the prefetch stream
        filling — but not overrunning — the overlap window as view speed
        changes.  Requires percentile mode (``sigma=None``).
    sigma_step:
        Percentile increment per adjustment of the adaptive controller.
    sigma_bounds:
        Percentile clamp range for the adaptive controller.
    """

    sigma: Optional[float] = None
    sigma_percentile: float = 0.5
    preload: bool = True
    prefetch: bool = True
    use_importance_filter: bool = True
    max_prefetch_per_step: Optional[int] = None
    lookup_cost: LookupCostModel = dataclasses.field(default_factory=LookupCostModel)
    adaptive_sigma: bool = False
    sigma_step: float = 0.05
    sigma_bounds: Tuple[float, float] = (0.05, 0.95)

    def __post_init__(self) -> None:
        check_probability("sigma_percentile", self.sigma_percentile)
        if self.max_prefetch_per_step is not None and self.max_prefetch_per_step < 0:
            raise ValueError(
                f"max_prefetch_per_step must be >= 0, got {self.max_prefetch_per_step}"
            )
        if self.adaptive_sigma:
            if self.sigma is not None:
                raise ValueError("adaptive_sigma requires percentile mode (sigma=None)")
            lo, hi = self.sigma_bounds
            check_probability("sigma_bounds[0]", lo)
            check_probability("sigma_bounds[1]", hi)
            if not lo < hi:
                raise ValueError(f"sigma_bounds must satisfy lo < hi, got {self.sigma_bounds}")
            if not 0.0 < self.sigma_step <= 0.5:
                raise ValueError(f"sigma_step must be in (0, 0.5], got {self.sigma_step}")

    def resolve_sigma(self, importance) -> float:
        if self.sigma is not None:
            return float(self.sigma)
        return importance.threshold_for_percentile(self.sigma_percentile)
