"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_run_summaries"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Align ``rows`` under ``headers`` with a rule line (monospace-friendly)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """One row per x value, one column per named series (a figure as text)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_run_summaries(results: Mapping[str, object], title: str = "") -> str:
    """Tabulate :class:`~repro.core.metrics.RunResult` objects by policy."""
    headers = [
        "policy",
        "miss_rate",
        "fast_miss_rate",
        "io_time_s",
        "prefetch_time_s",
        "render_time_s",
        "total_time_s",
    ]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.total_miss_rate,
                result.fast_miss_rate,
                result.io_time_s,
                result.prefetch_time_s,
                result.render_time_s,
                result.total_time_s,
            ]
        )
    return format_table(headers, rows, title=title)
