"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = [
    "format_table",
    "format_series",
    "format_run_summaries",
    "format_trace_report",
]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Align ``rows`` under ``headers`` with a rule line (monospace-friendly)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """One row per x value, one column per named series (a figure as text)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_trace_report(summary, result=None, title: str = "") -> str:
    """Tabulate a :class:`~repro.trace.aggregate.TraceSummary`.

    When ``result`` (a :class:`~repro.core.metrics.RunResult`) is given,
    a ledger line cross-checks the trace's byte total against the run's
    ``bytes_moved`` extra — after the accounting fixes the two must agree
    exactly.
    """
    headers = ["step", "hits", "fetches", "prefetches", "preloads", "evict",
               "bypass", "demand_MB", "prefetch_MB", "coverage"]
    rows = []
    for s in summary.steps:
        rows.append([
            "preload" if s.step < 0 else s.step,
            s.hits,
            s.demand_fetches,
            s.prefetches,
            s.preloads,
            s.evictions,
            s.bypasses,
            s.demand_bytes / 1e6,
            s.prefetch_bytes / 1e6,
            s.fast_coverage,
        ])
    lines = [format_table(headers, rows, title=title)]
    lines.append(
        f"levels: "
        + ", ".join(
            f"{name} {b['demand'] / 1e6:.2f} MB demand / {b['prefetch'] / 1e6:.2f} MB prefetch"
            for name, b in summary.level_bytes.items()
        )
    )
    lines.append(
        f"trace total: {summary.total_bytes / 1e6:.3f} MB moved "
        f"({summary.demand_bytes / 1e6:.3f} demand + {summary.prefetch_bytes / 1e6:.3f} prefetch), "
        f"{summary.total_evictions} evictions, "
        f"mean fast coverage {summary.mean_fast_coverage:.3f}"
    )
    if result is not None and "bytes_moved" in result.extras:
        moved = result.extras["bytes_moved"]
        agree = "agrees" if float(summary.total_bytes) == float(moved) else "MISMATCH"
        lines.append(
            f"ledger check: trace {summary.total_bytes / 1e6:.3f} MB vs "
            f"hierarchy bytes_moved {moved / 1e6:.3f} MB — {agree}"
        )
    return "\n".join(lines)


def format_run_summaries(results: Mapping[str, object], title: str = "") -> str:
    """Tabulate :class:`~repro.core.metrics.RunResult` objects by policy."""
    headers = [
        "policy",
        "miss_rate",
        "fast_miss_rate",
        "io_time_s",
        "prefetch_time_s",
        "render_time_s",
        "total_time_s",
    ]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.total_miss_rate,
                result.fast_miss_rate,
                result.io_time_s,
                result.prefetch_time_s,
                result.render_time_s,
                result.total_time_s,
            ]
        )
    return format_table(headers, rows, title=title)
