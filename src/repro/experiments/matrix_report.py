"""Self-contained HTML reports for experiment-matrix runs.

``repro matrix report`` feeds this module a ``MATRIX_<label>.json``
document (see :mod:`repro.experiments.matrix`) and gets back one HTML
file with no external assets — inline CSS and inline SVG only, no
JavaScript, no network-loaded fonts or scripts — so the artifact can be
archived from CI and opened anywhere:

- a **cell table**: one row per cell in run order, its axes values and
  the flattened simulated summary metrics;
- one **SVG line chart per ``[[figures]]`` entry** in the spec, sliced
  through :meth:`repro.experiments.sweep.SweepResult.series` (the same
  re-slicing the figure modules use);
- a **fault-resilience table** for cells that ran under a fault profile
  (injected faults, retries, degraded frames, simulated fault time);
- **fairness / per-tenant tables** for cells carrying a
  ``multi_tenant`` section (serve-style runs);
- **trend tables** over committed ``BENCH_*.json`` / ``SERVE_*.json``
  snapshots named in the spec's ``[report] bench_snapshots`` list.

Rendering is deterministic for a given document: cells keep run-order,
metric columns sort by name, and nothing samples a clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.gating import SUMMARY_METRIC_DIRECTIONS
from repro.experiments.sweep import SweepResult
from repro.obs.report import _STYLE, _esc, _fmt

__all__ = ["render_matrix_report", "write_matrix_report"]

_SERIES_COLORS = ("#1565c0", "#e65100", "#2e7d32", "#8e24aa", "#00838f", "#b71c1c")

_MATRIX_STYLE = _STYLE + """
svg.chart{background:#fafafa;border:1px solid #ddd;margin:.6em 0}
.chartrow{display:flex;flex-wrap:wrap;gap:1em}
"""


def _metric_value(cell: Mapping[str, Any], metric: str) -> Optional[float]:
    """Look a figure metric up in a cell: summary, derived, then top level."""
    for container in (cell.get("summary") or {}, cell.get("derived") or {}, cell):
        value = container.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


def _ordered_cells(doc: Mapping[str, Any]) -> List[Tuple[str, Mapping[str, Any]]]:
    return sorted(doc["cells"].items(), key=lambda kv: kv[1]["index"])


def _cells_table(doc: Mapping[str, Any]) -> str:
    cells = _ordered_cells(doc)
    axis_names = list(doc["spec"]["axes"])
    metric_names = sorted(
        {
            name
            for _, cell in cells
            for name in SUMMARY_METRIC_DIRECTIONS
            if isinstance((cell.get("summary") or {}).get(name), (int, float))
        }
    )
    head = (
        "<th>cell</th>"
        + "".join(f"<th>{_esc(a)}</th>" for a in axis_names)
        + "<th>repeat</th>"
        + "".join(f"<th>{_esc(m)}</th>" for m in metric_names)
    )
    rows = []
    for key, cell in cells:
        summary = cell.get("summary") or {}
        rows.append(
            "<tr>"
            f"<td>{_esc(key)}</td>"
            + "".join(f"<td>{_esc(cell['axes'].get(a, ''))}</td>" for a in axis_names)
            + f"<td class='num'>{_esc(cell.get('repeat', 0))}</td>"
            + "".join(
                f"<td class='num'>{_fmt(summary[m]) if isinstance(summary.get(m), (int, float)) else ''}</td>"
                for m in metric_names
            )
            + "</tr>"
        )
    return (
        "<h2>Cells</h2>"
        f"<table><thead><tr>{head}</tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _svg_line_chart(
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    y_label: str = "",
) -> str:
    """One categorical-x line chart as inline SVG (no external assets)."""
    width, height = 540, 300
    ml, mr, mt, mb = 64, 150, 34, 44
    pw, ph = width - ml - mr, height - mt - mb

    values = [v for vs in series.values() for v in vs]
    lo, hi = min(values), max(values)
    if hi == lo:
        pad = abs(hi) * 0.1 or 1.0
        lo, hi = lo - pad, hi + pad
    else:
        pad = (hi - lo) * 0.08
        lo, hi = lo - pad, hi + pad

    def sx(i: int) -> float:
        if len(x_values) == 1:
            return ml + pw / 2.0
        return ml + pw * i / (len(x_values) - 1)

    def sy(v: float) -> float:
        return mt + ph * (1.0 - (v - lo) / (hi - lo))

    parts = [
        f"<svg class='chart' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' "
        f"role='img' aria-label='{_esc(title or y_label)}'>",
        f"<text x='{ml}' y='18' font-size='13' font-weight='bold'>{_esc(title)}</text>",
        f"<line x1='{ml}' y1='{mt}' x2='{ml}' y2='{mt + ph}' stroke='#888'/>",
        f"<line x1='{ml}' y1='{mt + ph}' x2='{ml + pw}' y2='{mt + ph}' stroke='#888'/>",
    ]
    n_ticks = 4
    for t in range(n_ticks + 1):
        v = lo + (hi - lo) * t / n_ticks
        y = sy(v)
        parts.append(
            f"<line x1='{ml - 4}' y1='{y:.1f}' x2='{ml + pw}' y2='{y:.1f}' "
            "stroke='#e0e0e0'/>"
            f"<text x='{ml - 8}' y='{y + 4:.1f}' font-size='10' "
            f"text-anchor='end'>{_esc(_fmt(v))}</text>"
        )
    for i, x in enumerate(x_values):
        parts.append(
            f"<text x='{sx(i):.1f}' y='{mt + ph + 16}' font-size='11' "
            f"text-anchor='middle'>{_esc(x)}</text>"
        )
    if y_label:
        parts.append(
            f"<text x='14' y='{mt + ph / 2:.1f}' font-size='11' text-anchor='middle' "
            f"transform='rotate(-90 14 {mt + ph / 2:.1f})'>{_esc(y_label)}</text>"
        )
    for s_idx, (label, vals) in enumerate(series.items()):
        color = _SERIES_COLORS[s_idx % len(_SERIES_COLORS)]
        points = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(vals))
        parts.append(
            f"<polyline points='{points}' fill='none' stroke='{color}' "
            "stroke-width='2'/>"
        )
        for i, v in enumerate(vals):
            parts.append(
                f"<circle cx='{sx(i):.1f}' cy='{sy(v):.1f}' r='3' fill='{color}'>"
                f"<title>{_esc(label)} @ {_esc(x_values[i])}: {_fmt(v)}</title></circle>"
            )
        ly = mt + 14 + 16 * s_idx
        parts.append(
            f"<line x1='{ml + pw + 10}' y1='{ly}' x2='{ml + pw + 28}' y2='{ly}' "
            f"stroke='{color}' stroke-width='2'/>"
            f"<text x='{ml + pw + 33}' y='{ly + 4}' font-size='11'>{_esc(label)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _figures_section(doc: Mapping[str, Any]) -> str:
    figures = doc["spec"].get("figures") or []
    if not figures:
        return ""
    axis_names = tuple(doc["spec"]["axes"])
    charts: List[str] = []
    for fig in figures:
        metric = fig["metric"]
        rows: List[Tuple[Dict[str, Any], Dict[str, float]]] = []
        missing = False
        for key, cell in _ordered_cells(doc):
            if cell.get("repeat", 0):
                continue  # charts show the repeat-0 value of each cell
            value = _metric_value(cell, metric)
            if value is None:
                missing = True
                break
            rows.append((dict(cell["axes"]), {metric: value}))
        if missing or not rows:
            charts.append(
                f"<p class='note'>figure skipped: metric {_esc(metric)} "
                "not present in every cell</p>"
            )
            continue
        sweep = SweepResult(param_names=axis_names, metric_names=(metric,), rows=rows)
        try:
            x_values, series = sweep.series(
                x=fig["x"], metric=metric, group_by=fig.get("group_by")
            )
        except (KeyError, ValueError) as exc:
            charts.append(f"<p class='note'>figure skipped: {_esc(exc)}</p>")
            continue
        charts.append(
            _svg_line_chart(
                x_values,
                series,
                title=fig.get("title", f"{metric} vs {fig['x']}"),
                y_label=metric,
            )
        )
    return "<h2>Figures</h2><div class='chartrow'>" + "".join(charts) + "</div>"


def _fault_table(doc: Mapping[str, Any]) -> str:
    rows = []
    for key, cell in _ordered_cells(doc):
        faults = cell.get("faults")
        if not isinstance(faults, Mapping):
            continue
        trace = faults.get("trace") or {}
        rows.append(
            "<tr>"
            f"<td>{_esc(key)}</td>"
            f"<td>{_esc(faults.get('profile', ''))}</td>"
            f"<td class='num'>{_esc(faults.get('derived_seed', faults.get('seed', '')))}</td>"
            f"<td class='num'>{_esc(trace.get('faults', ''))}</td>"
            f"<td class='num'>{_esc(trace.get('retries', ''))}</td>"
            f"<td class='num'>{_esc(trace.get('degraded', ''))}</td>"
            f"<td class='num'>{_fmt(trace.get('fault_time_s', 0.0))}</td>"
            "</tr>"
        )
    if not rows:
        return ""
    return (
        "<h2>Fault resilience</h2>"
        "<p class='note'>simulated-clock fault injection per cell; seeds are "
        "derived per cell index so repeats stay reproducible.</p>"
        "<table><thead><tr><th>cell</th><th>profile</th><th>seed</th>"
        "<th>faults</th><th>retries</th><th>degraded frames</th>"
        "<th>fault time (s)</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _tenant_rows(mt: Mapping[str, Any]) -> str:
    frames = mt.get("frame_times") or {}
    per_tenant = frames.get("per_tenant") or {}
    body = "".join(
        "<tr>"
        f"<td>{_esc(tenant)}</td>"
        + "".join(
            f"<td class='num'>{_fmt(row.get(p, 0.0))}</td>"
            for p in ("p50", "p95", "p99")
        )
        + "</tr>"
        for tenant, row in sorted(per_tenant.items())
    )
    pooled = frames.get("pooled") or {}
    summary = (
        f"<p>makespan {_fmt(mt.get('makespan_s', 0.0))}s · "
        f"Jain fairness {_fmt(frames.get('fairness_jain', 0.0))} · "
        f"cross-tenant evictions {_esc(mt.get('cross_evictions', 0))} · "
        f"pooled p99 {_fmt(pooled.get('p99', 0.0))}s</p>"
    )
    if not body:
        return summary
    return (
        summary
        + "<table><thead><tr><th>tenant</th><th>p50</th><th>p95</th><th>p99</th>"
        "</tr></thead><tbody>" + body + "</tbody></table>"
    )


def _fairness_section(doc: Mapping[str, Any]) -> str:
    parts = []
    for key, cell in _ordered_cells(doc):
        mt = cell.get("multi_tenant")
        if not isinstance(mt, Mapping):
            continue
        parts.append(f"<h3>{_esc(key)}</h3>" + _tenant_rows(mt))
    if not parts:
        return ""
    return "<h2>Fairness / per-tenant frame times</h2>" + "".join(parts)


def _snapshot_trend(name: str, doc: Mapping[str, Any]) -> str:
    parts = [f"<h3>{_esc(name)}</h3>"]
    runs = doc.get("runs")
    if isinstance(runs, Mapping):
        metric_names = sorted(
            {
                m
                for run in runs.values()
                for m in SUMMARY_METRIC_DIRECTIONS
                if isinstance((run.get("summary") or {}).get(m), (int, float))
            }
        )
        head = "<th>run</th>" + "".join(f"<th>{_esc(m)}</th>" for m in metric_names)
        body = "".join(
            "<tr>"
            f"<td>{_esc(key)}</td>"
            + "".join(
                f"<td class='num'>{_fmt((run.get('summary') or {}).get(m, 0.0))}</td>"
                for m in metric_names
            )
            + "</tr>"
            for key, run in runs.items()
        )
        parts.append(
            f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        )
    mt = doc.get("multi_tenant")
    if isinstance(mt, Mapping) and mt:
        parts.append(_tenant_rows(mt))
    if len(parts) == 1:
        parts.append("<p class='note'>no comparable sections in this snapshot</p>")
    return "".join(parts)


def _trend_section(doc: Mapping[str, Any], base_dir: Path) -> str:
    names = (doc["spec"].get("report") or {}).get("bench_snapshots") or []
    if not names:
        return ""
    parts = ["<h2>Committed snapshot trends</h2>"]
    for name in names:
        path = Path(name)
        if not path.is_absolute():
            path = base_dir / path
        if not path.exists():
            parts.append(f"<p class='note'>snapshot {_esc(name)} not found — skipped</p>")
            continue
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        parts.append(_snapshot_trend(name, snapshot))
    return "".join(parts)


def render_matrix_report(
    doc: Mapping[str, Any],
    title: Optional[str] = None,
    base_dir: Optional[Path] = None,
) -> str:
    """Render a matrix document as one self-contained HTML page.

    ``base_dir`` anchors relative ``bench_snapshots`` paths (defaults to
    the current directory).  The output carries no ``<script>`` element
    and references no network resources.
    """
    base_dir = Path(base_dir) if base_dir is not None else Path.cwd()
    report_cfg = doc["spec"].get("report") or {}
    page_title = title or report_cfg.get("title") or f"matrix {doc.get('label', '')}"
    header = (
        f"<h1>{_esc(page_title)}</h1>"
        f"<p class='note'>label {_esc(doc.get('label'))} · runner "
        f"{_esc(doc.get('runner'))} · {_esc(doc.get('n_cells'))} cells · "
        f"{_esc(doc.get('workers'))} worker(s) · suite wall "
        f"{_fmt(doc.get('suite_wall_s', 0.0))}s · schema v"
        f"{_esc(doc.get('schema_version'))}</p>"
    )
    body = [
        header,
        _cells_table(doc),
        _figures_section(doc),
        _fault_table(doc),
        _fairness_section(doc),
        _trend_section(doc, base_dir),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(page_title)}</title><style>{_MATRIX_STYLE}</style></head>"
        f"<body>{''.join(body)}</body></html>\n"
    )


def write_matrix_report(
    doc: Mapping[str, Any],
    path,
    title: Optional[str] = None,
    base_dir: Optional[Path] = None,
) -> Path:
    """Write :func:`render_matrix_report` to ``path``; returns the path."""
    path = Path(path)
    if base_dir is None:
        base_dir = path.parent
    path.write_text(
        render_matrix_report(doc, title=title, base_dir=base_dir), encoding="utf-8"
    )
    return path
