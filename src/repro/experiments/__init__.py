"""Experiment harness: one entry point per paper table/figure.

``repro.experiments.figures`` defines each experiment (workload,
parameters, series) at two scales — ``full=False`` laptop-bench defaults
and ``full=True`` paper-scale sweeps; ``repro.experiments.runner`` holds
the shared setup/replay machinery; ``repro.experiments.report`` renders
the same rows/series the paper reports.

Run from the command line::

    python -m repro.experiments --figure fig12
"""

from repro.experiments.gating import (
    GateRule,
    compare_metric_sets,
    flatten_run_summary,
)
from repro.experiments.loadgen import (
    LoadGenConfig,
    make_session_specs,
    run_load,
)
from repro.experiments.matrix import (
    MatrixSpec,
    bundled_spec_names,
    compare_matrix,
    expand_cells,
    load_spec,
    run_matrix,
)
from repro.experiments.runner import (
    ExperimentSetup,
    fresh_hierarchy,
    belady_hierarchy,
    compare_policies,
)
from repro.experiments.report import format_table, format_series
from repro.experiments.sweep import parameter_sweep, SweepResult
from repro.experiments import extensions, figures

__all__ = [
    "ExperimentSetup",
    "fresh_hierarchy",
    "belady_hierarchy",
    "compare_policies",
    "GateRule",
    "compare_metric_sets",
    "flatten_run_summary",
    "LoadGenConfig",
    "make_session_specs",
    "run_load",
    "MatrixSpec",
    "bundled_spec_names",
    "compare_matrix",
    "expand_cells",
    "load_spec",
    "run_matrix",
    "format_table",
    "format_series",
    "parameter_sweep",
    "SweepResult",
    "figures",
    "extensions",
]
