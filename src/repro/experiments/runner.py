"""Shared experiment machinery.

:class:`ExperimentSetup` bundles a dataset analogue, block grid, camera
geometry, and preprocessing tables; :func:`compare_policies` replays one
camera path under several conventional policies *and* the app-aware
optimizer against identical demand sequences and fresh hierarchies, which
is the comparison every figure in the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.camera.path import CameraPath
from repro.camera.sampling import SamplingConfig
from repro.core.metrics import RunResult
from repro.core.pipeline import PipelineContext
from repro.runtime.config import OptimizerConfig
from repro.runtime.context import RunContext
from repro.runtime.drivers import AppAwareOptimizer, run_baseline
from repro.policies.belady import BeladyPolicy
from repro.policies.registry import make_policy
from repro.render.render_model import RenderCostModel
from repro.storage.cache import CacheLevel
from repro.storage.device import DRAM, HDD, SSD
from repro.storage.hierarchy import MemoryHierarchy, make_standard_hierarchy
from repro.tables.builder import build_importance_table, build_visible_table
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import VisibleTable
from repro.utils.rng import SeedLike
from repro.volume.blocks import BlockGrid
from repro.volume.datasets import make_dataset
from repro.volume.volume import Volume

__all__ = [
    "ExperimentSetup",
    "fresh_hierarchy",
    "belady_hierarchy",
    "compare_policies",
    "DEFAULT_VIEW_ANGLE_DEG",
]

# Experiments default to a 10-degree frustum with the camera near d = 2.5:
# the visible working set is then ~8-11% of the blocks, comfortably below
# the DRAM share (25% at cache ratio 0.5) so that predicted + current
# blocks fit in fast memory together — the regime the paper targets
# ("the total size of the predicted and current visible blocks is equal to
# the cache size in faster memory", §IV-B).
DEFAULT_VIEW_ANGLE_DEG = 10.0


def fresh_hierarchy(
    grid: BlockGrid,
    cache_ratio: float = 0.5,
    policy: str = "lru",
    n_variables: int = 1,
) -> MemoryHierarchy:
    """A new DRAM/SSD-over-HDD hierarchy sized for ``grid`` (§V-A ratios)."""
    return make_standard_hierarchy(
        n_blocks=grid.n_blocks,
        block_nbytes=grid.uniform_block_nbytes(n_variables=n_variables),
        cache_ratio=cache_ratio,
        policy=policy,
    )


def belady_hierarchy(
    grid: BlockGrid,
    trace: Sequence[int],
    cache_ratio: float = 0.5,
    n_variables: int = 1,
) -> MemoryHierarchy:
    """Hierarchy with offline Belady-OPT at the fastest level.

    Only the fastest level sees the full (policy-independent) demand trace;
    slower levels fall back to LRU because their access streams depend on
    upper-level evictions.
    """
    block_nbytes = grid.uniform_block_nbytes(n_variables=n_variables)
    n = grid.n_blocks
    ssd_cap = max(1, round(n * cache_ratio))
    dram_cap = max(1, round(n * cache_ratio * cache_ratio))
    levels = [
        CacheLevel("dram", dram_cap, BeladyPolicy(trace), n_blocks=n),
        CacheLevel("ssd", ssd_cap, make_policy("lru"), n_blocks=n),
    ]
    return MemoryHierarchy(levels, [DRAM, SSD], HDD, block_nbytes)


@dataclass
class ExperimentSetup:
    """A dataset analogue with its grid, tables, and replay context factory."""

    volume: Volume
    grid: BlockGrid
    view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG
    cache_ratio: float = 0.5
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    render_model: RenderCostModel = field(default_factory=RenderCostModel)
    seed: SeedLike = 0
    _vtable: Optional[VisibleTable] = None
    _itable: Optional[ImportanceTable] = None

    @classmethod
    def for_dataset(
        cls,
        name: str,
        target_n_blocks: int,
        scale: Optional[float] = None,
        view_angle_deg: float = DEFAULT_VIEW_ANGLE_DEG,
        cache_ratio: float = 0.5,
        sampling: Optional[SamplingConfig] = None,
        seed: SeedLike = 0,
    ) -> "ExperimentSetup":
        """Build a setup from a Table I dataset analogue and a block budget."""
        volume = make_dataset(name, scale=scale, seed=seed)
        grid = BlockGrid.with_target_blocks(volume.shape, target_n_blocks)
        return cls(
            volume=volume,
            grid=grid,
            view_angle_deg=view_angle_deg,
            cache_ratio=cache_ratio,
            sampling=sampling or SamplingConfig(),
            seed=seed,
        )

    @property
    def importance_table(self) -> ImportanceTable:
        if self._itable is None:
            self._itable = build_importance_table(self.volume, self.grid)
        return self._itable

    @property
    def visible_table(self) -> VisibleTable:
        if self._vtable is None:
            self._vtable = build_visible_table(
                self.grid,
                self.sampling,
                self.view_angle_deg,
                cache_ratio=self.cache_ratio,
                importance=self.importance_table,
                seed=self.seed,
            )
        return self._vtable

    def rebuild_visible_table(self, **kwargs) -> VisibleTable:
        """Rebuild ``T_visible`` with overrides (sampling sweeps, fixed r)."""
        params = dict(
            sampling=self.sampling,
            cache_ratio=self.cache_ratio,
            seed=self.seed,
        )
        params.update(kwargs)
        sampling = params.pop("sampling")
        self._vtable = build_visible_table(
            self.grid,
            sampling,
            self.view_angle_deg,
            importance=self.importance_table,
            **params,
        )
        return self._vtable

    def context(self, path: CameraPath) -> PipelineContext:
        return PipelineContext.create(path, self.grid, self.render_model)

    def hierarchy(
        self,
        policy: str = "lru",
        cache_ratio: Optional[float] = None,
        shards: int = 1,
        shard_map: str = "slab",
    ) -> MemoryHierarchy:
        if shards > 1:
            from repro.cluster import make_sharded_hierarchy

            return make_sharded_hierarchy(
                self.grid,
                shards,
                strategy=shard_map,
                cache_ratio=self.cache_ratio if cache_ratio is None else cache_ratio,
                policy=policy,
            )
        return fresh_hierarchy(
            self.grid,
            cache_ratio=self.cache_ratio if cache_ratio is None else cache_ratio,
            policy=policy,
            n_variables=1,
        )

    def optimizer(self, config: Optional[OptimizerConfig] = None) -> AppAwareOptimizer:
        return AppAwareOptimizer(self.visible_table, self.importance_table, config)


def compare_policies(
    setup: ExperimentSetup,
    path: CameraPath,
    baselines: Sequence[str] = ("fifo", "lru"),
    include_app_aware: bool = True,
    include_belady: bool = False,
    optimizer_config: Optional[OptimizerConfig] = None,
    cache_ratio: Optional[float] = None,
    faults: str = "none",
    fault_seed: int = 0,
    engine: str = "batched",
    shards: int = 1,
    shard_map: str = "slab",
) -> Dict[str, RunResult]:
    """Replay ``path`` under each policy with identical demand sequences.

    Returns results keyed by policy name (``'opt'`` is the app-aware
    method, matching the paper's figure legends).

    ``faults`` names a profile from :data:`repro.faults.FAULT_PROFILES`;
    anything but ``"none"`` gives every run a fresh seeded
    :class:`~repro.faults.FaultInjector` (via
    :meth:`repro.runtime.RunContext.create`).  The fault draws are
    counter-based over ``(seed, device, block, step, attempt)``, so every
    policy replays against the *same* fault environment — the comparison
    stays apples-to-apples under failure.

    ``shards`` > 1 runs every policy on a K-node
    :class:`~repro.cluster.ShardedHierarchy` (ownership strategy
    ``shard_map``); the Belady run, when requested, stays single-box —
    the offline oracle has no sharded counterpart.
    """

    def _ctx() -> RunContext:
        return RunContext.create(faults=faults, fault_seed=fault_seed)

    # Only thread the shard kwargs through when sharding is requested, so
    # duck-typed setups with the pre-cluster hierarchy() signature keep
    # working for single-box comparisons.
    shard_kwargs = dict(shards=shards, shard_map=shard_map) if shards > 1 else {}

    context = setup.context(path)
    results: Dict[str, RunResult] = {}
    for policy in baselines:
        results[policy] = run_baseline(
            context,
            setup.hierarchy(policy, cache_ratio, **shard_kwargs),
            engine=engine,
            ctx=_ctx(),
        )
    if include_belady:
        trace = context.demand_trace()
        hierarchy = belady_hierarchy(
            setup.grid,
            trace,
            cache_ratio=setup.cache_ratio if cache_ratio is None else cache_ratio,
        )
        results["belady"] = run_baseline(
            context, hierarchy, name="baseline-belady", engine=engine, ctx=_ctx()
        )
    if include_app_aware:
        optimizer = setup.optimizer(optimizer_config)
        results["opt"] = optimizer.run(
            context,
            setup.hierarchy("lru", cache_ratio, **shard_kwargs),
            engine=engine,
            ctx=_ctx(),
        )
    return results
