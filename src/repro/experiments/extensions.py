"""Extension experiments (beyond the paper's figures).

Same :class:`~repro.experiments.figures.FigureResult` protocol as the
paper figures, so the CLI regenerates them and the benches assert their
shapes:

- :func:`prefetch_strategies` — table vs motion vs Markov vs none;
- :func:`temporal` — next-timestep prefetch on time-varying climate;
- :func:`interactive_quality` — frame coverage/PSNR under an I/O deadline;
- :func:`multires_tradeoff` — LoD bytes vs data-dependent accuracy;
- :func:`layout_locality` — Z-order vs row-major file locality;
- :func:`scheduling` — analytic vs event-driven total-time accounting;
- :func:`iso_sweep` — a data-dependent (isovalue-slider) workload where
  the entropy preload alone eliminates the miss stream;
- :func:`multinode` — sort-last parallel rendering with importance-LPT vs
  spatial-slab block distribution (§VI future work, operational).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.camera.frustum import visible_blocks
from repro.camera.path import random_path, spherical_path
from repro.camera.sampling import SamplingConfig
from repro.core.interactive import render_quality_series
from repro.core.pipeline import PipelineContext
from repro.core.schedule import event_driven_total_time
from repro.runtime.drivers import run_budgeted, run_temporal
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentSetup, compare_policies
from repro.prefetch import (
    MarkovPrefetcher,
    MotionExtrapolationPrefetcher,
    NoPrefetcher,
    TableLookupPrefetcher,
    run_with_prefetcher,
)
from repro.render.isosurface import isosurface_blocks
from repro.render.query import BlockRangeIndex, RangeQuery, evaluate_query
from repro.render.raycast import Raycaster, RenderSettings
from repro.storage.hierarchy import make_standard_hierarchy
from repro.tables.builder import build_visible_table
from repro.volume.blocks import BlockGrid
from repro.volume.layout import morton_layout, row_major_layout
from repro.volume.multires import MipPyramid, select_levels_by_distance
from repro.volume.synthetic import combustion_field
from repro.volume.timeseries import make_time_varying_climate
from repro.volume.volume import Volume

__all__ = [
    "iso_sweep",
    "multinode",
    "prefetch_strategies",
    "temporal",
    "interactive_quality",
    "multires_tradeoff",
    "layout_locality",
    "scheduling",
]

_EXT_VIEW = 10.0


def prefetch_strategies(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Prefetch-strategy ablation under identical accounting."""
    sampling = SamplingConfig(
        n_directions=720 if full else 96, n_distances=2, distance_range=(2.2, 2.8)
    )
    setup = ExperimentSetup.for_dataset(
        "3d_ball", target_n_blocks=2048, sampling=sampling, seed=seed
    )
    path = random_path(
        n_positions=400 if full else 60, degree_change=(5.0, 10.0), distance=2.5,
        view_angle_deg=setup.view_angle_deg, seed=seed,
    )
    context = setup.context(path)
    itable = setup.importance_table
    sigma = itable.threshold_for_percentile(0.5)

    strategies = {
        "none": NoPrefetcher(),
        "table (paper)": TableLookupPrefetcher(setup.visible_table, itable, sigma),
        "motion": MotionExtrapolationPrefetcher(setup.grid, setup.view_angle_deg),
        "markov": MarkovPrefetcher(),
    }
    labels, miss, io_s, prefetch_s, total_s = [], [], [], [], []
    for label, strategy in strategies.items():
        r = run_with_prefetcher(
            context, setup.hierarchy("lru"), strategy,
            preload_importance=itable, preload_sigma=sigma,
        )
        labels.append(label)
        miss.append(r.total_miss_rate)
        io_s.append(r.io_time_s)
        prefetch_s.append(r.prefetch_time_s)
        total_s.append(r.total_time_s)
    return [
        FigureResult(
            "ext_prefetch",
            "prefetch strategy ablation (3d_ball, 2048 blocks, random 5-10 deg)",
            "strategy",
            labels,
            {"miss_rate": miss, "io_s": io_s, "prefetch_s": prefetch_s, "total_s": total_s},
        )
    ]


def temporal(full: bool = False, seed: int = 11) -> List[FigureResult]:
    """Next-timestep prefetch on time-varying climate data."""
    shape = (74, 64, 24) if full else (48, 40, 16)
    n_timesteps = 8 if full else 4
    n_path = 160 if full else 48
    series = make_time_varying_climate(shape=shape, n_timesteps=n_timesteps, seed=seed)
    grid = BlockGrid.with_target_blocks(series.shape, 512 if full else 64)
    path = spherical_path(
        n_positions=n_path, degrees_per_step=4.0, distance=2.5,
        view_angle_deg=_EXT_VIEW, seed=seed,
    )
    context = PipelineContext.create(path, grid)
    sampling = SamplingConfig(
        n_directions=256 if full else 64, n_distances=2, distance_range=(2.3, 2.7)
    )
    vtable = build_visible_table(grid, sampling, _EXT_VIEW, seed=0)
    itable = series.temporal_importance(grid)
    sigma = itable.threshold_for_percentile(0.25)
    steps_per_timestep = n_path // n_timesteps

    def hierarchy():
        return make_standard_hierarchy(
            n_blocks=series.n_total_blocks(grid),
            block_nbytes=grid.uniform_block_nbytes(),
        )

    on = run_temporal(
        context, series, hierarchy(), steps_per_timestep=steps_per_timestep,
        visible_table=vtable, importance=itable, sigma=sigma,
    )
    off = run_temporal(
        context, series, hierarchy(), steps_per_timestep=steps_per_timestep,
        visible_table=vtable, importance=itable, sigma=sigma,
        prefetch_next_timestep=False,
    )
    boundary = steps_per_timestep
    return [
        FigureResult(
            "ext_temporal",
            f"temporal replay ({n_timesteps} timesteps, {n_path} views)",
            "variant",
            ["temporal prefetch", "no prefetch"],
            {
                "miss_rate": [on.total_miss_rate, off.total_miss_rate],
                "boundary_misses": [
                    on.steps[boundary].n_fast_misses,
                    off.steps[boundary].n_fast_misses,
                ],
                "total_s": [on.total_time_s, off.total_time_s],
            },
            meta={"steps_per_timestep": steps_per_timestep},
        )
    ]


def interactive_quality(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Frame coverage and PSNR under a per-frame demand-I/O deadline."""
    setup = ExperimentSetup.for_dataset(
        "3d_ball", target_n_blocks=512,
        sampling=SamplingConfig(
            n_directions=256 if full else 96, n_distances=2, distance_range=(2.2, 2.8)
        ),
        seed=seed,
    )
    path = random_path(
        n_positions=200 if full else 50, degree_change=(5.0, 10.0), distance=2.5,
        view_angle_deg=setup.view_angle_deg, seed=3,
    )
    context = setup.context(path)
    itable = setup.importance_table
    sigma = itable.threshold_for_percentile(0.25)
    budget = 0.030

    plain = run_budgeted(context, setup.hierarchy("lru"), io_budget_s=budget, name="lru")
    aware = run_budgeted(
        context, setup.hierarchy("lru"), io_budget_s=budget,
        importance=itable, visible_table=setup.visible_table,
        sigma=sigma, preload=True, name="app-aware",
    )
    rc = Raycaster(setup.volume, settings=RenderSettings(width=48, height=48, n_samples=48))

    def finite_mean(series):
        vals = [q for _, q in series if np.isfinite(q)]
        return float(np.mean(vals)) if vals else float("inf")

    q_plain = finite_mean(render_quality_series(plain, context, rc, every=10))
    q_aware = finite_mean(render_quality_series(aware, context, rc, every=10))
    return [
        FigureResult(
            "ext_interactive",
            f"budgeted interaction ({budget * 1e3:.0f} ms/frame demand I/O)",
            "variant",
            ["lru", "app-aware"],
            {
                "mean_coverage": [plain.mean_coverage, aware.mean_coverage],
                "min_coverage": [plain.min_coverage, aware.min_coverage],
                "full_frames": [plain.full_frames, aware.full_frames],
                "mean_psnr_db": [q_plain, q_aware],
            },
        )
    ]


def multires_tradeoff(full: bool = False, seed: int = 7) -> List[FigureResult]:
    """LoD byte savings vs data-dependent accuracy per pyramid level."""
    shape = (100, 100, 50) if full else (64, 64, 32)
    volume = Volume(combustion_field(shape, seed=seed), name="lifted_rr")
    grid = BlockGrid.with_target_blocks(volume.shape, 512)
    pyramid = MipPyramid(volume, block_shape=grid.block_shape, n_levels=3)
    camera = np.array([2.5, 0.3, -0.2])

    visible = visible_blocks(camera, grid, _EXT_VIEW)
    levels = select_levels_by_distance(camera, grid, pyramid.n_levels)
    block_bytes = grid.uniform_block_nbytes()
    full_bytes = len(visible) * block_bytes
    lod_bytes = int(sum(block_bytes / (8 ** int(levels[b])) for b in visible))

    data0 = pyramid.levels[0].data().astype(np.float64)
    level_ids, hist_l1, query_voxels = [], [], []
    for k in range(pyramid.n_levels):
        recon = pyramid.reconstruct_full(k).astype(np.float64)
        h_full, _ = np.histogram(data0, bins=32, range=(data0.min(), data0.max()))
        h_rec, _ = np.histogram(recon, bins=32, range=(data0.min(), data0.max()))
        level_ids.append(k)
        hist_l1.append(float(np.abs(h_full - h_rec).sum()) / data0.size)
        _, counts = evaluate_query(
            Volume(recon.astype(np.float32)), grid, RangeQuery({"var0": (0.5, 1.0)})
        )
        query_voxels.append(int(counts.sum()))
    return [
        FigureResult(
            "ext_multires",
            "data-dependent accuracy per pyramid level (level 0 = truth)",
            "level",
            level_ids,
            {"hist_L1": hist_l1, "query_voxels": query_voxels},
            meta={"full_bytes": full_bytes, "lod_bytes": lod_bytes},
        )
    ]


def layout_locality(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Z-order vs row-major file locality by workload shape."""
    n = 16 if full else 8
    grid = BlockGrid((n * 4, n * 4, n * 4), (4, 4, 4))
    morton = morton_layout(grid)
    row = row_major_layout(grid)
    rng = np.random.default_rng(seed)

    def sorted_span(layout, ids):
        slots = np.sort(layout[np.asarray(ids, dtype=np.int64)])
        return int(slots[-1] - slots[0])

    box_spans = {"morton": [], "row": []}
    for _ in range(40):
        s = 2
        o = rng.integers(0, n // s, 3) * s
        ids = [
            grid.block_id(o[0] + i, o[1] + j, o[2] + k)
            for i in range(s) for j in range(s) for k in range(s)
        ]
        box_spans["morton"].append(sorted_span(morton, ids))
        box_spans["row"].append(sorted_span(row, ids))

    cone_gaps = {"morton": [], "row": []}
    for _ in range(10):
        pos = rng.standard_normal(3)
        pos = 2.5 * pos / np.linalg.norm(pos)
        ids = visible_blocks(pos, grid, 12.0)
        if len(ids) < 3:
            continue
        for name, layout in (("morton", morton), ("row", row)):
            slots = np.sort(layout[ids])
            cone_gaps[name].append(float(np.diff(slots).mean()))

    return [
        FigureResult(
            "ext_layout",
            f"file locality by layout ({grid.n_blocks} blocks)",
            "workload",
            ["aligned 2^3 box span", "frustum mean slot gap"],
            {
                "morton": [float(np.mean(box_spans["morton"])),
                           float(np.mean(cone_gaps["morton"]))],
                "row_major": [float(np.mean(box_spans["row"])),
                              float(np.mean(cone_gaps["row"]))],
            },
        )
    ]


def scheduling(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Analytic (§V-D) vs event-driven total-time accounting."""
    setup = ExperimentSetup.for_dataset(
        "3d_ball", target_n_blocks=2048,
        sampling=SamplingConfig(
            n_directions=720 if full else 96, n_distances=2, distance_range=(2.2, 2.8)
        ),
        seed=seed,
    )
    labels, analytic, event, gap = [], [], [], []
    for lo, hi in ((0.0, 5.0), (10.0, 15.0), (25.0, 30.0)):
        path = random_path(
            n_positions=400 if full else 60, degree_change=(lo, hi), distance=2.5,
            view_angle_deg=setup.view_angle_deg, seed=seed,
        )
        results = compare_policies(setup, path, baselines=("lru",))
        for name in ("lru", "opt"):
            r = results[name]
            a = r.total_time_s
            e = event_driven_total_time(r)
            labels.append(f"{lo:g}-{hi:g} {name}")
            analytic.append(a)
            event.append(e)
            gap.append((e - a) / a)
    return [
        FigureResult(
            "ext_scheduling",
            "analytic (paper) vs event-driven totals",
            "workload",
            labels,
            {"analytic_s": analytic, "event_driven_s": event, "rel_gap": gap},
        )
    ]


def iso_sweep(full: bool = False, seed: int = 7) -> List[FigureResult]:
    """A data-dependent workload: the user animates the isovalue slider.

    The paper evaluates view-driven exploration; its §III-A also motivates
    isosurface work, whose working set is the *straddling blocks* of the
    current isovalue — a demand stream driven by data, not by the camera.
    This experiment sweeps the isovalue across the combustion analogue and
    replays the straddle sets through the hierarchy under FIFO/LRU, the
    offline Belady bound, and LRU + the entropy preload (the part of
    Algorithm 1 that survives without camera prediction).  High-entropy
    blocks are exactly the ones isosurfaces cross, so the preload pays.
    """
    shape = (100, 100, 50) if full else (64, 64, 32)
    volume = Volume(combustion_field(shape, seed=seed), name="lifted_rr")
    grid = BlockGrid.with_target_blocks(volume.shape, 512)
    index = BlockRangeIndex.build(volume, grid)
    lo, hi = volume.value_range()
    span = hi - lo
    n_steps = 200 if full else 60
    # Triangle sweep across the interesting value range, like a user
    # scrubbing the slider up and down.
    t = np.linspace(0.0, 2.0, n_steps)
    isos = lo + span * (0.15 + 0.55 * np.abs(1.0 - t))

    working_sets = [isosurface_blocks(index, "var0", float(v)) for v in isos]

    from repro.camera.path import spherical_path
    from repro.core.pipeline import run_baseline
    from repro.importance.entropy import block_entropies
    from repro.render.render_model import RenderCostModel
    from repro.tables.importance_table import ImportanceTable

    dummy_path = spherical_path(
        n_positions=n_steps, degrees_per_step=1.0, distance=2.5,
        view_angle_deg=_EXT_VIEW, seed=0,
    )
    context = PipelineContext(
        path=dummy_path, grid=grid, visible_sets=working_sets,
        render_model=RenderCostModel(),
    )

    def hierarchy(policy="lru"):
        return make_standard_hierarchy(
            n_blocks=grid.n_blocks, block_nbytes=grid.uniform_block_nbytes(),
            policy=policy,
        )

    labels, miss, total = [], [], []
    for policy in ("fifo", "lru"):
        r = run_baseline(context, hierarchy(policy))
        labels.append(policy)
        miss.append(r.total_miss_rate)
        total.append(r.total_time_s)

    from repro.experiments.runner import belady_hierarchy

    rb = run_baseline(context, belady_hierarchy(grid, context.demand_trace()))
    labels.append("belady")
    miss.append(rb.total_miss_rate)
    total.append(rb.total_time_s)

    # LRU + entropy preload: the data-dependent half of Algorithm 1.
    itable = ImportanceTable(block_entropies(volume, grid))
    h = hierarchy("lru")
    h.preload([int(b) for b in itable.sorted_ids()])
    rp = run_baseline(context, h, name="lru+preload")
    labels.append("lru+preload")
    miss.append(rp.total_miss_rate)
    total.append(rp.total_time_s)

    return [
        FigureResult(
            "ext_iso_sweep",
            f"isovalue-sweep workload ({n_steps} slider positions, {grid.n_blocks} blocks)",
            "policy",
            labels,
            {"miss_rate": miss, "total_s": total},
        )
    ]


def multinode(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Sort-last parallel rendering: frame time under two distributions.

    Each of ``n_nodes`` render nodes owns a block partition; a frame waits
    for its slowest node (compositing barrier).  Importance-LPT interleaves
    the hot region across nodes; spatial slabs hand it to one node.
    """
    from repro.importance.entropy import block_entropies
    from repro.parallel.distribution import partition_by_importance, partition_spatial
    from repro.parallel.multinode import run_multinode
    from repro.volume.datasets import make_dataset

    volume = make_dataset("3d_ball", scale=0.125 if full else 0.0625, seed=seed)
    grid = BlockGrid.with_target_blocks(volume.shape, 2048 if full else 512)
    path = spherical_path(
        n_positions=200 if full else 40, degrees_per_step=6.0, distance=2.5,
        view_angle_deg=_EXT_VIEW, seed=seed,
    )
    context = PipelineContext.create(path, grid)
    scores = block_entropies(volume, grid)

    labels, total, eff, imbalance = [], [], [], []
    for n_nodes in (4, 8):
        for pname, assignment in (
            ("spatial slabs", partition_spatial(grid, n_nodes)),
            ("importance-LPT", partition_by_importance(scores, n_nodes)),
        ):
            r = run_multinode(context, assignment, n_nodes, name=pname)
            labels.append(f"{n_nodes} nodes, {pname}")
            total.append(r.total_time_s)
            eff.append(r.parallel_efficiency)
            imbalance.append(r.load_imbalance)
    return [
        FigureResult(
            "ext_multinode",
            f"sort-last parallel rendering ({grid.n_blocks} blocks, {len(path)} views)",
            "configuration",
            labels,
            {"total_s": total, "efficiency": eff, "busy_imbalance": imbalance},
        )
    ]
