"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments --figure fig12
    python -m repro.experiments --figure fig9 --full
    python -m repro.experiments --all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import extensions, figures

_FIGURES = {
    "table1": None,  # special-cased: returns a string
    "fig7": figures.fig7,
    "fig9": figures.fig9,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "ablations": figures.ablations,
    # Extensions (beyond the paper)
    "ext_prefetch": extensions.prefetch_strategies,
    "ext_temporal": extensions.temporal,
    "ext_interactive": extensions.interactive_quality,
    "ext_multires": extensions.multires_tradeoff,
    "ext_layout": extensions.layout_locality,
    "ext_scheduling": extensions.scheduling,
    "ext_iso_sweep": extensions.iso_sweep,
    "ext_multinode": extensions.multinode,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures (text form).",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(_FIGURES),
        help="which experiment to run",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale sweeps (minutes) instead of quick bench sizes",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if not args.all and not args.figure:
        parser.error("pass --figure <name> or --all")

    names = sorted(_FIGURES) if args.all else [args.figure]
    for name in names:
        if name == "table1":
            print(figures.table1())
            print()
            continue
        panels = _FIGURES[name](full=args.full, seed=args.seed)
        for panel in panels:
            print(panel.report)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
