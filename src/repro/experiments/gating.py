"""Shared snapshot-comparison (gating) machinery.

Every snapshot family in the repo — ``BENCH_*.json`` (three tiers),
``SERVE_*.json``, and ``MATRIX_*.json`` — gates CI the same way: flatten
the simulated-clock metrics of two snapshots to ``{name: value}``, then
diff each metric against a per-direction threshold.  The flattening and
threshold logic used to be hand-rolled three times (``obs/bench.py``,
the cluster branch of its ``comparable_metrics``, and
``experiments/loadgen.py``); this module is the single implementation
they all call now.

The vocabulary:

- a :class:`GateRule` says how one metric gates — its good *direction*,
  its comparison *mode* (relative change, strict-zero relative change,
  absolute increase, absolute drop), and a threshold *scale* (wall-clock
  metrics gate at a widened threshold);
- a *metric set* is ``{name: (value, GateRule)}``;
- :func:`compare_metric_sets` diffs two metric sets into rows with the
  canonical statuses ``"regression"`` / ``"improved"`` / ``"ok"`` /
  ``"missing"`` (metrics missing on either side never regress).

The flatteners (:func:`flatten_run_summary`,
:func:`flatten_multi_tenant`, :func:`flatten_cluster_section`) turn the
recurring snapshot sections into metric sets; the legacy comparison
entry points (``compare_bench``, ``compare_serve``) are thin wrappers
that translate the canonical rows back into their historical row shapes
so committed baselines and existing CI invocations keep gating with
bit-identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "GateRule",
    "MetricSet",
    "WALL_THRESHOLD_FACTOR",
    "SUMMARY_METRIC_DIRECTIONS",
    "DERIVED_METRIC_DIRECTIONS",
    "is_wall_metric",
    "compare_metric_sets",
    "count_regressions",
    "format_gate_rows",
    "flatten_run_summary",
    "flatten_multi_tenant",
    "flatten_cluster_section",
]

#: Wall-clock/RSS metrics are machine-noisy; they gate at
#: ``threshold * WALL_THRESHOLD_FACTOR`` so same-machine CI catches
#: multi-x slowdowns without flaking on scheduler jitter.  (Canonical
#: home; ``repro.obs.bench`` re-exports it for compatibility.)
WALL_THRESHOLD_FACTOR = 4.0

#: run ``summary`` metric -> good direction ("lower" = increases regress).
SUMMARY_METRIC_DIRECTIONS = {
    "total_miss_rate": "lower",
    "fast_miss_rate": "lower",
    "io_time_s": "lower",
    "total_time_s": "lower",
    "bytes_moved": "lower",
}

#: run ``derived`` metric -> good direction.
DERIVED_METRIC_DIRECTIONS = {
    "prefetch_precision": "higher",
    "prefetch_recall": "higher",
}


def is_wall_metric(name: str) -> bool:
    """Wall-clock/RSS metric names gate at the widened threshold."""
    return name.endswith("wall_s") or name.endswith("_rss_bytes")


@dataclass(frozen=True)
class GateRule:
    """How one metric gates.

    ``direction``
        ``"lower"`` (increases are bad) or ``"higher"``.
    ``mode``
        - ``"relative"`` — change relative to ``max(|old|, abs_floor)``;
          regresses past ``threshold * scale`` in the bad direction.
        - ``"relative_strict_zero"`` — like ``"relative"``, but an old
          value of exactly 0 tolerates no increase at all (the serve
          gate's rule: a metric that was clean must stay clean).
        - ``"absolute_increase"`` — any increase regresses, threshold
          ignored (cross-tenant evictions).
        - ``"absolute_drop"`` — a drop of more than ``threshold * scale``
          in absolute units regresses (the Jain fairness index).
    ``scale``
        Threshold multiplier; wall-clock metrics use
        :data:`WALL_THRESHOLD_FACTOR`.
    """

    direction: str = "lower"
    mode: str = "relative"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(f"direction must be 'lower'/'higher', got {self.direction!r}")
        if self.mode not in (
            "relative", "relative_strict_zero", "absolute_increase", "absolute_drop",
        ):
            raise ValueError(f"unknown gate mode {self.mode!r}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")


#: ``{metric name: (value, rule)}`` — what the flatteners produce and
#: :func:`compare_metric_sets` consumes.
MetricSet = Dict[str, Tuple[float, GateRule]]


def _compare_one(
    old_value: float, new_value: float, rule: GateRule, threshold: float, abs_floor: float
) -> Tuple[float, bool, bool]:
    """Returns ``(change, regressed, improved)`` for one metric pair."""
    limit = threshold * rule.scale
    if rule.mode == "absolute_increase":
        change = new_value - old_value
        bad = new_value > old_value
        good = new_value < old_value
    elif rule.mode == "absolute_drop":
        change = new_value - old_value
        drop = old_value - new_value if rule.direction == "higher" else new_value - old_value
        bad = drop > limit
        good = drop < 0
    elif rule.mode == "relative_strict_zero" and old_value == 0.0:
        worse = new_value > 0.0 if rule.direction == "lower" else new_value < 0.0
        change = float("inf") if new_value > 0.0 else (
            float("-inf") if new_value < 0.0 else 0.0
        )
        bad = worse
        good = False
    else:
        denom = max(abs(old_value), abs_floor)
        change = (new_value - old_value) / denom
        bad = change > limit if rule.direction == "lower" else change < -limit
        good = change < 0 if rule.direction == "lower" else change > 0
    return change, bad, good and change != 0


def compare_metric_sets(
    old: Mapping[str, Tuple[float, GateRule]],
    new: Mapping[str, Tuple[float, GateRule]],
    threshold: float = 0.10,
    abs_floor: float = 1e-12,
) -> List[Dict[str, object]]:
    """Diff two metric sets; one row per metric present in either.

    Rows are sorted by metric name and carry ``metric`` / ``old`` /
    ``new`` / ``change`` / ``direction`` / ``status``; metrics missing
    on either side report status ``"missing"`` (with the present side's
    value) and never regress.  The rule of the *new* side wins when the
    two sides disagree (a renamed direction applies immediately).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    rows: List[Dict[str, object]] = []
    for name in sorted(set(old) | set(new)):
        if name not in old or name not in new:
            rows.append({
                "metric": name,
                "status": "missing",
                "old": old.get(name, (None,))[0],
                "new": new.get(name, (None,))[0],
            })
            continue
        old_value, _old_rule = old[name]
        new_value, rule = new[name]
        change, bad, good = _compare_one(
            float(old_value), float(new_value), rule, threshold, abs_floor
        )
        rows.append({
            "metric": name,
            "old": float(old_value),
            "new": float(new_value),
            "change": change,
            "direction": rule.direction,
            "status": "regression" if bad else ("improved" if good else "ok"),
        })
    return rows


def count_regressions(rows: List[Dict[str, object]]) -> int:
    return sum(1 for r in rows if r["status"] == "regression")


def format_gate_rows(rows: List[Dict[str, object]], verbose: bool = False) -> str:
    """Human-readable comparison table; non-ok rows always shown."""
    lines = [f"{'metric':<58} {'old':>12} {'new':>12} {'change':>9}  status"]
    lines.append("-" * len(lines[0]))
    shown = 0
    for row in rows:
        if row["status"] == "ok" and not verbose:
            continue
        shown += 1
        old = "-" if row.get("old") is None else f"{row['old']:.6g}"
        new = "-" if row.get("new") is None else f"{row['new']:.6g}"
        change = f"{row['change']:+.1%}" if "change" in row else "-"
        lines.append(f"{row['metric']:<58} {old:>12} {new:>12} {change:>9}  {row['status']}")
    n_reg = count_regressions(rows)
    lines.append(
        f"{len(rows)} metrics compared, {n_reg} regression(s), "
        f"{len(rows) - shown} unchanged/ok hidden"
        if not verbose
        else f"{len(rows)} metrics compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)


# -- flatteners ---------------------------------------------------------------


def flatten_run_summary(
    run: Mapping[str, object],
    prefix: str,
    wall_metrics: Tuple[str, ...] = (),
) -> MetricSet:
    """Flatten one run cell (``summary``/``derived``/histograms/trace drops).

    This is the per-run section shared by every bench tier and every
    matrix cell.  ``wall_metrics`` names top-level run keys (fullscale
    tier: ``wall_s``, ``per_step_wall_s``) additionally gated at the
    widened wall threshold.
    """
    out: MetricSet = {}
    summary = run.get("summary", {})
    for name, direction in SUMMARY_METRIC_DIRECTIONS.items():
        value = summary.get(name)
        if isinstance(value, (int, float)):
            out[f"{prefix}.{name}"] = (float(value), GateRule(direction))
    derived = run.get("derived", {})
    for name, direction in DERIVED_METRIC_DIRECTIONS.items():
        value = derived.get(name)
        if isinstance(value, (int, float)):
            out[f"{prefix}.{name}"] = (float(value), GateRule(direction))
    for hist_name in ("fetch_latency_seconds", "frame_time_seconds"):
        for labels, row in sorted(derived.get(hist_name, {}).items()):
            for pct in ("p50", "p95", "p99"):
                value = row.get(pct)
                if isinstance(value, (int, float)):
                    out[f"{prefix}.{hist_name}{{{labels}}}.{pct}"] = (
                        float(value), GateRule("lower"),
                    )
    drops = run.get("trace", {}).get("n_dropped")
    if isinstance(drops, int):
        out[f"{prefix}.trace.n_dropped"] = (float(drops), GateRule("lower"))
    for name in wall_metrics:
        value = run.get(name)
        if isinstance(value, (int, float)):
            out[f"{prefix}.{name}"] = (
                float(value), GateRule("lower", scale=WALL_THRESHOLD_FACTOR),
            )
    return out


def flatten_multi_tenant(
    mt: Mapping[str, object],
    prefix: str = "multi_tenant",
    strict_zero: bool = False,
    relative: bool = False,
) -> MetricSet:
    """Flatten a ``multi_tenant`` section (bench suite or serve snapshot).

    Per-tenant and pooled frame-time percentiles, makespan, the Jain
    fairness index (absolute-drop gate), and cross-tenant evictions
    (absolute-increase gate).  ``strict_zero=True`` applies the serve
    gate's zero rule: a percentile that was exactly 0 must stay 0.
    ``relative=True`` gates fairness/cross-evictions relatively instead
    of absolutely — the bench tier's historical semantics.
    """
    mode = "relative_strict_zero" if strict_zero else "relative"
    frames = mt["frame_times"]
    out: MetricSet = {
        f"{prefix}.fairness_jain": (
            float(frames["fairness_jain"]),
            GateRule("higher") if relative else GateRule("higher", mode="absolute_drop"),
        ),
        f"{prefix}.cross_evictions": (
            float(mt["cross_evictions"]),
            GateRule("lower") if relative else GateRule("lower", mode="absolute_increase"),
        ),
        f"{prefix}.makespan_s": (float(mt["makespan_s"]), GateRule("lower", mode=mode)),
    }
    for pct in ("p50", "p95", "p99"):
        out[f"{prefix}.pooled.{pct}"] = (
            float(frames["pooled"][pct]), GateRule("lower", mode=mode),
        )
    for tenant, row in sorted(frames["per_tenant"].items()):
        for pct in ("p50", "p95", "p99"):
            out[f"{prefix}.{tenant}.{pct}"] = (
                float(row[pct]), GateRule("lower", mode=mode),
            )
    return out


def flatten_cluster_section(
    section: Mapping[str, object], prefix: str = "cluster"
) -> MetricSet:
    """Flatten a cluster-tier network ledger (all simulated quantities)."""
    out: MetricSet = {}
    for route, value in sorted(section.get("split_bytes", {}).items()):
        if isinstance(value, (int, float)):
            out[f"{prefix}.split_bytes.{route}"] = (float(value), GateRule("lower"))
    locality = section.get("shard_map", {}).get("locality_score")
    if isinstance(locality, (int, float)):
        out[f"{prefix}.locality_score"] = (float(locality), GateRule("higher"))
    for name, direction in (
        ("peer_bytes", "lower"),
        ("peer_time_s", "lower"),
        ("peer_transfers", "lower"),
        ("link_fallbacks", "lower"),
        ("fallback_reads", "lower"),
    ):
        value = section.get(name)
        if isinstance(value, (int, float)):
            out[f"{prefix}.{name}"] = (float(value), GateRule(direction))
    for link, row in sorted(section.get("links", {}).items()):
        for field in ("bytes", "time_s"):
            value = row.get(field)
            if isinstance(value, (int, float)):
                out[f"{prefix}.link.{link}.{field}"] = (float(value), GateRule("lower"))
    return out
