"""Generic cartesian parameter sweeps.

The figure modules hand-roll their sweeps to mirror the paper exactly;
this utility is for *new* studies on top of the library: give it a
function from parameters to metrics and a grid of parameter values, get a
result object that tabulates and re-slices into series.

>>> def run(block_count, policy):
...     return {"miss_rate": simulate(block_count, policy)}
>>> sweep = parameter_sweep(run, {"block_count": [512, 2048],
...                               "policy": ["lru", "fifo"]})
>>> print(sweep.to_table())
>>> x, series = sweep.series(x="block_count", metric="miss_rate", group_by="policy")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.matrix import expand_grid
from repro.experiments.report import format_table

__all__ = ["SweepResult", "parameter_sweep"]


@dataclass
class SweepResult:
    """Rows of (parameters, metrics) from a cartesian sweep."""

    param_names: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    rows: List[Tuple[Dict[str, Any], Dict[str, float]]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def to_table(self, title: str = "") -> str:
        headers = list(self.param_names) + list(self.metric_names)
        body = [
            [params[p] for p in self.param_names]
            + [metrics[m] for m in self.metric_names]
            for params, metrics in self.rows
        ]
        return format_table(headers, body, title=title)

    def series(
        self,
        x: str,
        metric: str,
        group_by: Optional[str] = None,
    ) -> Tuple[List[Any], Dict[str, List[float]]]:
        """Re-slice into ``(x_values, {group_label: [metric, ...]})``.

        Rows must form a complete grid over ``x`` × ``group_by`` (which a
        cartesian sweep guarantees); without ``group_by`` a single series
        named after the metric is returned.
        """
        if x not in self.param_names:
            raise KeyError(f"unknown parameter {x!r}; have {self.param_names}")
        if metric not in self.metric_names:
            raise KeyError(f"unknown metric {metric!r}; have {self.metric_names}")
        if group_by is not None and group_by not in self.param_names:
            raise KeyError(f"unknown parameter {group_by!r}; have {self.param_names}")

        x_values: List[Any] = []
        for params, _ in self.rows:
            if params[x] not in x_values:
                x_values.append(params[x])

        series: Dict[str, List[float]] = {}
        for params, metrics in self.rows:
            label = str(params[group_by]) if group_by is not None else metric
            series.setdefault(label, [None] * len(x_values))  # type: ignore[list-item]
            series[label][x_values.index(params[x])] = metrics[metric]
        for label, values in series.items():
            if any(v is None for v in values):
                raise ValueError(
                    f"incomplete grid: series {label!r} missing values over {x!r}"
                )
        return x_values, series

    def best(self, metric: str, minimize: bool = True) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """The row with the best value of ``metric``."""
        if not self.rows:
            raise ValueError("empty sweep")
        key = lambda row: row[1][metric]  # noqa: E731
        return min(self.rows, key=key) if minimize else max(self.rows, key=key)


def parameter_sweep(
    fn: Callable[..., Mapping[str, float]],
    grid: Mapping[str, Sequence[Any]],
    fixed: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Evaluate ``fn(**params)`` over the cartesian product of ``grid``.

    ``fn`` must return a mapping of metric name → value with a consistent
    key set across all calls.  ``fixed`` parameters are passed to every
    call but not recorded as sweep axes.
    """
    names, combos = expand_grid(grid)
    fixed = dict(fixed or {})
    result: Optional[SweepResult] = None
    for params in combos:
        metrics = dict(fn(**params, **fixed))
        if result is None:
            result = SweepResult(param_names=names, metric_names=tuple(metrics))
        elif set(metrics) != set(result.metric_names):
            raise ValueError(
                f"inconsistent metrics: {sorted(metrics)} vs {sorted(result.metric_names)}"
            )
        result.rows.append((params, metrics))
    assert result is not None
    return result
