"""The declarative experiment-matrix runtime (``repro matrix``).

One TOML/JSON spec describes a whole study: a cartesian grid of axes over
:class:`~repro.runtime.config.RunConfig` fields (dataset/scale × workload
× policy × engine × fault profile × shards × sessions × ...), optional
constraints that prune cells, repeats with derived per-repeat seeds, and
which figures/report sections to render.  ``run_matrix`` expands the spec
into validated ``RunConfig`` cells, executes them (serially or over
``--workers`` processes), and emits one schema-versioned
``MATRIX_<label>.json`` snapshot; ``repro matrix report`` renders it into
a self-contained HTML report (see :mod:`repro.experiments.matrix_report`).

The spec format, by section (TOML table names; the JSON form mirrors it):

``[matrix]``
    ``label`` (required), ``runner`` (``replay``/``bench-cell``/``serve``),
    ``repeats``, ``seed``, ``key_prefix``, ``key_joiner``.
``[base]``
    ``RunConfig`` field defaults shared by every cell.
``[axes]``
    ``RunConfig`` field → list of values; cells are the cartesian product
    in declaration order (first axis varies slowest).
``[setup]``
    Non-``RunConfig`` extras the cell runner understands (sampling shape
    ``n_directions``/``n_distances``, ``tracer_capacity``, cluster
    ``ghost_ratio``/``force_sharded``, serve ``mix``/``arrival_rate_hz``/
    ``partition``/``attribution``).
``[labels.<axis>]``
    ``str(value)`` → display label used in cell keys; an empty label drops
    the segment (so a fault axis only names its faulted cells).
``[[constraints]]``
    Each entry is a partial axes assignment; a cell matching *all* entries
    of any constraint is skipped (values may be scalars or lists).
``[[figures]]``
    ``{x, metric, group_by?, title?}`` — series rendered by the report via
    :meth:`repro.experiments.sweep.SweepResult.series`.
``[report]``
    ``title``, ``bench_snapshots`` (committed ``BENCH_*``/``SERVE_*``
    files to chart as trends).

Three cell runners ship built in (``register_cell_runner`` adds more):

- ``replay`` — one baseline-or-app-aware replay per cell on a fresh (or
  sharded) hierarchy, with fault injection; the general-purpose runner.
- ``bench-cell`` — the exact instrumented cell of ``repro bench``
  (``repro.obs.bench._run_one``), so the bench suite is a committed spec.
- ``serve`` — one multi-tenant serving scenario per cell
  (:func:`repro.experiments.loadgen.run_load`), ``sessions``-axis aware.

Seeds: each cell's config seed defaults to the spec seed; repeat ``r > 0``
replaces it with ``derive_seed(seed, r)``.  Single-box fault profiles draw
from ``derive_seed(fault_seed, cell.index)`` (the bench tier's historical
per-cell derivation); cluster profiles use the raw ``fault_seed``,
matching the cluster tier.  Everything is a pure function of the spec, so
serial and ``--workers N`` runs produce byte-identical snapshots.
"""

from __future__ import annotations

import itertools
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.gating import (
    compare_metric_sets,
    flatten_cluster_section,
    flatten_multi_tenant,
    flatten_run_summary,
    format_gate_rows,
)
from repro.runtime.config import RUN_CONFIG_SCHEMA, RunConfig
from repro.utils.rng import derive_seed

__all__ = [
    "MATRIX_SCHEMA_VERSION",
    "MatrixSpec",
    "MatrixCell",
    "spec_from_dict",
    "load_spec",
    "bundled_spec_names",
    "expand_grid",
    "expand_cells",
    "register_cell_runner",
    "run_matrix_cell",
    "execute_cells",
    "run_matrix",
    "write_matrix",
    "load_matrix",
    "comparable_matrix_metrics",
    "compare_matrix",
    "format_matrix_comparison",
    "setup_for",
]

#: Bump when the MATRIX_*.json layout changes incompatibly.
MATRIX_SCHEMA_VERSION = 1

PathLike = Union[str, Path]

#: Directory of the committed (bundled) specs shipped with the package.
SPEC_DIR = Path(__file__).parent / "specs"


# ---------------------------------------------------------------------------
# minimal TOML parsing (fallback for Python < 3.11 without tomllib)


def _strip_comment(line: str) -> str:
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
        elif ch == "#":
            return line[:i]
    return line


def _bracket_depth(line: str) -> int:
    depth = 0
    quote = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
    return depth


def _split_top_level(body: str) -> List[str]:
    """Split on commas not nested in brackets/strings."""
    parts, depth, quote, start = [], 0, None, 0
    for i, ch in enumerate(body):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    tail = body[start:]
    if tail.strip():
        parts.append(tail)
    return parts


def _parse_key(raw: str) -> str:
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"'):
        return json.loads(raw)
    if raw.startswith("'") and raw.endswith("'"):
        return raw[1:-1]
    return raw


def _parse_value(raw: str) -> Any:
    raw = raw.strip()
    if not raw:
        raise ValueError("empty value")
    if raw.startswith('"'):
        return json.loads(raw)
    if raw.startswith("'") and raw.endswith("'"):
        return raw[1:-1]
    if raw.startswith("["):
        if not raw.endswith("]"):
            raise ValueError(f"unterminated array: {raw!r}")
        return [_parse_value(p) for p in _split_top_level(raw[1:-1])]
    if raw.startswith("{"):
        if not raw.endswith("}"):
            raise ValueError(f"unterminated inline table: {raw!r}")
        out = {}
        for part in _split_top_level(raw[1:-1]):
            k, _, v = part.partition("=")
            if not _:
                raise ValueError(f"bad inline-table entry: {part!r}")
            out[_parse_key(k)] = _parse_value(v)
        return out
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    raise ValueError(f"unsupported TOML value: {raw!r}")


def _navigate(root: Dict[str, Any], dotted: str) -> Dict[str, Any]:
    table = root
    for part in dotted.split("."):
        part = _parse_key(part)
        nxt = table.setdefault(part, {})
        if isinstance(nxt, list):
            nxt = nxt[-1]
        if not isinstance(nxt, dict):
            raise ValueError(f"[{dotted}] collides with a value")
        table = nxt
    return table


def parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the TOML subset the matrix specs use.

    Supported: ``[table]`` / ``[a.b]`` headers, ``[[array-of-tables]]``,
    bare and quoted keys, strings, ints, floats, bools, (multi-line)
    arrays, and inline tables.  This is the fallback used on Pythons
    without :mod:`tomllib`; the stdlib parser is preferred when present.
    """
    root: Dict[str, Any] = {}
    current = root
    pending = ""
    for raw_line in text.splitlines():
        line = (pending + " " + _strip_comment(raw_line)).strip() if pending \
            else _strip_comment(raw_line).strip()
        if not line:
            continue
        if _bracket_depth(line) > 0 and not line.startswith("["):
            pending = line
            continue
        if line.startswith("[") and "=" not in line.split("]")[0]:
            pending = ""
            if line.startswith("[["):
                name = line[2:line.index("]]")].strip()
                parent = root
                parts = name.split(".")
                for part in parts[:-1]:
                    parent = _navigate(parent, part)
                rows = parent.setdefault(_parse_key(parts[-1]), [])
                if not isinstance(rows, list):
                    raise ValueError(f"[[{name}]] collides with a table")
                rows.append({})
                current = rows[-1]
            else:
                name = line[1:line.index("]")].strip()
                current = _navigate(root, name)
            continue
        if _bracket_depth(line) > 0:
            pending = line
            continue
        pending = ""
        key, eq, value = line.partition("=")
        if not eq:
            raise ValueError(f"bad TOML line: {line!r}")
        current[_parse_key(key)] = _parse_value(value)
    if pending:
        raise ValueError(f"unterminated TOML value: {pending!r}")
    return root


def _load_toml(path: Path) -> Dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:
        return parse_toml_subset(text)
    return tomllib.loads(text)


# ---------------------------------------------------------------------------
# spec model


@dataclass(frozen=True)
class MatrixSpec:
    """A parsed, validated experiment-matrix specification."""

    label: str
    runner: str = "replay"
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    setup: Dict[str, Any] = field(default_factory=dict)
    labels: Dict[str, Dict[str, str]] = field(default_factory=dict)
    constraints: Tuple[Dict[str, Any], ...] = ()
    figures: Tuple[Dict[str, Any], ...] = ()
    report: Dict[str, Any] = field(default_factory=dict)
    repeats: int = 1
    seed: int = 0
    key_prefix: str = ""
    key_joiner: str = "/"

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable view; ``spec_from_dict`` inverts it."""
        return {
            "matrix": {
                "label": self.label,
                "runner": self.runner,
                "repeats": self.repeats,
                "seed": self.seed,
                "key_prefix": self.key_prefix,
                "key_joiner": self.key_joiner,
            },
            "base": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.base.items()
            },
            "axes": {name: list(values) for name, values in self.axes.items()},
            "setup": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.setup.items()
            },
            "labels": {axis: dict(table) for axis, table in self.labels.items()},
            "constraints": [dict(c) for c in self.constraints],
            "figures": [dict(f) for f in self.figures],
            "report": dict(self.report),
        }


_SPEC_SECTIONS = (
    "matrix", "base", "axes", "setup", "labels", "constraints", "figures", "report",
)
_MATRIX_KEYS = ("label", "runner", "repeats", "seed", "key_prefix", "key_joiner")


#: Modules that register additional cell runners on import; loaded lazily
#: before runner-name validation/lookup so bundled specs that use them
#: (e.g. ``fullscale-cell``) work standalone through ``repro matrix run``.
_RUNNER_MODULES = ("repro.obs.bench_fullscale",)


def _ensure_runner_plugins() -> None:
    import importlib

    for module in _RUNNER_MODULES:
        try:
            importlib.import_module(module)
        except ImportError:
            pass


def spec_from_dict(d: Mapping[str, Any], where: str = "<spec>") -> MatrixSpec:
    """Validate a raw spec dict (parsed TOML/JSON) into a :class:`MatrixSpec`.

    Like ``RunConfig.from_dict``, every problem is collected and reported
    in one error — a hand-written spec gets one round of fixes, not ten.
    """
    _ensure_runner_plugins()
    problems: List[str] = []
    unknown = sorted(set(d) - set(_SPEC_SECTIONS))
    if unknown:
        problems.append(f"unknown section(s) {unknown}; known: {list(_SPEC_SECTIONS)}")

    matrix = dict(d.get("matrix", {}))
    unknown_keys = sorted(set(matrix) - set(_MATRIX_KEYS))
    if unknown_keys:
        problems.append(f"[matrix] unknown key(s) {unknown_keys}; known: {list(_MATRIX_KEYS)}")
    label = matrix.get("label")
    if not isinstance(label, str) or not label:
        problems.append("[matrix] needs a non-empty string 'label'")
        label = "invalid"
    runner = matrix.get("runner", "replay")
    if runner not in CELL_RUNNERS:
        problems.append(
            f"[matrix] unknown runner {runner!r}; known: {sorted(CELL_RUNNERS)}"
        )
    repeats = matrix.get("repeats", 1)
    if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
        problems.append(f"[matrix] repeats must be an int >= 1, got {repeats!r}")
        repeats = 1
    seed = matrix.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        problems.append(f"[matrix] seed must be an int, got {seed!r}")
        seed = 0

    base = dict(d.get("base", {}))
    axes_raw = d.get("axes", {})
    axes: Dict[str, Tuple[Any, ...]] = {}
    for name, values in axes_raw.items():
        if not isinstance(values, (list, tuple)):
            problems.append(f"[axes] {name} must be a list of values, got {values!r}")
            continue
        if len(values) == 0:
            problems.append(f"[axes] {name} has no values")
            continue
        axes[name] = tuple(values)
    for name in sorted((set(base) | set(axes)) - set(RUN_CONFIG_SCHEMA)):
        problems.append(
            f"{'[axes]' if name in axes else '[base]'} {name!r} is not a RunConfig "
            f"field; known: {sorted(RUN_CONFIG_SCHEMA)}"
        )
    overlap = sorted(set(base) & set(axes))
    if overlap:
        problems.append(f"field(s) {overlap} appear in both [base] and [axes]")

    labels_raw = d.get("labels", {})
    labels: Dict[str, Dict[str, str]] = {}
    for axis, table in labels_raw.items():
        if axis not in axes:
            problems.append(f"[labels.{axis}] does not match any axis")
        elif not isinstance(table, Mapping):
            problems.append(f"[labels.{axis}] must be a table of value -> label")
        else:
            labels[axis] = {str(k): str(v) for k, v in table.items()}

    constraints = []
    for i, entry in enumerate(d.get("constraints", []) or []):
        if not isinstance(entry, Mapping) or not entry:
            problems.append(f"[[constraints]] #{i} must be a non-empty table")
            continue
        bad = sorted(set(entry) - set(axes))
        if bad:
            problems.append(f"[[constraints]] #{i} names non-axis field(s) {bad}")
            continue
        constraints.append(dict(entry))

    figures = []
    for i, entry in enumerate(d.get("figures", []) or []):
        if not isinstance(entry, Mapping):
            problems.append(f"[[figures]] #{i} must be a table")
            continue
        missing = [k for k in ("x", "metric") if k not in entry]
        if missing:
            problems.append(f"[[figures]] #{i} missing key(s) {missing}")
            continue
        if entry["x"] not in axes:
            problems.append(f"[[figures]] #{i} x={entry['x']!r} is not an axis")
            continue
        group_by = entry.get("group_by")
        if group_by is not None and group_by not in axes:
            problems.append(f"[[figures]] #{i} group_by={group_by!r} is not an axis")
            continue
        figures.append(dict(entry))

    if problems:
        raise ValueError(f"{where}: invalid matrix spec: " + "; ".join(problems))
    return MatrixSpec(
        label=label,
        runner=runner,
        base=base,
        axes=axes,
        setup=dict(d.get("setup", {})),
        labels=labels,
        constraints=tuple(constraints),
        figures=tuple(figures),
        report=dict(d.get("report", {})),
        repeats=repeats,
        seed=seed,
        key_prefix=str(matrix.get("key_prefix", "")),
        key_joiner=str(matrix.get("key_joiner", "/")),
    )


def bundled_spec_names() -> List[str]:
    """Names of the committed specs shipped under ``experiments/specs/``."""
    if not SPEC_DIR.is_dir():
        return []
    return sorted(p.stem for p in SPEC_DIR.glob("*.toml"))


def load_spec(name_or_path: PathLike) -> MatrixSpec:
    """Load a spec from a ``.toml``/``.json`` path or a bundled spec name."""
    path = Path(name_or_path)
    if not path.is_file():
        candidate = SPEC_DIR / f"{path.name.removesuffix('.toml')}.toml"
        if candidate.is_file():
            path = candidate
        else:
            raise FileNotFoundError(
                f"no spec file {name_or_path!r} and no bundled spec of that name; "
                f"bundled: {bundled_spec_names()}"
            )
    if path.suffix == ".json":
        raw = json.loads(path.read_text(encoding="utf-8"))
    else:
        raw = _load_toml(path)
    return spec_from_dict(raw, where=str(path))


# ---------------------------------------------------------------------------
# expansion


def expand_grid(
    grid: Mapping[str, Sequence[Any]],
) -> Tuple[Tuple[str, ...], List[Dict[str, Any]]]:
    """Cartesian expansion of ``{axis: values}`` in declaration order.

    Returns ``(axis_names, combos)`` where each combo is an axis → value
    dict; the first axis varies slowest.  Shared by ``expand_cells`` and
    :func:`repro.experiments.sweep.parameter_sweep`.
    """
    if not grid:
        raise ValueError("grid needs at least one parameter axis")
    for name, values in grid.items():
        if len(values) == 0:
            raise ValueError(f"parameter {name!r} has no values")
    names = tuple(grid)
    combos = [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[n] for n in names))
    ]
    return names, combos


@dataclass(frozen=True)
class MatrixCell:
    """One expanded cell: a key, a run-order index, and its ``RunConfig``."""

    key: str
    index: int
    repeat: int
    config: RunConfig
    axes: Dict[str, Any]


def _constraint_matches(constraint: Mapping[str, Any], combo: Mapping[str, Any]) -> bool:
    for axis, accepted in constraint.items():
        values = accepted if isinstance(accepted, (list, tuple)) else (accepted,)
        if combo.get(axis) not in values:
            return False
    return True


def _cell_key(
    spec: MatrixSpec, names: Tuple[str, ...], combo: Mapping[str, Any], repeat: int
) -> str:
    segments = [spec.key_prefix] if spec.key_prefix else []
    for name in names:
        value = combo[name]
        label = spec.labels.get(name, {}).get(str(value), str(value))
        if label:
            segments.append(label)
    key = spec.key_joiner.join(segments) if segments else spec.label
    if spec.repeats > 1:
        key = f"{key}{spec.key_joiner}r{repeat}"
    return key


def expand_cells(spec: MatrixSpec) -> List[MatrixCell]:
    """Expand a spec into validated, runnable cells (run order).

    Cell indices count *emitted* cells, so they are dense and stable for a
    pinned spec — the per-cell fault-seed derivation depends on that.
    """
    if spec.axes:
        names, combos = expand_grid(spec.axes)
    else:
        names, combos = (), [{}]
    cells: List[MatrixCell] = []
    seen: Dict[str, Dict[str, Any]] = {}
    index = 0
    for combo in combos:
        if any(_constraint_matches(c, combo) for c in spec.constraints):
            continue
        for repeat in range(spec.repeats):
            d = dict(spec.base)
            d.update(combo)
            d.setdefault("seed", spec.seed)
            if repeat > 0:
                d["seed"] = derive_seed(int(d["seed"]), repeat)
            key = _cell_key(spec, names, combo, repeat)
            if key in seen:
                raise ValueError(
                    f"cells {seen[key]} and {dict(combo)} both map to key {key!r}; "
                    f"fix [labels] so every cell keys uniquely"
                )
            seen[key] = dict(combo)
            try:
                config = RunConfig.from_dict(d)
            except ValueError as exc:
                raise ValueError(f"cell {key!r}: {exc}") from None
            cells.append(
                MatrixCell(key=key, index=index, repeat=repeat,
                           config=config, axes=dict(combo))
            )
            index += 1
    if not cells:
        raise ValueError(
            f"spec {spec.label!r} expands to zero cells (constraints skip everything)"
        )
    return cells


# ---------------------------------------------------------------------------
# setup/context caches (per process; workers each fill their own)

_SETUP_CACHE: Dict[Tuple, Any] = {}
_CONTEXT_CACHE: Dict[Tuple, Any] = {}


def _sampling_shape(extras: Mapping[str, Any]) -> Tuple[int, int]:
    return int(extras.get("n_directions", 512)), int(extras.get("n_distances", 4))


def _setup_key(config: RunConfig, extras: Mapping[str, Any]) -> Tuple:
    return (
        config.dataset, config.blocks, config.scale, config.cache_ratio, config.seed,
    ) + _sampling_shape(extras)


def setup_for(config: RunConfig, extras: Mapping[str, Any]):
    """The (cached) :class:`~repro.experiments.runner.ExperimentSetup` of a
    cell — dataset synthesis and table builds are shared across every cell
    with the same dataset/grid/sampling shape."""
    key = _setup_key(config, extras)
    if key not in _SETUP_CACHE:
        from repro.camera.sampling import SamplingConfig
        from repro.experiments.runner import ExperimentSetup

        n_directions, n_distances = _sampling_shape(extras)
        _SETUP_CACHE[key] = ExperimentSetup.for_dataset(
            config.dataset,
            target_n_blocks=config.blocks,
            scale=config.scale,
            cache_ratio=config.cache_ratio,
            sampling=SamplingConfig(
                n_directions=n_directions, n_distances=n_distances
            ),
            seed=config.seed,
        )
    return _SETUP_CACHE[key]


def _context_for(setup, config: RunConfig, extras: Mapping[str, Any]):
    """The (cached) replay context — visible sets are computed once per
    unique (setup, workload) pair, like the legacy tiers' shared contexts."""
    key = _setup_key(config, extras) + (
        config.workload, config.steps, config.degrees, config.distance,
        config.trace_file,
    )
    if key not in _CONTEXT_CACHE:
        from repro.runtime.registries import make_workload

        path = make_workload(config, setup.view_angle_deg)
        _CONTEXT_CACHE[key] = setup.context(path)
    return _CONTEXT_CACHE[key]


# ---------------------------------------------------------------------------
# cell runners

#: runner name -> fn(cell, extras) -> plain-JSON run dict.
CELL_RUNNERS: Dict[str, Callable[[MatrixCell, Mapping[str, Any]], Dict[str, object]]] = {}


def register_cell_runner(
    name: str, fn: Callable[[MatrixCell, Mapping[str, Any]], Dict[str, object]]
) -> None:
    if name in CELL_RUNNERS:
        raise ValueError(f"cell runner {name!r} is already registered")
    CELL_RUNNERS[name] = fn


def _replay_cell(cell: MatrixCell, extras: Mapping[str, Any]) -> Dict[str, object]:
    """The general-purpose runner: one replay per cell.

    ``policy="app-aware"`` runs the paper's optimizer over an LRU
    hierarchy; any other policy runs the conventional baseline.  Cells
    with ``shards > 1`` (or ``setup.force_sharded``) replay on a
    :class:`~repro.cluster.ShardedHierarchy` and carry the network ledger.
    """
    from repro.faults import FaultInjector, FaultPlan
    from repro.faults.plan import FAULT_PROFILES
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.context import RunContext
    from repro.runtime.drivers import run_baseline
    from repro.trace import Tracer, aggregate

    config = cell.config
    setup = setup_for(config, extras)
    context = _context_for(setup, config, extras)
    cache_policy = "lru" if config.policy == "app-aware" else config.policy
    sharded = config.shards > 1 or bool(extras.get("force_sharded"))
    if sharded:
        from repro.cluster import make_sharded_hierarchy

        hierarchy = make_sharded_hierarchy(
            setup.grid,
            config.shards,
            strategy=config.shard_map,
            cache_ratio=config.cache_ratio,
            policy=cache_policy,
            ghost_ratio=(
                float(extras.get("ghost_ratio", 0.0)) if config.shards > 1 else 0.0
            ),
            seed=config.seed,
        )
    else:
        hierarchy = setup.hierarchy(cache_policy)

    injector = None
    derived_seed = None
    if config.faults != "none":
        if config.faults in FAULT_PROFILES:
            # Single-box profiles: the bench tier's per-cell derivation, so
            # every cell of a suite sees distinct draws.
            derived_seed = derive_seed(config.fault_seed, cell.index)
            plan = FaultPlan.from_profile(config.faults, seed=derived_seed)
        else:
            # Cluster profiles: raw seed, matching the cluster tier.
            from repro.cluster import cluster_fault_plan

            plan = cluster_fault_plan(config.faults, config.shards, seed=config.fault_seed)
        injector = FaultInjector(plan)

    tracer = Tracer(capacity=int(extras.get("tracer_capacity", 500_000)))
    ctx = RunContext(tracer=tracer, registry=MetricsRegistry(), fault_injector=injector)
    t0 = time.perf_counter()
    if config.policy == "app-aware":
        result = setup.optimizer().run(context, hierarchy, engine=config.engine, ctx=ctx)
    else:
        result = run_baseline(context, hierarchy, engine=config.engine, ctx=ctx)
    run: Dict[str, object] = {
        "engine": config.engine,
        "wall_s": time.perf_counter() - t0,  # informational; never compared
        "summary": result.summary(),
        "hierarchy_stats": result.hierarchy_stats.as_dict(),
    }
    if sharded:
        from repro.obs.bench_cluster import ledger_reconciles

        ledger = hierarchy.cluster_ledger()
        run["split_bytes"] = dict(ledger["split_bytes"])
        run["peer_transfers"] = ledger["peer_transfers"]
        run["link_fallbacks"] = ledger["link_fallbacks"]
        run["ledger_reconciles"] = ledger_reconciles(hierarchy)
        run["cluster"] = ledger
    if injector is not None:
        summary = aggregate(tracer.events())
        faults_section: Dict[str, object] = {
            "profile": config.faults,
            "seed": config.fault_seed,
            "stats": injector.stats.as_dict(),
            "trace": {
                "faults": summary.total_faults,
                "retries": summary.total_retries,
                "degraded": summary.total_degraded,
                "fault_time_s": summary.fault_time_s,
            },
        }
        if derived_seed is not None:
            faults_section["derived_seed"] = derived_seed
        run["faults"] = faults_section
    return run


def _bench_cell(cell: MatrixCell, extras: Mapping[str, Any]) -> Dict[str, object]:
    """The exact instrumented cell of ``repro bench`` (forensics,
    attribution, regret, phase spans — see ``repro.obs.bench._run_one``)."""
    from repro.obs.bench import BenchConfig, _paths, _run_one

    config = cell.config
    bench_config = BenchConfig(
        dataset=config.dataset,
        blocks=config.blocks,
        scale=config.scale if config.scale is not None else 0.08,
        steps=config.steps,
        cache_ratio=config.cache_ratio,
        seed=config.seed,
        n_directions=int(extras.get("n_directions", 64)),
        n_distances=int(extras.get("n_distances", 2)),
        degrees_per_step=config.degrees[0],
        tracer_capacity=int(extras.get("tracer_capacity", 500_000)),
        faults=config.faults,
        fault_seed=config.fault_seed,
    )
    setup = setup_for(
        config,
        {
            **extras,
            "n_directions": bench_config.n_directions,
            "n_distances": bench_config.n_distances,
        },
    )
    path_name = "orbit" if config.workload == "spherical" else "zoom"
    path = _paths(bench_config, setup.view_angle_deg)[path_name]
    return _run_one(
        setup, path, config.policy, bench_config,
        engine=config.engine, cell_index=cell.index,
    )


def _serve_cell(cell: MatrixCell, extras: Mapping[str, Any]) -> Dict[str, object]:
    """One multi-tenant serving scenario per cell (``sessions`` axis)."""
    from repro.experiments.loadgen import LoadGenConfig, run_load

    config = cell.config
    load_config = LoadGenConfig(
        n_sessions=config.sessions,
        mix=tuple(extras.get("mix", (0.5, 0.25, 0.25))),
        arrival_rate_hz=float(extras.get("arrival_rate_hz", 2.0)),
        steps=config.steps,
        degrees=config.degrees,
        distance=config.distance,
        dataset=config.dataset,
        blocks=config.blocks,
        scale=config.scale,
        cache_ratio=config.cache_ratio,
        policy=config.policy,
        partition=str(extras.get("partition", "equal")),
        seed=config.seed,
    )
    t0 = time.perf_counter()
    doc = run_load(
        load_config,
        engine=config.engine,
        attribution=bool(extras.get("attribution", True)),
        tracer_capacity=int(extras.get("tracer_capacity", 500_000)),
    )
    return {
        "engine": config.engine,
        "wall_s": time.perf_counter() - t0,  # informational; never compared
        "serve_config": doc["config"],
        "workloads": doc["workloads"],
        "multi_tenant": doc["multi_tenant"],
    }


register_cell_runner("replay", _replay_cell)
register_cell_runner("bench-cell", _bench_cell)
register_cell_runner("serve", _serve_cell)


def run_matrix_cell(cell: MatrixCell, spec: MatrixSpec) -> Dict[str, object]:
    """Run one cell with the spec's runner and ``[setup]`` extras."""
    return CELL_RUNNERS[spec.runner](cell, spec.setup)


# ---------------------------------------------------------------------------
# execution

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(runner: str, extras: Dict[str, Any]) -> None:
    _ensure_runner_plugins()
    _WORKER_STATE["runner"] = runner
    _WORKER_STATE["extras"] = extras


def _worker_cell(cell: MatrixCell) -> Tuple[str, Dict[str, object]]:
    runner: str = _WORKER_STATE["runner"]  # type: ignore[assignment]
    extras: Dict[str, Any] = _WORKER_STATE["extras"]  # type: ignore[assignment]
    return cell.key, CELL_RUNNERS[runner](cell, extras)


def execute_cells(
    cells: Sequence[MatrixCell],
    runner: str,
    extras: Mapping[str, Any],
    workers: int = 1,
    progress=None,
) -> Dict[str, Dict[str, object]]:
    """Run cells serially or over worker processes; key → run dict.

    Each worker process fills its own setup/context caches from the pinned
    cells, and nothing non-trivial crosses the process boundary — so
    parallel snapshots are byte-identical to serial ones.
    """
    _ensure_runner_plugins()
    if runner not in CELL_RUNNERS:
        raise KeyError(f"unknown cell runner {runner!r}; known: {sorted(CELL_RUNNERS)}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    notify = progress if progress is not None else (lambda msg: None)
    runs: Dict[str, Dict[str, object]] = {}
    n_workers = min(workers, len(cells))
    if n_workers > 1:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(runner, dict(extras)),
        ) as pool:
            for key, run in pool.map(_worker_cell, list(cells)):
                notify(f"done: {key}")
                runs[key] = run
    else:
        fn = CELL_RUNNERS[runner]
        for cell in cells:
            notify(f"run: {cell.key}")
            runs[cell.key] = fn(cell, extras)
    return runs


def run_matrix(
    spec: MatrixSpec, workers: int = 1, progress=None
) -> Dict[str, object]:
    """Expand and execute a spec; returns the JSON-ready snapshot document."""
    notify = progress if progress is not None else (lambda msg: None)
    cells = expand_cells(spec)
    notify(
        f"matrix {spec.label!r}: {len(cells)} cells "
        f"({spec.runner} runner, {min(workers, len(cells))} worker(s))"
    )
    t0 = time.perf_counter()
    runs = execute_cells(cells, spec.runner, spec.setup, workers=workers, progress=progress)
    doc: Dict[str, object] = {
        "schema_version": MATRIX_SCHEMA_VERSION,
        "kind": "matrix",
        "label": spec.label,
        "runner": spec.runner,
        "workers": min(workers, len(cells)),
        "spec": spec.to_dict(),
        "n_cells": len(cells),
        "cells": {
            cell.key: {
                "axes": cell.axes,
                "index": cell.index,
                "repeat": cell.repeat,
                "config": cell.config.to_dict(),
                **runs[cell.key],
            }
            for cell in cells
        },
        "suite_wall_s": time.perf_counter() - t0,  # informational; never compared
    }
    return doc


# ---------------------------------------------------------------------------
# snapshot I/O and comparison


def write_matrix(doc: Dict[str, object], out_dir: PathLike = ".") -> Path:
    """Write ``MATRIX_<label>.json`` under ``out_dir``; returns the path."""
    label = str(doc["label"]).replace("/", "-")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"MATRIX_{label}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_matrix(path: PathLike) -> Dict[str, object]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("kind") != "matrix":
        raise ValueError(f"{path}: not a matrix snapshot (kind={doc.get('kind')!r})")
    version = doc.get("schema_version")
    if version != MATRIX_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != supported {MATRIX_SCHEMA_VERSION}"
        )
    return doc


def comparable_matrix_metrics(doc: Dict[str, object]):
    """Flatten a matrix snapshot into a gating metric set.

    Per cell: the shared run-summary metrics (summary, derived ratios,
    histogram percentiles, trace drops), the multi-tenant section of serve
    cells, and the cluster ledger of sharded cells.  Wall-clock fields are
    never included — matrix comparisons are machine-independent.
    """
    out = {}
    for key, cell in sorted(doc["cells"].items()):
        out.update(flatten_run_summary(cell, key))
        if "multi_tenant" in cell:
            out.update(
                flatten_multi_tenant(cell["multi_tenant"], prefix=f"{key}.multi_tenant")
            )
        if "cluster" in cell:
            out.update(flatten_cluster_section(cell["cluster"], prefix=f"{key}.cluster"))
    return out


def compare_matrix(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.10,
    abs_floor: float = 1e-12,
) -> List[Dict[str, object]]:
    """Diff two matrix snapshots (canonical gating rows; see
    :func:`repro.experiments.gating.compare_metric_sets`)."""
    return compare_metric_sets(
        comparable_matrix_metrics(old),
        comparable_matrix_metrics(new),
        threshold=threshold,
        abs_floor=abs_floor,
    )


def format_matrix_comparison(rows: List[Dict[str, object]], verbose: bool = False) -> str:
    return format_gate_rows(rows, verbose=verbose)
