"""One entry point per paper table/figure (the per-experiment index of DESIGN.md).

Every function returns a list of :class:`FigureResult` panels carrying the
same x-axis/series the paper plots, plus a formatted text report.  Two
scales: ``full=False`` (default) runs laptop-bench sizes in seconds;
``full=True`` runs the paper-scale sweeps (400-position paths, all
parameter values) in minutes.

The *shape* expectations for each figure are recorded in DESIGN.md §4 and
asserted (at quick scale) in tests/experiments/test_shapes.py.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.camera.path import random_path, spherical_path
from repro.camera.sampling import SamplingConfig
from repro.runtime.config import OptimizerConfig
from repro.experiments.report import format_series
from repro.experiments.runner import ExperimentSetup, compare_policies
from repro.volume.datasets import dataset_table

__all__ = [
    "FigureResult",
    "table1",
    "fig7",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "ablations",
]


@dataclass
class FigureResult:
    """One panel of a reproduced figure."""

    figure: str
    description: str
    x_label: str
    x_values: List[object]
    series: Dict[str, List[float]]
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def report(self) -> str:
        return format_series(
            self.x_label,
            self.x_values,
            self.series,
            title=f"{self.figure}: {self.description}",
        )


# ---------------------------------------------------------------------------
# Scale presets
# ---------------------------------------------------------------------------

_QUICK = {
    "n_path": 60,
    "sampling": SamplingConfig(n_directions=96, n_distances=2, distance_range=(2.2, 2.8)),
    "spherical_degrees": [1.0, 10.0, 30.0],
    "random_ranges": [(0.0, 5.0), (10.0, 15.0), (25.0, 30.0)],
    "block_divisions": [512, 2048, 4096],
    "fig7_samples": [64, 512, 4096, 16384],
    "fig7_datasets": ["3d_ball", "lifted_rr"],
    "fig7_blocks": 512,
    "fig12_blocks": 2048,
    "fig13_blocks": 2048,
    "fig11_path": 120,
}

_FULL = {
    "n_path": 400,
    "sampling": SamplingConfig(n_directions=720, n_distances=4, distance_range=(2.1, 2.9)),
    "spherical_degrees": [1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 45.0],
    "random_ranges": [
        (0.0, 5.0),
        (5.0, 10.0),
        (10.0, 15.0),
        (15.0, 20.0),
        (20.0, 25.0),
        (25.0, 30.0),
        (30.0, 35.0),
    ],
    "block_divisions": [512, 1024, 2048, 4096, 8192, 16384],
    "fig7_samples": [1024, 4096, 25920, 72000, 108000],
    "fig7_datasets": ["3d_ball", "lifted_mix_frac", "lifted_rr", "climate"],
    "fig7_blocks": 1024,
    "fig12_blocks": 2048,
    "fig13_blocks": 4096,
    "fig11_path": 400,
}


def _preset(full: bool) -> dict:
    return _FULL if full else _QUICK


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1(scale: Optional[float] = None) -> str:
    """Table I: the experimental datasets and their analogues."""
    return dataset_table(scale)


# ---------------------------------------------------------------------------
# Figure 7: miss rate / I/O time vs number of sampling positions
# ---------------------------------------------------------------------------

def fig7(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Miss rate (a) and I/O time (b) against the size of ``T_visible``.

    Random path with 10–15° view-direction changes (§IV-B); four datasets.
    Expected shape: miss rate non-increasing in table size; I/O time
    U-shaped because per-query lookup cost grows with the table.
    """
    p = _preset(full)
    sample_counts: List[int] = list(p["fig7_samples"])
    datasets: List[str] = list(p["fig7_datasets"])

    miss_series: Dict[str, List[float]] = {d: [] for d in datasets}
    io_series: Dict[str, List[float]] = {d: [] for d in datasets}

    for name in datasets:
        setup = ExperimentSetup.for_dataset(
            name, target_n_blocks=p["fig7_blocks"], sampling=p["sampling"], seed=seed
        )
        path = random_path(
            n_positions=p["n_path"],
            degree_change=(10.0, 15.0),
            distance=2.5,
            view_angle_deg=setup.view_angle_deg,
            seed=seed,
        )
        context = setup.context(path)
        for n_samples in sample_counts:
            n_dist = setup.sampling.n_distances
            sampling = SamplingConfig(
                n_directions=max(1, n_samples // n_dist),
                n_distances=n_dist,
                distance_range=setup.sampling.distance_range,
            )
            # Dense tables need fewer vicinal samples per sphere — the
            # spheres of neighbouring entries overlap heavily anyway.
            setup.rebuild_visible_table(sampling=sampling, n_vicinal=4)
            optimizer = setup.optimizer()
            result = optimizer.run(context, setup.hierarchy("lru"))
            miss_series[name].append(result.total_miss_rate)
            io_series[name].append(result.io_time_s)

    return [
        FigureResult(
            "fig7a",
            "miss rate vs number of sampling positions",
            "n_samples",
            sample_counts,
            miss_series,
        ),
        FigureResult(
            "fig7b",
            "I/O time (s, incl. lookup) vs number of sampling positions",
            "n_samples",
            sample_counts,
            io_series,
        ),
    ]


# ---------------------------------------------------------------------------
# Figure 9: miss rate vs block division
# ---------------------------------------------------------------------------

def fig9(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Miss rate across block divisions for FIFO/LRU/OPT (panels a–n).

    Panels (a–g): spherical paths at fixed degree steps; panels (h–n):
    random paths with degree-change ranges.  Expected shape: OPT below
    LRU/FIFO everywhere; small divisions help at small degree changes.
    """
    p = _preset(full)
    divisions: List[int] = list(p["block_divisions"])
    panels: List[FigureResult] = []

    setups = {
        n: ExperimentSetup.for_dataset(
            "3d_ball", target_n_blocks=n, sampling=p["sampling"], seed=seed
        )
        for n in divisions
    }

    def sweep(path_factory, label: str, panel: str) -> FigureResult:
        series = {"fifo": [], "lru": [], "opt": [], "lru_mbytes": []}
        actual_divisions = []
        for n in divisions:
            setup = setups[n]
            path = path_factory(setup)
            results = compare_policies(setup, path)
            actual_divisions.append(setup.grid.n_blocks)
            for key in ("fifo", "lru", "opt"):
                series[key].append(results[key].total_miss_rate)
            # Demand byte traffic of the LRU baseline: the block-size
            # trade-off ("number of I/O operations vs size of data read",
            # §V-B1) shows up in bytes, not in the block-miss ratio.
            series["lru_mbytes"].append(results["lru"].extras["bytes_moved"] / 1e6)
        return FigureResult(panel, label, "n_blocks", actual_divisions, series)

    for deg in p["spherical_degrees"]:
        panels.append(
            sweep(
                lambda s, deg=deg: spherical_path(
                    n_positions=p["n_path"],
                    degrees_per_step=deg,
                    distance=2.5,
                    view_angle_deg=s.view_angle_deg,
                    seed=seed,
                ),
                f"miss rate vs block division, spherical path {deg:g} deg/step",
                f"fig9_spherical_{deg:g}",
            )
        )
    for lo, hi in p["random_ranges"]:
        panels.append(
            sweep(
                lambda s, lo=lo, hi=hi: random_path(
                    n_positions=p["n_path"],
                    degree_change=(lo, hi),
                    distance=2.5,
                    view_angle_deg=s.view_angle_deg,
                    seed=seed,
                ),
                f"miss rate vs block division, random path {lo:g}-{hi:g} deg",
                f"fig9_random_{lo:g}-{hi:g}",
            )
        )
    return panels


# ---------------------------------------------------------------------------
# Figure 11: optimal vicinal radius vs fixed radii
# ---------------------------------------------------------------------------

def fig11(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Total I/O + prefetch time: Eq. 6 optimal r against fixed radii.

    Paper setup: ``lifted_rr`` partitioned into 1024 blocks, 400-position
    path, fixed view angle.  The camera distance varies along the path
    (users zoom in and out, §V-B2) — this is where the dynamically
    computed Eq. 6 radius beats every fixed radius, which is tuned for at
    most one distance.  Expected shape: the Eq. 6 radius yields the lowest
    combined I/O + prefetch time among the paper's radii.
    """
    p = _preset(full)
    radii: List[Optional[float]] = [None, 0.1, 0.075, 0.05, 0.025]
    setup = ExperimentSetup.for_dataset(
        "lifted_rr", target_n_blocks=1024, sampling=p["sampling"], seed=seed
    )
    path = random_path(
        n_positions=p["fig11_path"],
        degree_change=(5.0, 10.0),
        distance=(2.1, 2.9),  # zooming user: dynamically changing d
        view_angle_deg=setup.view_angle_deg,
        seed=seed,
    )
    context = setup.context(path)

    labels: List[object] = []
    times: List[float] = []
    miss_rates: List[float] = []
    for r in radii:
        setup.rebuild_visible_table(fixed_radius=r)
        optimizer = setup.optimizer()
        result = optimizer.run(context, setup.hierarchy("lru"))
        labels.append("optimal (Eq.6)" if r is None else f"r={r:g}")
        times.append(result.io_plus_prefetch_time_s)
        miss_rates.append(result.total_miss_rate)

    return [
        FigureResult(
            "fig11",
            "total I/O + prefetch time (s) by vicinal radius",
            "radius",
            labels,
            {"io_plus_prefetch_s": times, "miss_rate": miss_rates},
        )
    ]


# ---------------------------------------------------------------------------
# Figure 12: miss rate across camera paths
# ---------------------------------------------------------------------------

def fig12(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Miss rate across spherical (a) and random (b) paths, 2048 blocks.

    Expected shape (paper §V-C): OPT ≈ ¼ of FIFO/LRU at 1°/step, below ½
    generally; miss rate grows with the per-step direction change.
    """
    p = _preset(full)
    setup = ExperimentSetup.for_dataset(
        "3d_ball", target_n_blocks=p["fig12_blocks"], sampling=p["sampling"], seed=seed
    )

    def run_paths(paths, x_values, panel, label):
        series = {"fifo": [], "lru": [], "opt": []}
        for path in paths:
            results = compare_policies(setup, path)
            for key in series:
                series[key].append(results[key].total_miss_rate)
        return FigureResult(panel, label, "degrees", x_values, series)

    sph_paths = [
        spherical_path(
            n_positions=p["n_path"],
            degrees_per_step=deg,
            distance=2.5,
            view_angle_deg=setup.view_angle_deg,
            seed=seed,
        )
        for deg in p["spherical_degrees"]
    ]
    rnd_paths = [
        random_path(
            n_positions=p["n_path"],
            degree_change=(lo, hi),
            distance=(2.2, 2.8),
            view_angle_deg=setup.view_angle_deg,
            seed=seed,
        )
        for lo, hi in p["random_ranges"]
    ]
    return [
        run_paths(
            sph_paths,
            [f"{d:g}" for d in p["spherical_degrees"]],
            "fig12a",
            "miss rate, spherical path (3d_ball, 2048 blocks)",
        ),
        run_paths(
            rnd_paths,
            [f"{lo:g}-{hi:g}" for lo, hi in p["random_ranges"]],
            "fig12b",
            "miss rate, random path (3d_ball, 2048 blocks)",
        ),
    ]


# ---------------------------------------------------------------------------
# Figure 13: total time (I/O + max(prefetch, render)) vs cache ratio
# ---------------------------------------------------------------------------

def fig13(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Total time across random paths at cache ratios 0.5 (a) and 0.7 (b).

    Expected shape: OPT wins at small direction changes (≈12 %/25 % over
    LRU/FIFO at ratio 0.5); at ratio 0.7 the OPT advantage extends to
    larger direction changes (≈8.6 %/19.7 %).
    """
    p = _preset(full)
    panels = []
    for ratio, panel in ((0.5, "fig13a"), (0.7, "fig13b")):
        setup = ExperimentSetup.for_dataset(
            "3d_ball",
            target_n_blocks=p["fig13_blocks"],
            sampling=p["sampling"],
            cache_ratio=ratio,
            seed=seed,
        )
        series = {"fifo": [], "lru": [], "opt": []}
        x_values = [f"{lo:g}-{hi:g}" for lo, hi in p["random_ranges"]]
        for lo, hi in p["random_ranges"]:
            path = random_path(
                n_positions=p["n_path"],
                degree_change=(lo, hi),
                distance=2.5,
                view_angle_deg=setup.view_angle_deg,
                seed=seed,
            )
            results = compare_policies(setup, path)
            for key in series:
                series[key].append(results[key].total_time_s)
        panels.append(
            FigureResult(
                panel,
                f"total time (s), cache ratio {ratio:g}",
                "degrees",
                x_values,
                series,
            )
        )
    return panels


# ---------------------------------------------------------------------------
# Ablations (beyond the paper)
# ---------------------------------------------------------------------------

def ablations(full: bool = False, seed: int = 0) -> List[FigureResult]:
    """Component knock-outs and extra baselines on the Fig. 12 workload.

    Variants: the full method, no-prefetch, no-preload, no-importance
    filter; baselines FIFO/LRU/ARC and the offline Belady bound.
    """
    p = _preset(full)
    setup = ExperimentSetup.for_dataset(
        "3d_ball", target_n_blocks=p["fig12_blocks"], sampling=p["sampling"], seed=seed
    )
    path = random_path(
        n_positions=p["n_path"],
        degree_change=(5.0, 10.0),
        distance=2.5,
        view_angle_deg=setup.view_angle_deg,
        seed=seed,
    )
    context = setup.context(path)

    rows: Dict[str, Tuple[float, float]] = {}
    base = compare_policies(
        setup, path, baselines=("fifo", "lru", "arc"), include_belady=True
    )
    for name, result in base.items():
        rows[name] = (result.total_miss_rate, result.total_time_s)

    variants = {
        "opt(no-prefetch)": OptimizerConfig(prefetch=False),
        "opt(no-preload)": OptimizerConfig(preload=False),
        "opt(no-filter)": OptimizerConfig(use_importance_filter=False),
        "opt(adaptive-sigma)": OptimizerConfig(adaptive_sigma=True),
    }
    for name, cfg in variants.items():
        result = setup.optimizer(cfg).run(context, setup.hierarchy("lru"), name=name)
        rows[name] = (result.total_miss_rate, result.total_time_s)

    labels = list(rows)
    return [
        FigureResult(
            "ablations",
            "component knock-outs and extra baselines (random 5-10 deg path)",
            "variant",
            labels,
            {
                "miss_rate": [rows[k][0] for k in labels],
                "total_time_s": [rows[k][1] for k in labels],
            },
        )
    ]
