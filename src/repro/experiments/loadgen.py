"""Synthetic multi-viewer load generation (``repro serve-sim``).

Synthesizes N user streams — an orbit/zoom/flythrough mix with seeded
exponential inter-arrival times — and drives them through the
:mod:`repro.runtime.sessions` scheduler over one shared hierarchy.  The
result is a schema-versioned ``SERVE_<label>.json`` snapshot whose
numbers are all *simulated* (frame-time percentiles per tenant, fairness,
quota ledger, byte ledger), so two machines produce byte-identical
snapshots and CI can gate on per-tenant p99 frame time the same way the
bench gate works.

Everything is derived from ``LoadGenConfig.seed`` through a
:class:`numpy.random.SeedSequence` tree: child 0 draws the workload mix
and the arrival process, child ``i + 1`` seeds session ``i``'s camera
path — so adding a session never reshuffles the existing ones.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.gating import GateRule, MetricSet, compare_metric_sets
from repro.experiments.matrix import MatrixSpec
from repro.experiments.runner import ExperimentSetup, fresh_hierarchy
from repro.runtime.context import RunContext
from repro.runtime.sessions import SessionSpec, run_sessions

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "LoadGenConfig",
    "make_session_specs",
    "run_load",
    "serve_matrix_spec",
    "write_serve",
    "load_serve",
    "compare_serve",
    "format_serve_comparison",
]

SERVE_SCHEMA_VERSION = 1

#: workload mix entry -> runtime workload name ("orbit" is the paper's
#: spherical great-circle path).
_MIX_WORKLOADS = {"orbit": "spherical", "zoom": "zoom", "flythrough": "flythrough"}


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one synthetic serving scenario (fully seeded)."""

    n_sessions: int = 8
    #: (orbit, zoom, flythrough) mix weights; normalised internally.
    mix: Tuple[float, float, float] = (0.5, 0.25, 0.25)
    #: mean session arrival rate, sessions per simulated second
    #: (exponential inter-arrivals); <= 0 means all arrive at t = 0.
    arrival_rate_hz: float = 2.0
    steps: int = 24
    degrees: Tuple[float, float] = (5.0, 10.0)
    distance: float = 2.5
    dataset: str = "3d_ball"
    blocks: int = 256
    scale: Optional[float] = 0.08
    cache_ratio: float = 0.5
    policy: str = "lru"
    partition: str = "equal"  # "equal" | "none"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError(f"n_sessions must be >= 1, got {self.n_sessions}")
        if len(self.mix) != 3 or any(w < 0 for w in self.mix) or sum(self.mix) <= 0:
            raise ValueError(f"mix must be 3 non-negative weights, got {self.mix}")
        if self.partition not in ("equal", "none"):
            raise ValueError(f"partition must be 'equal' or 'none', got {self.partition!r}")

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["mix"] = list(d["mix"])
        d["degrees"] = list(d["degrees"])
        return d


def make_session_specs(config: LoadGenConfig) -> List[SessionSpec]:
    """The deterministic session list a config describes.

    Session ``i`` is named ``s<i:03d>``; its workload is drawn from the
    mix, its arrival from the exponential inter-arrival process, and its
    camera-path seed from SeedSequence child ``i + 1`` — all pure
    functions of ``config.seed``.
    """
    root = np.random.SeedSequence(config.seed)
    children = root.spawn(config.n_sessions + 1)
    draw = np.random.default_rng(children[0])
    weights = np.asarray(config.mix, dtype=np.float64)
    weights = weights / weights.sum()
    kinds = list(_MIX_WORKLOADS)
    picks = draw.choice(len(kinds), size=config.n_sessions, p=weights)
    if config.arrival_rate_hz > 0:
        gaps = draw.exponential(1.0 / config.arrival_rate_hz, size=config.n_sessions)
        arrivals = np.concatenate(([0.0], np.cumsum(gaps)[:-1]))
    else:
        arrivals = np.zeros(config.n_sessions)
    specs = []
    for i in range(config.n_sessions):
        path_seed = int(
            np.random.default_rng(children[i + 1]).integers(0, 2**31 - 1)
        )
        specs.append(
            SessionSpec(
                session_id=f"s{i:03d}",
                workload=_MIX_WORKLOADS[kinds[int(picks[i])]],
                steps=config.steps,
                degrees=config.degrees,
                distance=config.distance,
                seed=path_seed,
                arrival_s=float(arrivals[i]),
            )
        )
    return specs


def run_load(
    config: Optional[LoadGenConfig] = None,
    ctx: Optional[RunContext] = None,
    engine: str = "batched",
    attribution: bool = False,
    tracer_capacity: int = 500_000,
) -> dict:
    """Run one serving scenario end to end; returns the snapshot document.

    The document contains only simulated (machine-independent) numbers
    plus the config that produced them; repeat runs are byte-identical.

    ``attribution=True`` adds the per-tenant latency attribution section
    (see :mod:`repro.obs.attribution`) to ``multi_tenant``; when no
    ``ctx`` was passed, a :class:`~repro.trace.Tracer` of
    ``tracer_capacity`` events is created to feed it (a caller-supplied
    ``ctx`` must then carry an enabled tracer itself).
    """
    config = config if config is not None else LoadGenConfig()
    if attribution and ctx is None:
        from repro.trace import Tracer

        ctx = RunContext(tracer=Tracer(capacity=tracer_capacity))
    setup = ExperimentSetup.for_dataset(
        config.dataset,
        target_n_blocks=config.blocks,
        scale=config.scale,
        cache_ratio=config.cache_ratio,
        seed=config.seed,
    )
    hierarchy = fresh_hierarchy(setup.grid, config.cache_ratio, config.policy)
    specs = make_session_specs(config)
    result = run_sessions(
        specs,
        hierarchy,
        setup.grid,
        view_angle_deg=setup.view_angle_deg,
        render_model=setup.render_model,
        ctx=ctx,
        engine=engine,
        partition="equal" if config.partition == "equal" else None,
        attribution=attribution,
    )
    return {
        "schema_version": SERVE_SCHEMA_VERSION,
        "config": config.to_dict(),
        "workloads": {s.session_id: s.workload for s in specs},
        "multi_tenant": result.as_dict(),
    }


def serve_matrix_spec(
    config: Optional[LoadGenConfig] = None,
    label: str = "serve",
    engine: str = "batched",
    attribution: bool = True,
) -> MatrixSpec:
    """One serving scenario as a single-cell matrix spec.

    The ``RunConfig`` fields carry everything a session stream shares with
    a replay cell (``sessions`` is the tenant count); the serve-only knobs
    (mix weights, arrival process, partition, attribution) ride in
    ``[setup]``.  The committed ``specs/serve-baseline.toml`` pins the
    ``SERVE_baseline.json`` scenario this way, and axes over ``sessions``
    / ``policy`` / ``cache_ratio`` turn it into a serving study.
    """
    config = config if config is not None else LoadGenConfig()
    return MatrixSpec(
        label=label,
        runner="serve",
        base={
            "dataset": config.dataset,
            "blocks": config.blocks,
            "scale": config.scale,
            "steps": config.steps,
            "degrees": tuple(config.degrees),
            "distance": config.distance,
            "cache_ratio": config.cache_ratio,
            "policy": config.policy,
            "seed": config.seed,
            "sessions": config.n_sessions,
            "engine": engine,
        },
        setup={
            "mix": tuple(config.mix),
            "arrival_rate_hz": config.arrival_rate_hz,
            "partition": config.partition,
            "attribution": attribution,
        },
    )


def write_serve(doc: dict, label: str, out_dir: "str | Path" = ".") -> Path:
    """Write ``SERVE_<label>.json``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"SERVE_{label}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_serve(path: Path) -> dict:
    """Read a serve snapshot, checking the schema version."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != SERVE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: serve schema version {version} != supported {SERVE_SCHEMA_VERSION}"
        )
    return doc


def _serve_metric_set(doc: dict) -> MetricSet:
    """The serve gate as a gating metric set (serve-historical names).

    Makespan and frame-time percentiles gate with the strict-zero relative
    rule (a metric that was clean must stay clean), cross-tenant evictions
    with the absolute-increase rule, and the Jain fairness index with the
    absolute-drop rule — the serve gate's historical semantics, now
    expressed on the shared :mod:`repro.experiments.gating` vocabulary.
    """
    mt = doc["multi_tenant"]
    frames = mt["frame_times"]
    strict = GateRule("lower", mode="relative_strict_zero")
    out: MetricSet = {
        "makespan_s": (float(mt["makespan_s"]), strict),
        "cross_evictions": (
            float(mt["cross_evictions"]), GateRule("lower", mode="absolute_increase"),
        ),
        "pooled/p99": (float(frames["pooled"]["p99"]), strict),
        "fairness_jain": (
            float(frames["fairness_jain"]), GateRule("higher", mode="absolute_drop"),
        ),
    }
    for tenant, summary in sorted(frames["per_tenant"].items()):
        for q in ("p50", "p95", "p99"):
            out[f"{tenant}/{q}"] = (float(summary[q]), strict)
    return out


def comparable_serve_metrics(doc: dict) -> Dict[str, float]:
    """Flatten the gateable (simulated) metrics of a serve snapshot.

    Per-tenant p50/p95/p99 frame times, the pooled p99, the makespan, and
    the cross-eviction count — all lower-is-better; the fairness index is
    gated separately (higher is better).
    """
    return {
        name: value
        for name, (value, _rule) in _serve_metric_set(doc).items()
        if name != "fairness_jain"
    }


def compare_serve(
    old_doc: dict, new_doc: dict, threshold: float = 0.25
) -> List[dict]:
    """Compare two serve snapshots; per-tenant p99s regress past ``threshold``.

    Returns rows like the bench comparison: metrics missing on either
    side report ``"missing"`` and never regress (so a committed baseline
    stays valid when new tenants/metrics appear).  The fairness index is
    gated downward: a drop of more than ``threshold`` (absolute) is a
    regression.  The diff itself runs on
    :func:`repro.experiments.gating.compare_metric_sets`; this wrapper
    translates the canonical rows back to the serve gate's historical
    shape (``ratio`` column, ``regressed``/``ok`` statuses, fairness
    last) so committed baselines keep gating with identical verdicts.
    """
    canonical = compare_metric_sets(
        _serve_metric_set(old_doc), _serve_metric_set(new_doc), threshold=threshold
    )
    rows: List[dict] = []
    fairness: Optional[dict] = None
    for row in canonical:
        if row["status"] == "missing":
            translated = {"metric": row["metric"], "status": "missing"}
        else:
            translated = {
                "metric": row["metric"],
                "old": row["old"],
                "new": row["new"],
                "ratio": row["change"],
                "status": "regressed" if row["status"] == "regression" else "ok",
            }
        if row["metric"] == "fairness_jain":
            fairness = translated
        else:
            rows.append(translated)
    if fairness is not None:
        rows.append(fairness)
    return rows


def format_serve_comparison(rows: List[dict], verbose: bool = False) -> str:
    """Human-readable comparison table (regressions always shown)."""
    lines = []
    shown = rows if verbose else [r for r in rows if r["status"] != "ok"]
    regressed = [r for r in rows if r["status"] == "regressed"]
    for r in shown:
        if r["status"] == "missing":
            lines.append(f"  {r['metric']:<28} missing on one side")
        else:
            lines.append(
                f"  {r['metric']:<28} {r['old']:.6g} -> {r['new']:.6g} "
                f"({r['ratio']:+.1%}) {r['status']}"
            )
    header = (
        f"{len(regressed)} regressed / {len(rows)} compared"
        if regressed
        else f"ok: {len(rows)} metrics within threshold"
    )
    return "\n".join([header] + lines)
