"""Camera-path replay: visible-set computation and the baseline driver.

The demand access sequence of a replay is *policy independent* — which
blocks are visible at step ``i`` depends only on the path and geometry —
so :func:`compute_visible_sets` is shared by every driver and
:func:`collect_demand_trace` can feed the offline Belady policy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.camera.frustum import visible_ids_batch
from repro.camera.path import CameraPath
from repro.core.metrics import RunResult
from repro.render.render_model import RenderCostModel
from repro.storage.hierarchy import MemoryHierarchy
from repro.volume.blocks import BlockGrid

__all__ = [
    "compute_visible_sets",
    "collect_demand_trace",
    "run_baseline",
    "PipelineContext",
    "REPLAY_ENGINES",
]

#: Replay fast-path choices accepted by every driver's ``engine`` argument.
REPLAY_ENGINES = ("batched", "scalar")


def _resolve_engine(engine: str) -> bool:
    """Validate ``engine`` and return True for the batched fast path."""
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
    return engine == "batched"


def compute_visible_sets(
    path: CameraPath,
    grid: BlockGrid,
    include_center: bool = True,
    kernel: str = "auto",
) -> List[np.ndarray]:
    """Ground-truth visible block ids per view point (ascending id order).

    One batched visibility evaluation over all path positions — this is
    the geometry the renderer needs at each step, independent of caching.
    ``kernel`` selects the Eq. 1 evaluation strategy (all bit-identical;
    ``"auto"`` culls hierarchically at large block counts).
    """
    return visible_ids_batch(
        path.positions, grid, path.view_angle_deg, include_center, kernel=kernel
    )


def collect_demand_trace(
    path: CameraPath,
    grid: BlockGrid,
    visible_sets: Optional[List[np.ndarray]] = None,
) -> np.ndarray:
    """The flat demand access sequence a replay will issue (``int64``).

    Feeding this to :class:`repro.policies.belady.BeladyPolicy` yields the
    offline-optimal baseline; the order (steps outer, ascending block id
    inner) matches every driver in this module.
    """
    if visible_sets is None:
        visible_sets = compute_visible_sets(path, grid)
    if not visible_sets:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(ids, dtype=np.int64) for ids in visible_sets])


@dataclass
class PipelineContext:
    """Everything a driver needs to replay a path, bundled for reuse.

    Precomputing ``visible_sets`` once and replaying under several
    hierarchies (FIFO vs LRU vs app-aware) keeps comparisons exact: every
    driver sees the identical demand sequence.
    """

    path: CameraPath
    grid: BlockGrid
    visible_sets: List[np.ndarray]
    render_model: RenderCostModel

    @classmethod
    def create(
        cls,
        path: CameraPath,
        grid: BlockGrid,
        render_model: Optional[RenderCostModel] = None,
        include_center: bool = True,
        kernel: str = "auto",
    ) -> "PipelineContext":
        return cls(
            path=path,
            grid=grid,
            visible_sets=compute_visible_sets(path, grid, include_center, kernel=kernel),
            render_model=render_model or RenderCostModel(),
        )

    def demand_trace(self) -> np.ndarray:
        return collect_demand_trace(self.path, self.grid, self.visible_sets)


def run_baseline(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    name: Optional[str] = None,
    protect_current_step: bool = False,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx=None,
) -> RunResult:
    """Deprecated shim: the driver moved to :func:`repro.runtime.run_baseline`.

    Delegates unchanged (results are pinned identical by the runtime
    equivalence suite).  For the shared ``tracer``/``registry``/``profiler``
    and ``engine="batched"|"scalar"`` semantics see the
    :mod:`repro.runtime.engine` reference.
    """
    warnings.warn(
        "repro.core.pipeline.run_baseline is deprecated; "
        "use repro.runtime.run_baseline",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.drivers import run_baseline as _impl

    return _impl(
        context,
        hierarchy,
        name=name,
        protect_current_step=protect_current_step,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        engine=engine,
        ctx=ctx,
    )
