"""Camera-path replay: visible-set computation and the baseline driver.

The demand access sequence of a replay is *policy independent* — which
blocks are visible at step ``i`` depends only on the path and geometry —
so :func:`compute_visible_sets` is shared by every driver and
:func:`collect_demand_trace` can feed the offline Belady policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.camera.frustum import visible_masks_batch
from repro.camera.path import CameraPath
from repro.core.metrics import RunResult, StepMetrics
from repro.obs.profiler import resolve_profiler
from repro.render.render_model import RenderCostModel
from repro.storage.hierarchy import MemoryHierarchy
from repro.volume.blocks import BlockGrid

__all__ = [
    "compute_visible_sets",
    "collect_demand_trace",
    "run_baseline",
    "PipelineContext",
    "REPLAY_ENGINES",
]

#: Replay fast-path choices accepted by every driver's ``engine`` argument.
REPLAY_ENGINES = ("batched", "scalar")


def _resolve_engine(engine: str) -> bool:
    """Validate ``engine`` and return True for the batched fast path."""
    if engine not in REPLAY_ENGINES:
        raise ValueError(f"engine must be one of {REPLAY_ENGINES}, got {engine!r}")
    return engine == "batched"


def compute_visible_sets(
    path: CameraPath,
    grid: BlockGrid,
    include_center: bool = True,
) -> List[np.ndarray]:
    """Ground-truth visible block ids per view point (ascending id order).

    One batched visibility evaluation over all path positions — this is
    the geometry the renderer needs at each step, independent of caching.
    """
    masks = visible_masks_batch(path.positions, grid, path.view_angle_deg, include_center)
    return [np.flatnonzero(m) for m in masks]


def collect_demand_trace(
    path: CameraPath,
    grid: BlockGrid,
    visible_sets: Optional[List[np.ndarray]] = None,
) -> np.ndarray:
    """The flat demand access sequence a replay will issue (``int64``).

    Feeding this to :class:`repro.policies.belady.BeladyPolicy` yields the
    offline-optimal baseline; the order (steps outer, ascending block id
    inner) matches every driver in this module.
    """
    if visible_sets is None:
        visible_sets = compute_visible_sets(path, grid)
    if not visible_sets:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(ids, dtype=np.int64) for ids in visible_sets])


@dataclass
class PipelineContext:
    """Everything a driver needs to replay a path, bundled for reuse.

    Precomputing ``visible_sets`` once and replaying under several
    hierarchies (FIFO vs LRU vs app-aware) keeps comparisons exact: every
    driver sees the identical demand sequence.
    """

    path: CameraPath
    grid: BlockGrid
    visible_sets: List[np.ndarray]
    render_model: RenderCostModel

    @classmethod
    def create(
        cls,
        path: CameraPath,
        grid: BlockGrid,
        render_model: Optional[RenderCostModel] = None,
        include_center: bool = True,
    ) -> "PipelineContext":
        return cls(
            path=path,
            grid=grid,
            visible_sets=compute_visible_sets(path, grid, include_center),
            render_model=render_model or RenderCostModel(),
        )

    def demand_trace(self) -> np.ndarray:
        return collect_demand_trace(self.path, self.grid, self.visible_sets)


def run_baseline(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    name: Optional[str] = None,
    protect_current_step: bool = False,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
) -> RunResult:
    """Replay the path with a conventional policy (FIFO/LRU/ARC/...).

    Per step: fetch every visible block through the hierarchy, then render;
    no prediction, no prefetch, so the step time is ``io + render`` (§IV-D:
    "I/O is idle during the rendering time").

    ``protect_current_step=True`` applies Algorithm 1's eviction constraint
    (victims must not have been used at the current step) to the baseline
    too — an ablation knob; the paper's baselines run unprotected.

    ``engine`` selects the replay fast path: ``"batched"`` (default)
    fetches each step's visible set with one
    :meth:`~repro.storage.hierarchy.MemoryHierarchy.fetch_many` call,
    ``"scalar"`` issues one ``fetch`` per block.  Both produce identical
    results (simulated clocks, stats, byte ledger — pinned by the
    equivalence tests); batched is simply faster.

    ``tracer`` (a :class:`repro.trace.Tracer`) is installed on the
    hierarchy for the replay and additionally receives one ``render``
    event per step; pass ``None`` to keep whatever tracer the hierarchy
    already has (the no-op tracer by default).

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) is likewise
    installed on the hierarchy (per-level fetch latency and byte metrics)
    and receives a per-step ``frame_time_seconds`` histogram of simulated
    step totals.  ``profiler`` (a :class:`repro.obs.PhaseProfiler`)
    records wall-clock ``fetch``/``render`` spans per step.
    """
    if tracer is not None:
        hierarchy.set_tracer(tracer)
    tracer = hierarchy.tracer
    if registry is not None:
        hierarchy.set_registry(registry)
    registry = hierarchy.registry
    profiler = resolve_profiler(profiler)
    frame_hist = registry.histogram("frame_time_seconds", kind="sim")
    policy_name = hierarchy.fastest.policy.name
    batched = _resolve_engine(engine)
    faulty = hierarchy.fault_injector is not None
    dropped_blocks = 0
    degraded_frames = 0
    steps: List[StepMetrics] = []
    for i, ids in enumerate(context.visible_sets):
        fast_misses_before = hierarchy.fastest.stats.misses
        min_free = i if protect_current_step else None
        step_dropped = 0
        with profiler.span("fetch"):
            if batched:
                res = hierarchy.fetch_many(ids, i, min_free_step=min_free)
                io = res.time_s
                step_dropped = res.n_dropped
            else:
                io = 0.0
                for b in ids:
                    r = hierarchy.fetch(int(b), i, min_free_step=min_free)
                    io += r.time_s
                    if r.dropped:
                        step_dropped += 1
        if step_dropped:
            # Graceful degradation: the frame renders without the blocks
            # the storage stack could not deliver.
            dropped_blocks += step_dropped
            degraded_frames += 1
        with profiler.span("render"):
            render = context.render_model.render_time(len(ids) - step_dropped)
        if tracer.enabled:
            tracer.record("render", i, time_s=render)
        if registry.enabled:
            frame_hist.observe(io + render)
        steps.append(
            StepMetrics(
                step=i,
                n_visible=len(ids),
                n_fast_misses=hierarchy.fastest.stats.misses - fast_misses_before,
                io_time_s=io,
                render_time_s=render,
            )
        )
    if profiler.enabled:
        profiler.charge_sim("io", sum(s.io_time_s for s in steps))
        profiler.charge_sim("render", sum(s.render_time_s for s in steps))
    extras = {
        "backing_bytes": float(hierarchy.backing_bytes),
        "bytes_moved": float(
            hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
        ),
    }
    if faulty:
        # Added only under fault injection so fault-free summaries stay
        # byte-identical to pre-faults snapshots.
        extras["dropped_blocks"] = float(dropped_blocks)
        extras["degraded_frames"] = float(degraded_frames)
        extras["fault_stats"] = hierarchy.fault_injector.stats.as_dict()
    return RunResult(
        name=name or f"baseline-{policy_name}",
        policy=policy_name,
        overlap_prefetch=False,
        steps=steps,
        hierarchy_stats=hierarchy.stats(),
        extras=extras,
    )
