"""Budgeted interactive replay: frame deadlines instead of stalls.

The main pipeline models the paper's semantics — every visible block is
fetched before rendering, so misses cost *time*.  Real interactive systems
often invert this: the frame deadline is fixed, the renderer draws with
whatever is resident, and missing blocks appear as holes until I/O catches
up.  Under that regime the replacement/prefetch policy determines *image
quality* rather than latency.

:func:`run_budgeted` replays a path with a per-step demand-I/O budget:
visible blocks are fetched in priority order until the budget runs out,
the rest stay missing for that frame.  The result records per-step
*coverage* (fraction of visible blocks resident at render time) and the
resident visible sets, which :func:`render_quality_series` turns into
PSNR-vs-full-data numbers with the real ray-caster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.pipeline import PipelineContext, _resolve_engine
from repro.obs.profiler import resolve_profiler
from repro.render.image import psnr
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import VisibleTable
from repro.utils.validation import check_positive

__all__ = ["BudgetedStep", "BudgetedResult", "run_budgeted", "render_quality_series"]


@dataclass(frozen=True)
class BudgetedStep:
    """One frame of a budgeted replay."""

    step: int
    n_visible: int
    n_rendered: int  # visible blocks resident when the deadline hit
    io_time_s: float
    prefetch_time_s: float
    rendered_ids: np.ndarray  # the resident visible ids (for image eval)
    n_dropped: int = 0  # blocks the (fault-injected) storage failed to deliver

    @property
    def coverage(self) -> float:
        """Fraction of the visible set available to the renderer."""
        return self.n_rendered / self.n_visible if self.n_visible else 1.0


@dataclass
class BudgetedResult:
    """Aggregate of a budgeted replay."""

    name: str
    io_budget_s: float
    steps: List[BudgetedStep] = field(default_factory=list)

    @property
    def mean_coverage(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.mean([s.coverage for s in self.steps]))

    @property
    def min_coverage(self) -> float:
        if not self.steps:
            return 1.0
        return float(min(s.coverage for s in self.steps))

    @property
    def full_frames(self) -> int:
        """Frames rendered with the complete visible set."""
        return sum(1 for s in self.steps if s.n_rendered == s.n_visible)

    @property
    def dropped_blocks(self) -> int:
        """Blocks dropped by fault injection across the replay."""
        return sum(s.n_dropped for s in self.steps)

    @property
    def degraded_frames(self) -> int:
        """Frames that rendered without at least one dropped block."""
        return sum(1 for s in self.steps if s.n_dropped)


def run_budgeted(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    io_budget_s: float,
    importance: Optional[ImportanceTable] = None,
    visible_table: Optional[VisibleTable] = None,
    sigma: float = float("-inf"),
    preload: bool = False,
    name: str = "budgeted",
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
) -> BudgetedResult:
    """Replay with a per-step demand-I/O deadline.

    Per step: visible blocks already resident are free — their (cheap)
    fast-memory read time is recorded in ``io_time_s`` but never charged
    against the budget, so a fully-resident frame always renders complete.
    Missing blocks are fetched most-important-first (when ``importance``
    is given) until the accumulated *miss* fetch time would exceed
    ``io_budget_s`` — the rest are holes this frame.  When
    ``visible_table`` is given, the predicted next view is prefetched
    during rendering exactly as in Algorithm 1 (the prefetch rides the
    render time, not the budget).

    ``tracer`` is installed on the hierarchy for the replay and receives
    one ``render`` event per step (cost-model time for the rendered set).
    ``registry`` is installed likewise; on top of the hierarchy's fetch
    metrics it records a per-step ``frame_coverage`` histogram and a
    ``frame_time_seconds`` histogram.  ``profiler`` records wall-clock
    preload/fetch/prefetch spans.

    ``engine="batched"`` (default) partitions each visible set with one
    vectorized residency probe and fetches the resident blocks through
    :meth:`~repro.storage.hierarchy.MemoryHierarchy.fetch_many`; the miss
    loop stays sequential either way because the budget cut-off is
    inherently order-dependent.  Results are identical to ``"scalar"``.
    """
    check_positive("io_budget_s", io_budget_s)
    if tracer is not None:
        hierarchy.set_tracer(tracer)
    tracer = hierarchy.tracer
    if registry is not None:
        hierarchy.set_registry(registry)
    registry = hierarchy.registry
    profiler = resolve_profiler(profiler)
    frame_hist = registry.histogram("frame_time_seconds", kind="sim")
    coverage_hist = registry.histogram(
        "frame_coverage", buckets=tuple(k / 10.0 for k in range(11))
    )
    if preload and importance is not None:
        with profiler.span("preload"):
            hierarchy.preload(importance.ids_above(sigma))

    fastest = hierarchy.fastest
    batched = _resolve_engine(engine)
    steps: List[BudgetedStep] = []
    positions = context.path.positions

    for i, ids in enumerate(context.visible_sets):
        if batched:
            ids_arr = np.ascontiguousarray(ids, dtype=np.int64)
            mask = fastest.contains_many(ids_arr)
            resident = ids_arr[mask]
            missing_arr = ids_arr[~mask]
            if importance is not None and missing_arr.size:
                missing_arr = missing_arr[
                    np.argsort(-importance.scores[missing_arr], kind="stable")
                ]
            missing = missing_arr.tolist()
            rendered = resident.tolist()
        else:
            ids_int = [int(b) for b in ids]
            resident = [b for b in ids_int if hierarchy.contains_fast(b)]
            resident_set = set(resident)
            missing = [b for b in ids_int if b not in resident_set]
            if importance is not None and missing:
                order = np.argsort(-importance.scores[np.asarray(missing)], kind="stable")
                missing = [missing[k] for k in order]
            rendered = list(resident)

        miss_time = 0.0
        step_dropped = 0
        with profiler.span("fetch"):
            # Hits: account + touch; free wrt the budget.
            if batched:
                res = hierarchy.fetch_many(resident, i, min_free_step=i)
                hit_time = res.time_s
                if res.n_dropped:  # resident copy unreadable, nothing served
                    step_dropped += res.n_dropped
                    gone = set(res.dropped_ids)
                    rendered = [b for b in rendered if b not in gone]
            else:
                hit_time = 0.0
                for b in resident:
                    r = hierarchy.fetch(b, i, min_free_step=i)
                    hit_time += r.time_s
                    if r.dropped:
                        step_dropped += 1
                        rendered.remove(b)
            for b in missing:
                r = hierarchy.fetch(b, i, min_free_step=i)
                miss_time += r.time_s
                if r.dropped:
                    step_dropped += 1  # charged time but no data: a hole
                else:
                    rendered.append(b)
                if miss_time >= io_budget_s:
                    break  # deadline: remaining blocks stay holes this frame
        io = hit_time + miss_time

        prefetch_time = 0.0
        if visible_table is not None:
            with profiler.span("prefetch"):
                _, predicted = visible_table.lookup(positions[i])
                if importance is not None:
                    candidates = importance.filter_and_rank(predicted, sigma)
                else:
                    candidates = predicted
                # Slice *before* the resident skip (scalar semantics:
                # skipped candidates still consume queue slots).
                if batched:
                    _, prefetch_time = hierarchy.prefetch_many(
                        candidates[: fastest.capacity], i, min_free_step=i
                    )
                else:
                    for b in candidates[: fastest.capacity]:
                        b = int(b)
                        if hierarchy.contains_fast(b):
                            continue
                        prefetch_time += hierarchy.fetch(
                            b, i, prefetch=True, min_free_step=i
                        ).time_s

        render_time = context.render_model.render_time(len(rendered))
        if tracer.enabled:
            tracer.record("render", i, time_s=render_time)
        step_row = BudgetedStep(
            step=i,
            n_visible=len(ids),
            n_rendered=len(rendered),
            io_time_s=io,
            prefetch_time_s=prefetch_time,
            rendered_ids=np.asarray(sorted(rendered), dtype=np.int64),
            n_dropped=step_dropped,
        )
        if registry.enabled:
            frame_hist.observe(io + max(prefetch_time, render_time))
            coverage_hist.observe(step_row.coverage)
        steps.append(step_row)

    return BudgetedResult(name=name, io_budget_s=io_budget_s, steps=steps)


def render_quality_series(
    result: BudgetedResult,
    context: PipelineContext,
    raycaster,
    every: int = 10,
) -> "list[tuple[int, float]]":
    """PSNR of budget-limited frames vs the frames a stalling pipeline shows.

    The reference frame for step *i* is the render restricted to the *full
    visible set* of that step — exactly the image the paper's stall-until-
    loaded pipeline would display.  (Not the unrestricted render: square
    image corners see slightly past the circular Eq. 1 cone, so even full
    coverage would differ from an all-blocks render.)  Renders every
    ``every``-th step twice and returns ``(step, psnr_db)`` pairs; full
    coverage gives ``inf``.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    out = []
    for s in result.steps[::every]:
        camera = context.path.camera(s.step)
        reference = raycaster.render(
            camera,
            resident_blocks=np.asarray(context.visible_sets[s.step], dtype=np.int64),
            grid=context.grid,
        )
        partial = raycaster.render(
            camera, resident_blocks=s.rendered_ids, grid=context.grid
        )
        out.append((s.step, psnr(partial, reference)))
    return out
