"""Budgeted interactive replay: frame deadlines instead of stalls.

The main pipeline models the paper's semantics — every visible block is
fetched before rendering, so misses cost *time*.  Real interactive systems
often invert this: the frame deadline is fixed, the renderer draws with
whatever is resident, and missing blocks appear as holes until I/O catches
up.  Under that regime the replacement/prefetch policy determines *image
quality* rather than latency.

:func:`repro.runtime.run_budgeted` replays a path with a per-step
demand-I/O budget: visible blocks are fetched in priority order until the
budget runs out, the rest stay missing for that frame.  The result records
per-step *coverage* (fraction of visible blocks resident at render time)
and the resident visible sets, which :func:`render_quality_series` turns
into PSNR-vs-full-data numbers with the real ray-caster.  The
:class:`BudgetedStep`/:class:`BudgetedResult` records stay here; the
``run_budgeted`` in this module is a deprecation shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.pipeline import PipelineContext
from repro.render.image import psnr
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import VisibleTable

__all__ = ["BudgetedStep", "BudgetedResult", "run_budgeted", "render_quality_series"]


@dataclass(frozen=True)
class BudgetedStep:
    """One frame of a budgeted replay."""

    step: int
    n_visible: int
    n_rendered: int  # visible blocks resident when the deadline hit
    io_time_s: float
    prefetch_time_s: float
    rendered_ids: np.ndarray  # the resident visible ids (for image eval)
    n_dropped: int = 0  # blocks the (fault-injected) storage failed to deliver

    @property
    def coverage(self) -> float:
        """Fraction of the visible set available to the renderer."""
        return self.n_rendered / self.n_visible if self.n_visible else 1.0


@dataclass
class BudgetedResult:
    """Aggregate of a budgeted replay."""

    name: str
    io_budget_s: float
    steps: List[BudgetedStep] = field(default_factory=list)

    @property
    def mean_coverage(self) -> float:
        if not self.steps:
            return 1.0
        return float(np.mean([s.coverage for s in self.steps]))

    @property
    def min_coverage(self) -> float:
        if not self.steps:
            return 1.0
        return float(min(s.coverage for s in self.steps))

    @property
    def full_frames(self) -> int:
        """Frames rendered with the complete visible set."""
        return sum(1 for s in self.steps if s.n_rendered == s.n_visible)

    @property
    def dropped_blocks(self) -> int:
        """Blocks dropped by fault injection across the replay."""
        return sum(s.n_dropped for s in self.steps)

    @property
    def degraded_frames(self) -> int:
        """Frames that rendered without at least one dropped block."""
        return sum(1 for s in self.steps if s.n_dropped)


def run_budgeted(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    io_budget_s: float,
    importance: Optional[ImportanceTable] = None,
    visible_table: Optional[VisibleTable] = None,
    sigma: float = float("-inf"),
    preload: bool = False,
    name: str = "budgeted",
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx=None,
) -> BudgetedResult:
    """Deprecated shim: the driver moved to :func:`repro.runtime.run_budgeted`.

    Delegates unchanged (results are pinned identical by the runtime
    equivalence suite).  For the shared ``tracer``/``registry``/``profiler``
    and ``engine="batched"|"scalar"`` semantics see the
    :mod:`repro.runtime.engine` reference.
    """
    warnings.warn(
        "repro.core.interactive.run_budgeted is deprecated; "
        "use repro.runtime.run_budgeted",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.drivers import run_budgeted as _impl

    return _impl(
        context,
        hierarchy,
        io_budget_s,
        importance=importance,
        visible_table=visible_table,
        sigma=sigma,
        preload=preload,
        name=name,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        engine=engine,
        ctx=ctx,
    )


def render_quality_series(
    result: BudgetedResult,
    context: PipelineContext,
    raycaster,
    every: int = 10,
) -> "list[tuple[int, float]]":
    """PSNR of budget-limited frames vs the frames a stalling pipeline shows.

    The reference frame for step *i* is the render restricted to the *full
    visible set* of that step — exactly the image the paper's stall-until-
    loaded pipeline would display.  (Not the unrestricted render: square
    image corners see slightly past the circular Eq. 1 cone, so even full
    coverage would differ from an all-blocks render.)  Renders every
    ``every``-th step twice and returns ``(step, psnr_db)`` pairs; full
    coverage gives ``inf``.
    """
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    out = []
    for s in result.steps[::every]:
        camera = context.path.camera(s.step)
        reference = raycaster.render(
            camera,
            resident_blocks=np.asarray(context.visible_sets[s.step], dtype=np.int64),
            grid=context.grid,
        )
        partial = raycaster.render(
            camera, resident_blocks=s.rendered_ids, grid=context.grid
        )
        out.append((s.step, psnr(partial, reference)))
    return out
