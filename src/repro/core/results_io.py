"""Persisting run results.

Experiments produce :class:`~repro.core.metrics.RunResult` (and
:class:`~repro.core.interactive.BudgetedResult`) objects; this module
serialises them for downstream analysis — a JSON document with the summary
plus full per-level statistics, and a per-step CSV for plotting time
series.  No pickle: files are portable and diffable.

Per-step records are serialised from ``dataclasses.fields`` of the actual
step type, so a field added to :class:`~repro.core.metrics.StepMetrics` or
:class:`~repro.core.interactive.BudgetedStep` (e.g. ``n_dropped``) shows
up in every artifact automatically instead of silently drifting out of a
hand-maintained column list.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.metrics import RunResult

__all__ = ["run_to_dict", "save_run_json", "save_steps_csv", "load_run_json"]


def _step_field_names(result) -> List[str]:
    if not result.steps:
        return []
    return [f.name for f in dataclasses.fields(result.steps[0])]


def _plain(value):
    """JSON-plain view of one step field value."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def run_to_dict(result) -> Dict:
    """A JSON-serialisable view of a run (summary + hierarchy stats + steps).

    Accepts a :class:`~repro.core.metrics.RunResult` or a
    :class:`~repro.core.interactive.BudgetedResult`; step rows carry every
    dataclass field of the step type.
    """
    doc: Dict = {
        "name": result.name,
        "steps": [
            {f.name: _plain(getattr(s, f.name)) for f in dataclasses.fields(s)}
            for s in result.steps
        ],
    }
    if isinstance(result, RunResult):
        doc["policy"] = result.policy
        doc["overlap_prefetch"] = result.overlap_prefetch
        doc["summary"] = dict(result.summary())
        doc["hierarchy"] = result.hierarchy_stats.as_dict()
        doc["extras"] = {k: _plain(v) for k, v in result.extras.items()}
    else:  # budgeted replay
        doc["io_budget_s"] = result.io_budget_s
        doc["summary"] = {
            "mean_coverage": result.mean_coverage,
            "min_coverage": result.min_coverage,
            "full_frames": result.full_frames,
        }
    return doc


def save_run_json(result, path: "str | Path") -> Path:
    """Write the full run record as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(run_to_dict(result), indent=2, sort_keys=True))
    return path


def load_run_json(path: "str | Path") -> Dict:
    """Read back a saved run record (as plain dicts, not a RunResult)."""
    return json.loads(Path(path).read_text())


def save_steps_csv(result, path: "str | Path") -> Path:
    """Write the per-step time series as CSV (one row per view point).

    Columns are the step dataclass's fields, in declaration order; array
    fields (``rendered_ids``) are written as JSON lists in their cell.
    """
    path = Path(path)
    fields = _step_field_names(result)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(fields)
        for s in result.steps:
            row = []
            for name in fields:
                value = _plain(getattr(s, name))
                row.append(json.dumps(value) if isinstance(value, list) else value)
            writer.writerow(row)
    return path
