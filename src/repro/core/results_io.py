"""Persisting run results.

Experiments produce :class:`~repro.core.metrics.RunResult` objects; this
module serialises them for downstream analysis — a JSON document with the
summary plus full per-level statistics, and a per-step CSV for plotting
time series.  No pickle: files are portable and diffable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict

from repro.core.metrics import RunResult

__all__ = ["run_to_dict", "save_run_json", "save_steps_csv", "load_run_json"]

_STEP_FIELDS = [
    "step",
    "n_visible",
    "n_fast_misses",
    "io_time_s",
    "lookup_time_s",
    "prefetch_time_s",
    "render_time_s",
    "n_prefetched",
]


def run_to_dict(result: RunResult) -> Dict:
    """A JSON-serialisable view of a run (summary + hierarchy stats + steps)."""
    return {
        "name": result.name,
        "policy": result.policy,
        "overlap_prefetch": result.overlap_prefetch,
        "summary": {k: v for k, v in result.summary().items()},
        "hierarchy": result.hierarchy_stats.as_dict(),
        "steps": [
            {field: getattr(s, field) for field in _STEP_FIELDS} for s in result.steps
        ],
    }


def save_run_json(result: RunResult, path: "str | Path") -> Path:
    """Write the full run record as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(run_to_dict(result), indent=2, sort_keys=True))
    return path


def load_run_json(path: "str | Path") -> Dict:
    """Read back a saved run record (as plain dicts, not a RunResult)."""
    return json.loads(Path(path).read_text())


def save_steps_csv(result: RunResult, path: "str | Path") -> Path:
    """Write the per-step time series as CSV (one row per view point)."""
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(_STEP_FIELDS)
        for s in result.steps:
            writer.writerow([getattr(s, field) for field in _STEP_FIELDS])
    return path
