"""An interactive out-of-core session: the adoptable front door.

Everything else in :mod:`repro.core` replays *recorded* paths for
experiments.  :class:`OutOfCoreSession` is the API an application embeds:
feed it camera positions one at a time, get back the voxel blocks for the
current view — with real, bounded memory use.  The simulated hierarchy
makes the placement decisions (Algorithm 1: protected eviction, importance
preload, table prefetch), and the session keeps its in-RAM block payloads
exactly mirroring the fastest level's residency, so evictions actually
release memory.

>>> session = OutOfCoreSession(store, vtable, itable, hierarchy)
>>> blocks = session.view(np.array([2.5, 0.0, 0.0]))   # {block_id: voxels}
>>> session.stats().total_miss_rate
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.camera.frustum import visible_blocks
from repro.core.metrics import StepMetrics
from repro.storage.hierarchy import MemoryHierarchy
from repro.storage.stats import HierarchyStats
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import LookupCostModel, VisibleTable
from repro.volume.store import BlockStore

__all__ = ["OutOfCoreSession"]


class OutOfCoreSession:
    """Interactive viewer state over a block store and the paper's tables.

    Parameters
    ----------
    store:
        Source of real block payloads (file-backed or in-memory).
    visible_table, importance_table:
        The Step 1-2 preprocessing products.  ``visible_table=None``
        disables prefetch; ``importance_table=None`` disables the preload
        and the σ filter.
    hierarchy:
        The placement simulator; its fastest level bounds how many block
        payloads this session keeps in RAM.
    view_angle_deg:
        Frustum opening angle for visibility.
    sigma:
        Importance threshold (defaults to the table's median score).
    """

    def __init__(
        self,
        store: BlockStore,
        visible_table: Optional[VisibleTable],
        importance_table: Optional[ImportanceTable],
        hierarchy: MemoryHierarchy,
        view_angle_deg: float = 10.0,
        sigma: Optional[float] = None,
        lookup_cost: Optional[LookupCostModel] = None,
        preload: bool = True,
    ) -> None:
        self.store = store
        self.grid = store.grid
        self.visible_table = visible_table
        self.importance_table = importance_table
        self.hierarchy = hierarchy
        self.view_angle_deg = float(view_angle_deg)
        self.lookup_cost = lookup_cost or LookupCostModel()
        if sigma is None and importance_table is not None:
            sigma = importance_table.threshold_for_percentile(0.5)
        self.sigma = float(sigma) if sigma is not None else float("-inf")

        self._blocks: Dict[int, np.ndarray] = {}  # payloads mirroring DRAM
        self._step = 0
        self.history: "list[StepMetrics]" = []

        if preload and importance_table is not None:
            placed = hierarchy.preload(
                [int(b) for b in importance_table.ids_above(self.sigma)]
            )
            # Materialise the preloaded fastest-level payloads.
            for bid in hierarchy.fastest.resident_ids():
                self._blocks[bid] = store.read_block(bid)
            self.preloaded = placed
        else:
            self.preloaded = {}

    # -- the interactive step ---------------------------------------------------

    def view(self, position: np.ndarray) -> Dict[int, np.ndarray]:
        """Advance to a new camera position; return the visible payloads.

        Fetches whatever the view needs (simulated timing, real reads),
        prefetches the predicted next view, and drops payloads the
        hierarchy evicted — RAM use never exceeds the fastest level's
        capacity in blocks.
        """
        position = np.asarray(position, dtype=np.float64)
        i = self._step
        ids = visible_blocks(position, self.grid, self.view_angle_deg)

        io = 0.0
        misses_before = self.hierarchy.fastest.stats.misses
        for b in ids:
            io += self.hierarchy.fetch(int(b), i, min_free_step=i).time_s
        n_misses = self.hierarchy.fastest.stats.misses - misses_before

        lookup_time = 0.0
        prefetch_time = 0.0
        n_prefetched = 0
        if self.visible_table is not None:
            _, predicted = self.visible_table.lookup(position)
            lookup_time = self.lookup_cost.query_time(self.visible_table.n_entries)
            if self.importance_table is not None:
                candidates = self.importance_table.filter_and_rank(predicted, self.sigma)
            else:
                candidates = predicted
            cap = self.hierarchy.fastest.capacity
            for b in candidates:
                if n_prefetched >= cap:
                    break
                b = int(b)
                if self.hierarchy.contains_fast(b):
                    continue
                prefetch_time += self.hierarchy.fetch(
                    b, i, prefetch=True, min_free_step=i
                ).time_s
                n_prefetched += 1

        self._sync_payloads()
        self.history.append(
            StepMetrics(
                step=i,
                n_visible=len(ids),
                n_fast_misses=n_misses,
                io_time_s=io,
                lookup_time_s=lookup_time,
                prefetch_time_s=prefetch_time,
                n_prefetched=n_prefetched,
            )
        )
        self._step += 1
        return {int(b): self._blocks[int(b)] for b in ids if int(b) in self._blocks}

    def _sync_payloads(self) -> None:
        """Mirror the fastest level: load new residents, free evicted ones."""
        resident = set(self.hierarchy.fastest.resident_ids())
        for bid in list(self._blocks):
            if bid not in resident:
                del self._blocks[bid]
        for bid in resident:
            if bid not in self._blocks:
                self._blocks[bid] = self.store.read_block(bid)

    # -- introspection --------------------------------------------------------------

    @property
    def n_resident_blocks(self) -> int:
        return len(self._blocks)

    @property
    def resident_nbytes(self) -> int:
        """Actual bytes of payload currently held in RAM."""
        return sum(b.nbytes for b in self._blocks.values())

    def resident_ids(self) -> np.ndarray:
        return np.asarray(sorted(self._blocks), dtype=np.int64)

    def stats(self) -> HierarchyStats:
        return self.hierarchy.stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutOfCoreSession(step={self._step}, resident={len(self._blocks)}/"
            f"{self.hierarchy.fastest.capacity} blocks, "
            f"{self.resident_nbytes / 1e6:.1f} MB)"
        )
