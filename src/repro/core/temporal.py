"""Deprecated import path for the temporal replay driver.

The driver moved to :func:`repro.runtime.run_temporal`, where it is a
:class:`~repro.runtime.engine.SimulationEngine` recipe (temporal remap →
demand fetch → render → next-timestep prefetch) instead of a hand-rolled
loop.  This shim delegates unchanged — results are pinned identical by
the runtime equivalence suite.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.metrics import RunResult
from repro.core.pipeline import PipelineContext
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import LookupCostModel, VisibleTable
from repro.volume.timeseries import TimeVaryingVolume

__all__ = ["run_temporal"]


def run_temporal(
    context: PipelineContext,
    series: TimeVaryingVolume,
    hierarchy: MemoryHierarchy,
    steps_per_timestep: int,
    visible_table: Optional[VisibleTable] = None,
    importance: Optional[ImportanceTable] = None,
    sigma: float = float("-inf"),
    prefetch_next_timestep: bool = True,
    lookup_cost: Optional[LookupCostModel] = None,
    name: str = "temporal",
    ctx=None,
) -> RunResult:
    """Deprecated shim: use :func:`repro.runtime.run_temporal`."""
    warnings.warn(
        "repro.core.temporal.run_temporal is deprecated; "
        "use repro.runtime.run_temporal",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.drivers import run_temporal as _impl

    return _impl(
        context,
        series,
        hierarchy,
        steps_per_timestep,
        visible_table=visible_table,
        importance=importance,
        sigma=sigma,
        prefetch_next_timestep=prefetch_next_timestep,
        lookup_cost=lookup_cost,
        name=name,
        ctx=ctx,
    )
