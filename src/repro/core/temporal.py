"""Temporal replay: time-varying data under the app-aware policy.

The paper's climate workload is time-varying; as the user orbits, the
simulation time also advances, so the working set is the *visible blocks
of the current timestep*.  This driver extends Algorithm 1 with temporal
prefetch (an extension the paper leaves to future work): during rendering
it prefetches the predicted visible set of the **next timestep** — the
same spatial prediction, shifted one step forward in time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.metrics import RunResult, StepMetrics
from repro.core.pipeline import PipelineContext
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import LookupCostModel, VisibleTable
from repro.volume.blocks import BlockGrid
from repro.volume.timeseries import TimeVaryingVolume

__all__ = ["run_temporal"]


def run_temporal(
    context: PipelineContext,
    series: TimeVaryingVolume,
    hierarchy: MemoryHierarchy,
    steps_per_timestep: int,
    visible_table: Optional[VisibleTable] = None,
    importance: Optional[ImportanceTable] = None,
    sigma: float = float("-inf"),
    prefetch_next_timestep: bool = True,
    lookup_cost: Optional[LookupCostModel] = None,
    name: str = "temporal",
) -> RunResult:
    """Replay a camera path over a time-varying volume.

    Parameters
    ----------
    context:
        The spatial replay context (path + grid + visible sets).
    series:
        The time-varying volume; timestep at path step ``i`` is
        ``min(i // steps_per_timestep, n_timesteps - 1)``.
    hierarchy:
        Must be sized for the *temporal* id space
        (``series.n_total_blocks(grid)`` blocks).
    visible_table, importance, sigma:
        The paper's tables; when given, prefetch pulls the σ-filtered
        predicted set of the next timestep during rendering.
    prefetch_next_timestep:
        Turn the temporal prefetch off to measure its contribution.
    """
    grid: BlockGrid = context.grid
    if steps_per_timestep < 1:
        raise ValueError(f"steps_per_timestep must be >= 1, got {steps_per_timestep}")
    lookup_cost = lookup_cost or LookupCostModel()

    if importance is not None:
        hierarchy.preload([int(b) for b in importance.ids_above(sigma)])

    fastest = hierarchy.fastest
    steps: List[StepMetrics] = []
    positions = context.path.positions
    n_spatial = grid.n_blocks

    for i, spatial_ids in enumerate(context.visible_sets):
        t = min(i // steps_per_timestep, series.n_timesteps - 1)
        ids = series.temporal_visible_ids(spatial_ids, t, grid)

        io = 0.0
        fast_misses_before = fastest.stats.misses
        for b in ids:
            io += hierarchy.fetch(int(b), i, min_free_step=i).time_s
        n_fast_misses = fastest.stats.misses - fast_misses_before

        render = context.render_model.render_time(len(ids))

        lookup_time = 0.0
        prefetch_time = 0.0
        n_prefetched = 0
        t_next = min((i + 1) // steps_per_timestep, series.n_timesteps - 1)
        if prefetch_next_timestep and visible_table is not None:
            _, predicted = visible_table.lookup(positions[i])
            lookup_time = lookup_cost.query_time(visible_table.n_entries)
            if importance is not None:
                # Importance is over the temporal id space; rank the
                # predicted spatial set within the *next* timestep.
                shifted = np.asarray(predicted, dtype=np.int64) + t_next * n_spatial
                candidates = importance.filter_and_rank(shifted, sigma)
            else:
                candidates = np.asarray(predicted, dtype=np.int64) + t_next * n_spatial
            for b in candidates:
                if n_prefetched >= fastest.capacity:
                    break
                b = int(b)
                if hierarchy.contains_fast(b):
                    continue
                prefetch_time += hierarchy.fetch(b, i, prefetch=True, min_free_step=i).time_s
                n_prefetched += 1

        steps.append(
            StepMetrics(
                step=i,
                n_visible=len(ids),
                n_fast_misses=n_fast_misses,
                io_time_s=io,
                lookup_time_s=lookup_time,
                prefetch_time_s=prefetch_time,
                render_time_s=render,
                n_prefetched=n_prefetched,
            )
        )

    return RunResult(
        name=name,
        policy="temporal-app-aware" if prefetch_next_timestep else "temporal-lru",
        overlap_prefetch=True,
        steps=steps,
        hierarchy_stats=hierarchy.stats(),
        extras={
            "n_timesteps": float(series.n_timesteps),
            "backing_bytes": float(hierarchy.backing_bytes),
        },
    )
