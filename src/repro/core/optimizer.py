"""Deprecated import path for Algorithm 1's optimizer.

The implementation moved to :class:`repro.runtime.AppAwareOptimizer`,
where the three steps of the paper's method (importance preload,
constrained-LRU demand fetching, table-driven prefetch overlapped with
rendering) are a :class:`~repro.runtime.engine.SimulationEngine` stage
recipe.  :class:`OptimizerConfig` re-exports unchanged from
:mod:`repro.runtime.config`; the :class:`AppAwareOptimizer` here is a
subclass that emits a single ``DeprecationWarning`` at construction and
otherwise behaves identically (results are pinned by the runtime
equivalence suite).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.runtime.config import OptimizerConfig
from repro.runtime.drivers import AppAwareOptimizer as _RuntimeAppAwareOptimizer

__all__ = ["OptimizerConfig", "AppAwareOptimizer"]


class AppAwareOptimizer(_RuntimeAppAwareOptimizer):
    """Deprecated shim: use :class:`repro.runtime.AppAwareOptimizer`."""

    def __init__(
        self,
        visible_table,
        importance_table,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        warnings.warn(
            "repro.core.optimizer.AppAwareOptimizer is deprecated; "
            "use repro.runtime.AppAwareOptimizer",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(visible_table, importance_table, config)
