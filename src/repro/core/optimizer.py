"""Algorithm 1: application-aware I/O optimization.

The optimizer composes the three steps of the paper's method at run time:

1. **Preload** (lines 1–7): blocks whose importance exceeds σ are placed
   into the hierarchy in importance order before the first view.
2. **Demand fetch** (lines 8–19): per view point, every visible block is
   brought to fast memory; eviction candidates must not have been used at
   the current step (``time < i``), falling back to a bypass when the
   working set alone fills the cache.
3. **Prefetch overlapped with rendering** (lines 20–22): the nearest
   sampled position's ``T_visible`` entry predicts the next view's blocks;
   those above σ are prefetched while the frame renders, so the step costs
   ``io + max(prefetch, render)`` instead of ``io + render``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.metrics import RunResult, StepMetrics
from repro.core.pipeline import PipelineContext, _resolve_engine
from repro.obs.profiler import resolve_profiler
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import LookupCostModel, VisibleTable
from repro.utils.validation import check_probability

__all__ = ["OptimizerConfig", "AppAwareOptimizer"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Tunables of Algorithm 1.

    Parameters
    ----------
    sigma:
        Absolute importance threshold σ.  When ``None`` it is derived from
        ``sigma_percentile`` of the importance distribution.
    sigma_percentile:
        Fraction of blocks considered unimportant (default 0.5: the lower
        half of the entropy distribution is neither preloaded nor
        prefetched).
    preload:
        Run the importance preload (Alg. 1 line 7).  Ablation knob.
    prefetch:
        Run the overlapped prefetch (lines 20–22).  Ablation knob.
    use_importance_filter:
        Filter prefetch candidates by σ (line 22).  With ``False`` every
        predicted block is prefetched — the over-prediction failure mode
        §IV-C warns about.  Ablation knob.
    max_prefetch_per_step:
        Hard cap on prefetch fetches per step (None = fastest-level
        capacity).
    lookup_cost:
        Simulated ``T_visible`` query-cost model (drives Fig. 7b).
    adaptive_sigma:
        Tune σ online (extension): when a step's prefetch time overruns
        its render time, raise the threshold (prefetch less next step);
        when prefetch uses less than half the render budget, lower it.
        The paper fixes σ; this controller keeps the prefetch stream
        filling — but not overrunning — the overlap window as view speed
        changes.  Requires percentile mode (``sigma=None``).
    sigma_step:
        Percentile increment per adjustment of the adaptive controller.
    sigma_bounds:
        Percentile clamp range for the adaptive controller.
    """

    sigma: Optional[float] = None
    sigma_percentile: float = 0.5
    preload: bool = True
    prefetch: bool = True
    use_importance_filter: bool = True
    max_prefetch_per_step: Optional[int] = None
    lookup_cost: LookupCostModel = LookupCostModel()
    adaptive_sigma: bool = False
    sigma_step: float = 0.05
    sigma_bounds: "tuple[float, float]" = (0.05, 0.95)

    def __post_init__(self) -> None:
        check_probability("sigma_percentile", self.sigma_percentile)
        if self.max_prefetch_per_step is not None and self.max_prefetch_per_step < 0:
            raise ValueError(
                f"max_prefetch_per_step must be >= 0, got {self.max_prefetch_per_step}"
            )
        if self.adaptive_sigma:
            if self.sigma is not None:
                raise ValueError("adaptive_sigma requires percentile mode (sigma=None)")
            lo, hi = self.sigma_bounds
            check_probability("sigma_bounds[0]", lo)
            check_probability("sigma_bounds[1]", hi)
            if not lo < hi:
                raise ValueError(f"sigma_bounds must satisfy lo < hi, got {self.sigma_bounds}")
            if not 0.0 < self.sigma_step <= 0.5:
                raise ValueError(f"sigma_step must be in (0, 0.5], got {self.sigma_step}")

    def resolve_sigma(self, importance: ImportanceTable) -> float:
        if self.sigma is not None:
            return float(self.sigma)
        return importance.threshold_for_percentile(self.sigma_percentile)


class AppAwareOptimizer:
    """Replays camera paths with the paper's application-aware policy."""

    def __init__(
        self,
        visible_table: VisibleTable,
        importance_table: ImportanceTable,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        self.visible_table = visible_table
        self.importance_table = importance_table
        self.config = config or OptimizerConfig()
        self.sigma = self.config.resolve_sigma(importance_table)

    # -- Alg. 1 lines 1-7 ------------------------------------------------------

    def preload(self, hierarchy: MemoryHierarchy) -> "dict[str, int]":
        """Place important blocks into every level before the first view."""
        return hierarchy.preload(self.importance_table.ids_above(self.sigma))

    # -- Alg. 1 main loop -----------------------------------------------------------

    def run(
        self,
        context: PipelineContext,
        hierarchy: MemoryHierarchy,
        name: str = "app-aware",
        tracer=None,
        registry=None,
        profiler=None,
        engine: str = "batched",
    ) -> RunResult:
        """Replay ``context.path`` with Algorithm 1 on ``hierarchy``.

        ``tracer`` is installed on the hierarchy for the replay and
        receives one ``render`` event per step.  ``registry`` is installed
        likewise and additionally records per-step frame times, prefetch
        queue depth, and prefetch precision/recall counters (a prefetch at
        step *i* counts as *useful* when the block is demanded at step
        *i + 1*).  ``profiler`` records wall-clock spans for the preload
        and the per-step fetch/render/prefetch phases.

        ``engine="batched"`` (default) runs the demand phase through
        :meth:`~repro.storage.hierarchy.MemoryHierarchy.fetch_many` and
        the prefetch phase through ``prefetch_many``; ``"scalar"`` keeps
        the per-block loops.  Results are identical either way.
        """
        cfg = self.config
        if tracer is not None:
            hierarchy.set_tracer(tracer)
        tracer = hierarchy.tracer
        if registry is not None:
            hierarchy.set_registry(registry)
        registry = hierarchy.registry
        profiler = resolve_profiler(profiler)
        frame_hist = registry.histogram("frame_time_seconds", kind="sim")
        queue_gauge = registry.gauge("prefetch_queue_depth")
        issued_counter = registry.counter("prefetch_evaluated_total")
        useful_counter = registry.counter("prefetch_useful_total")
        demanded_counter = registry.counter("prefetch_demand_window_total")
        batched = _resolve_engine(engine)
        issued_prev: "set[int]" = set()  # scalar engine
        issued_prev_arr = np.empty(0, dtype=np.int64)  # batched engine
        if cfg.preload:
            with profiler.span("preload"):
                self.preload(hierarchy)
        sigma = self.sigma
        percentile = cfg.sigma_percentile

        fastest = hierarchy.fastest
        max_prefetch = (
            cfg.max_prefetch_per_step
            if cfg.max_prefetch_per_step is not None
            else fastest.capacity
        )

        steps: List[StepMetrics] = []
        positions = context.path.positions
        faulty = hierarchy.fault_injector is not None
        dropped_blocks = 0
        degraded_frames = 0
        for i, ids in enumerate(context.visible_sets):
            # Prefetch usefulness: blocks prefetched at step i-1 that the
            # demand stream touches at step i were correct predictions.
            if registry.enabled:
                if batched:
                    if issued_prev_arr.size:
                        issued_counter.inc(issued_prev_arr.size)
                        # Set membership beats np.isin at visible-set sizes.
                        demand_now = set(np.asarray(ids).tolist())
                        useful_counter.inc(
                            sum(1 for b in issued_prev_arr.tolist() if b in demand_now)
                        )
                    issued_prev_arr = np.empty(0, dtype=np.int64)
                else:
                    demand_now = {int(b) for b in ids}
                    if issued_prev:
                        issued_counter.inc(len(issued_prev))
                        useful_counter.inc(len(issued_prev & demand_now))
                    issued_prev = set()
                if i > 0:
                    demanded_counter.inc(len(ids))

            # Demand phase (lines 14-19): victims must satisfy time < i.
            fast_misses_before = fastest.stats.misses
            step_dropped = 0
            with profiler.span("fetch"):
                if batched:
                    res = hierarchy.fetch_many(ids, i, min_free_step=i)
                    io = res.time_s
                    step_dropped = res.n_dropped
                else:
                    io = 0.0
                    for b in ids:
                        r = hierarchy.fetch(int(b), i, min_free_step=i)
                        io += r.time_s
                        if r.dropped:
                            step_dropped += 1
            n_fast_misses = fastest.stats.misses - fast_misses_before
            if step_dropped:
                dropped_blocks += step_dropped
                degraded_frames += 1

            with profiler.span("render"):
                # Dropped blocks are holes this frame: render what arrived.
                render = context.render_model.render_time(len(ids) - step_dropped)
            if tracer.enabled:
                tracer.record("render", i, time_s=render)

            # Prefetch phase (lines 20-22), overlapped with rendering.
            lookup_time = 0.0
            prefetch_time = 0.0
            n_prefetched = 0
            if cfg.prefetch:
                with profiler.span("prefetch"):
                    _, predicted = self.visible_table.lookup(positions[i])
                    lookup_time = cfg.lookup_cost.query_time(self.visible_table.n_entries)
                    if cfg.use_importance_filter:
                        candidates = self.importance_table.filter_and_rank(predicted, sigma)
                    else:
                        candidates = predicted
                    if registry.enabled:
                        queue_gauge.set(len(candidates))
                    if batched:
                        issued, prefetch_time = hierarchy.prefetch_many(
                            candidates, i, min_free_step=i, max_fetch=max_prefetch
                        )
                        n_prefetched = len(issued)
                        if registry.enabled:
                            issued_prev_arr = np.asarray(issued, dtype=np.int64)
                    else:
                        for b in candidates:
                            if n_prefetched >= max_prefetch:
                                break
                            b = int(b)
                            if hierarchy.contains_fast(b):
                                continue
                            prefetch_time += hierarchy.fetch(
                                b, i, prefetch=True, min_free_step=i
                            ).time_s
                            n_prefetched += 1
                            if registry.enabled:
                                issued_prev.add(b)

            if cfg.adaptive_sigma and cfg.prefetch:
                # Controller: keep the prefetch stream inside the overlap
                # window.  Overrun -> prefetch less (raise sigma); big
                # slack -> prefetch more (lower sigma).
                lo, hi = cfg.sigma_bounds
                if prefetch_time > render:
                    percentile = min(hi, percentile + cfg.sigma_step)
                elif prefetch_time < 0.5 * render:
                    percentile = max(lo, percentile - cfg.sigma_step)
                sigma = self.importance_table.threshold_for_percentile(percentile)

            step_metrics = StepMetrics(
                step=i,
                n_visible=len(ids),
                n_fast_misses=n_fast_misses,
                io_time_s=io,
                lookup_time_s=lookup_time,
                prefetch_time_s=prefetch_time,
                render_time_s=render,
                n_prefetched=n_prefetched,
            )
            if registry.enabled:
                frame_hist.observe(step_metrics.step_total_overlapped_s)
            steps.append(step_metrics)

        if profiler.enabled:
            profiler.charge_sim("io", sum(s.io_time_s for s in steps))
            profiler.charge_sim("lookup", sum(s.lookup_time_s for s in steps))
            profiler.charge_sim("prefetch", sum(s.prefetch_time_s for s in steps))
            profiler.charge_sim("render", sum(s.render_time_s for s in steps))
        extras = {
            "sigma": self.sigma,
            "final_sigma": sigma,
            "backing_bytes": float(hierarchy.backing_bytes),
            "bytes_moved": float(
                hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
            ),
        }
        if faulty:
            # Gated on the injector so fault-free summaries stay byte-identical.
            extras["dropped_blocks"] = float(dropped_blocks)
            extras["degraded_frames"] = float(degraded_frames)
            extras["fault_stats"] = hierarchy.fault_injector.stats.as_dict()
        return RunResult(
            name=name,
            policy="app-aware",
            overlap_prefetch=True,
            steps=steps,
            hierarchy_stats=hierarchy.stats(),
            extras=extras,
        )
