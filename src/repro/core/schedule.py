"""Event-driven validation of the analytic total-time rule.

The figures use the paper's analytic accounting (§V-D):
``total = Σ io_i + max(prefetch_i, render_i)``.  This module re-times a
finished run on the explicit two-channel schedule of
:mod:`repro.storage.timeline` — where prefetch and the *next* step's
demand reads share one I/O channel — and reports both totals.  The
analytic rule is optimistic exactly when prefetch overruns spill into the
next step's demand path; the scheduling bench measures that gap.
"""

from __future__ import annotations

from typing import List

from repro.core.metrics import RunResult
from repro.storage.timeline import StepCosts, simulate_schedule

__all__ = ["event_driven_total_time", "step_costs_from_run"]


def step_costs_from_run(result: RunResult) -> List[StepCosts]:
    """Lift a run's per-step aggregates into schedulable work items.

    Each step's demand I/O (including the table lookup, which precedes the
    prefetch issue) becomes one read on the I/O channel and its prefetch
    another — the coarsest faithful decomposition available from the
    aggregated metrics.
    """
    costs = []
    for s in result.steps:
        demand = s.io_time_s + s.lookup_time_s
        costs.append(
            StepCosts(
                demand_reads=(demand,) if demand > 0 else (),
                prefetch_reads=(s.prefetch_time_s,) if s.prefetch_time_s > 0 else (),
                render_s=s.render_time_s,
            )
        )
    return costs


def event_driven_total_time(result: RunResult) -> float:
    """Wall-clock completion of the last frame under the explicit schedule."""
    schedule = simulate_schedule(step_costs_from_run(result))
    return schedule[-1].frame_done_s if schedule else 0.0
