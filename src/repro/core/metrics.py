"""Per-step and per-run metrics shared by every pipeline driver.

The paper's reported quantities map onto :class:`RunResult` as:

- *miss rate* (Figs. 7a, 9, 12): ``total_miss_rate`` — demand misses over
  demand accesses summed across hierarchy levels (§V-A);
- *I/O time* (Figs. 7b, 11): ``io_time_s`` — demand fetch time plus table
  lookup time (the lookup sits on the critical path before the next
  demand fetches, which is how Fig. 7b's overhead manifests);
- *total time* (Fig. 13): ``total_time_s`` — per step,
  ``io + max(prefetch, render)`` when prefetch overlaps rendering
  (the app-aware pipeline) and ``io + render`` otherwise (§V-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.storage.stats import HierarchyStats

__all__ = ["StepMetrics", "RunResult"]


@dataclass(frozen=True)
class StepMetrics:
    """What happened at one view point on the camera path."""

    step: int
    n_visible: int
    n_fast_misses: int  # demand misses at the fastest level this step
    io_time_s: float  # demand fetch time
    lookup_time_s: float = 0.0  # T_visible query time
    prefetch_time_s: float = 0.0
    render_time_s: float = 0.0
    n_prefetched: int = 0

    @property
    def step_total_overlapped_s(self) -> float:
        """io + lookup + max(prefetch, render) — the app-aware step time."""
        return self.io_time_s + self.lookup_time_s + max(self.prefetch_time_s, self.render_time_s)

    @property
    def step_total_serial_s(self) -> float:
        """io + render — the baseline step time (no prefetch to overlap)."""
        return self.io_time_s + self.lookup_time_s + self.render_time_s


@dataclass
class RunResult:
    """Aggregate outcome of replaying one camera path under one policy."""

    name: str
    policy: str
    overlap_prefetch: bool
    steps: List[StepMetrics]
    hierarchy_stats: HierarchyStats
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def io_time_s(self) -> float:
        """Demand I/O plus lookup time (the Fig. 7b / Fig. 11 quantity)."""
        return sum(s.io_time_s + s.lookup_time_s for s in self.steps)

    @property
    def demand_io_time_s(self) -> float:
        return sum(s.io_time_s for s in self.steps)

    @property
    def lookup_time_s(self) -> float:
        return sum(s.lookup_time_s for s in self.steps)

    @property
    def prefetch_time_s(self) -> float:
        return sum(s.prefetch_time_s for s in self.steps)

    @property
    def render_time_s(self) -> float:
        return sum(s.render_time_s for s in self.steps)

    @property
    def io_plus_prefetch_time_s(self) -> float:
        """The Fig. 11 quantity: all data-movement time, demand + prefetch."""
        return self.io_time_s + self.prefetch_time_s

    @property
    def total_time_s(self) -> float:
        """The Fig. 13 quantity, honouring the overlap rule per step."""
        if self.overlap_prefetch:
            return sum(s.step_total_overlapped_s for s in self.steps)
        return sum(s.step_total_serial_s for s in self.steps)

    @property
    def total_miss_rate(self) -> float:
        """Demand miss rate across all hierarchy levels (§V-A)."""
        return self.hierarchy_stats.total_miss_rate

    @property
    def fast_miss_rate(self) -> float:
        """Demand miss rate at the fastest level only."""
        levels = self.hierarchy_stats.levels
        first = next(iter(levels.values()))
        return first.miss_rate

    @property
    def n_prefetched(self) -> int:
        return sum(s.n_prefetched for s in self.steps)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (report/bench friendly)."""
        return {
            "policy": self.policy,
            "n_steps": self.n_steps,
            "total_miss_rate": self.total_miss_rate,
            "fast_miss_rate": self.fast_miss_rate,
            "io_time_s": self.io_time_s,
            "prefetch_time_s": self.prefetch_time_s,
            "render_time_s": self.render_time_s,
            "total_time_s": self.total_time_s,
            "n_prefetched": self.n_prefetched,
            **self.extras,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(name={self.name!r}, policy={self.policy!r}, "
            f"miss_rate={self.total_miss_rate:.3f}, total_time={self.total_time_s:.3f}s)"
        )
