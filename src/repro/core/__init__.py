"""The paper's primary contribution: application-aware I/O optimization.

:class:`AppAwareOptimizer` implements Algorithm 1 — importance preload,
constrained-LRU demand fetching, and table-driven prefetch overlapped with
rendering — on top of the substrates (volume blocks, storage hierarchy,
camera prediction, importance tables).  :mod:`repro.core.pipeline` replays
camera paths under any policy and produces comparable
:class:`~repro.core.metrics.RunResult` records.
"""

from repro.core.metrics import StepMetrics, RunResult
from repro.core.pipeline import (
    compute_visible_sets,
    collect_demand_trace,
    PipelineContext,
)
from repro.core.interactive import (
    BudgetedResult,
    BudgetedStep,
    render_quality_series,
)

# Canonical drivers live in repro.runtime; the package-level names resolve
# there so `from repro.core import run_baseline` stays warning-free.  The
# module paths (repro.core.pipeline.run_baseline, ...) are deprecation shims.
from repro.runtime.config import OptimizerConfig
from repro.runtime.drivers import (
    AppAwareOptimizer,
    run_baseline,
    run_budgeted,
    run_temporal,
)
from repro.core.session import OutOfCoreSession
from repro.core.results_io import run_to_dict, save_run_json, save_steps_csv, load_run_json

__all__ = [
    "run_temporal",
    "BudgetedResult",
    "BudgetedStep",
    "run_budgeted",
    "render_quality_series",
    "OutOfCoreSession",
    "run_to_dict",
    "save_run_json",
    "save_steps_csv",
    "load_run_json",
    "StepMetrics",
    "RunResult",
    "compute_visible_sets",
    "collect_demand_trace",
    "run_baseline",
    "PipelineContext",
    "AppAwareOptimizer",
    "OptimizerConfig",
]
