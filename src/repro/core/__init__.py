"""The paper's primary contribution: application-aware I/O optimization.

:class:`AppAwareOptimizer` implements Algorithm 1 — importance preload,
constrained-LRU demand fetching, and table-driven prefetch overlapped with
rendering — on top of the substrates (volume blocks, storage hierarchy,
camera prediction, importance tables).  :mod:`repro.core.pipeline` replays
camera paths under any policy and produces comparable
:class:`~repro.core.metrics.RunResult` records.
"""

from repro.core.metrics import StepMetrics, RunResult
from repro.core.pipeline import (
    compute_visible_sets,
    collect_demand_trace,
    run_baseline,
    PipelineContext,
)
from repro.core.optimizer import AppAwareOptimizer, OptimizerConfig
from repro.core.temporal import run_temporal
from repro.core.interactive import (
    BudgetedResult,
    BudgetedStep,
    run_budgeted,
    render_quality_series,
)
from repro.core.session import OutOfCoreSession
from repro.core.results_io import run_to_dict, save_run_json, save_steps_csv, load_run_json

__all__ = [
    "run_temporal",
    "BudgetedResult",
    "BudgetedStep",
    "run_budgeted",
    "render_quality_series",
    "OutOfCoreSession",
    "run_to_dict",
    "save_run_json",
    "save_steps_csv",
    "load_run_json",
    "StepMetrics",
    "RunResult",
    "compute_visible_sets",
    "collect_demand_trace",
    "run_baseline",
    "PipelineContext",
    "AppAwareOptimizer",
    "OptimizerConfig",
]
