"""Shared utilities: geometry, randomness, timing, validation, serialization.

These helpers are deliberately dependency-light (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.geometry import (
    normalize,
    norms,
    angle_between,
    fibonacci_sphere,
    latlong_sphere,
    spherical_to_cartesian,
    cartesian_to_spherical,
    rotation_matrix_axis_angle,
    random_unit_vectors,
    points_in_ball,
    great_circle_step,
)
from repro.utils.rng import resolve_rng
from repro.utils.timers import SimClock, WallTimer
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_shape_3d,
    check_probability,
)

__all__ = [
    "normalize",
    "norms",
    "angle_between",
    "fibonacci_sphere",
    "latlong_sphere",
    "spherical_to_cartesian",
    "cartesian_to_spherical",
    "rotation_matrix_axis_angle",
    "random_unit_vectors",
    "points_in_ball",
    "great_circle_step",
    "resolve_rng",
    "SimClock",
    "WallTimer",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape_3d",
    "check_probability",
]
