"""Simulated and wall-clock timing.

The reproduction measures I/O cost on a *simulated* clock driven by device
cost models (see DESIGN.md: deterministic simulated clock), so experiments
are reproducible on any machine.  :class:`SimClock` is that clock;
:class:`WallTimer` exists for profiling the reproduction itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SimClock", "WallTimer"]


class SimClock:
    """An accumulating simulated clock measured in seconds.

    Components charge time onto named channels (``"io"``, ``"prefetch"``,
    ``"render"``...), which lets the pipeline apply the paper's overlap rule
    ``total = io + max(prefetch, render)`` after the fact.
    """

    def __init__(self) -> None:
        self._channels: dict = {}

    def charge(self, channel: str, seconds: float) -> None:
        """Add ``seconds`` to ``channel``; negative charges are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._channels[channel] = self._channels.get(channel, 0.0) + seconds

    def total(self, channel: str) -> float:
        """Accumulated seconds on ``channel`` (0.0 if never charged)."""
        return self._channels.get(channel, 0.0)

    def channels(self) -> dict:
        """Snapshot of all channel totals."""
        return dict(self._channels)

    def reset(self, channel: str | None = None) -> None:
        """Clear one channel, or all channels when ``channel`` is None."""
        if channel is None:
            self._channels.clear()
        else:
            self._channels.pop(channel, None)


@dataclass
class WallTimer:
    """Context-manager stopwatch for real elapsed time.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
