"""Simulated and wall-clock timing.

The reproduction measures I/O cost on a *simulated* clock driven by device
cost models (see DESIGN.md: deterministic simulated clock), so experiments
are reproducible on any machine.  :class:`SimClock` is that clock;
:class:`WallTimer` exists for profiling the reproduction itself (see
:mod:`repro.obs.profiler` for the span-structured profiler built on it).
"""

from __future__ import annotations

import time

__all__ = ["SimClock", "WallTimer"]


class SimClock:
    """An accumulating simulated clock measured in seconds.

    Components charge time onto named channels (``"io"``, ``"prefetch"``,
    ``"render"``...), which lets the pipeline apply the paper's overlap rule
    ``total = io + max(prefetch, render)`` after the fact.
    """

    def __init__(self) -> None:
        self._channels: dict[str, float] = {}

    def charge(self, channel: str, seconds: float) -> None:
        """Add ``seconds`` to ``channel``; negative charges are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self._channels[channel] = self._channels.get(channel, 0.0) + seconds

    def total(self, channel: str) -> float:
        """Accumulated seconds on ``channel`` (0.0 if never charged)."""
        return self._channels.get(channel, 0.0)

    def channels(self) -> dict[str, float]:
        """Snapshot of all channel totals."""
        return dict(self._channels)

    def reset(self, channel: str | None = None) -> None:
        """Clear one channel, or all channels when ``channel`` is None."""
        if channel is None:
            self._channels.clear()
        else:
            self._channels.pop(channel, None)


class WallTimer:
    """Stopwatch for real elapsed time, readable while still running.

    ``elapsed`` is a live property: inside the context (or between
    :meth:`start` and :meth:`stop`) it returns the running elapsed time,
    and after exit it returns the final total.  :meth:`lap` returns the
    time since the previous lap (or since start), also without stopping.

    >>> with WallTimer() as t:
    ...     mid = t.elapsed  # readable in flight
    >>> t.elapsed >= mid >= 0.0
    True
    """

    def __init__(self) -> None:
        self._accum = 0.0
        self._start: float | None = None
        self._lap_mark: float | None = None

    # -- control -------------------------------------------------------------

    def start(self) -> "WallTimer":
        """(Re)start from zero; returns self for chaining."""
        self._accum = 0.0
        self._start = time.perf_counter()
        self._lap_mark = self._start
        return self

    def stop(self) -> float:
        """Freeze the clock and return the total elapsed seconds."""
        if self._start is None:
            raise RuntimeError("WallTimer.stop() without start()")
        self._accum += time.perf_counter() - self._start
        self._start = None
        self._lap_mark = None
        return self._accum

    def lap(self) -> float:
        """Seconds since the previous lap (or start); leaves the clock running."""
        if self._start is None:
            raise RuntimeError("WallTimer.lap() requires a running timer")
        now = time.perf_counter()
        dt = now - (self._lap_mark if self._lap_mark is not None else self._start)
        self._lap_mark = now
        return dt

    # -- queries -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds — live while running, final after stop."""
        if self._start is None:
            return self._accum
        return self._accum + (time.perf_counter() - self._start)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return f"WallTimer(elapsed={self.elapsed:.6f}, {state})"
