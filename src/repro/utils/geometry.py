"""Vector and spherical geometry primitives used throughout the library.

All functions are vectorised over leading axes where it makes sense; inputs
are converted with ``np.asarray`` and never mutated.  Angles are radians
unless a function name says ``deg``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "norms",
    "angle_between",
    "fibonacci_sphere",
    "latlong_sphere",
    "spherical_to_cartesian",
    "cartesian_to_spherical",
    "rotation_matrix_axis_angle",
    "random_unit_vectors",
    "points_in_ball",
    "great_circle_step",
    "perpendicular_unit_vector",
]

_EPS = 1e-12


def norms(v: np.ndarray, axis: int = -1, keepdims: bool = False) -> np.ndarray:
    """L2 norm along ``axis`` (thin wrapper kept for readability at call sites)."""
    return np.linalg.norm(np.asarray(v, dtype=np.float64), axis=axis, keepdims=keepdims)


def normalize(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Return unit vectors along ``axis``.

    Zero vectors are returned unchanged (instead of producing NaNs) so callers
    can handle degenerate cases explicitly.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v, axis=axis, keepdims=True)
    safe = np.where(n < _EPS, 1.0, n)
    return v / safe


def angle_between(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Angle in radians between vectors ``a`` and ``b`` (broadcast along ``axis``)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    dot = np.sum(a * b, axis=axis)
    na = np.linalg.norm(a, axis=axis)
    nb = np.linalg.norm(b, axis=axis)
    denom = np.where(na * nb < _EPS, 1.0, na * nb)
    cosang = np.clip(dot / denom, -1.0, 1.0)
    return np.arccos(cosang)


def fibonacci_sphere(n: int) -> np.ndarray:
    """``n`` well-distributed unit vectors via the Fibonacci (golden-angle) spiral.

    This is the default direction-sampling scheme for camera-position sampling
    in :mod:`repro.camera.sampling` because it covers the sphere nearly
    uniformly for any ``n`` (a lat-long grid over-samples the poles).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    i = np.arange(n, dtype=np.float64)
    # Offset by 0.5 avoids placing points exactly at the poles.
    z = 1.0 - 2.0 * (i + 0.5) / n
    radius = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    golden = np.pi * (3.0 - np.sqrt(5.0))
    theta = golden * i
    return np.stack([radius * np.cos(theta), radius * np.sin(theta), z], axis=1)


def latlong_sphere(n_lat: int, n_long: int) -> np.ndarray:
    """Unit vectors on a latitude/longitude grid (``n_lat * n_long`` points).

    Matches the paper's description of sampling "according to view
    directions"; the pole rows are interior (no duplicated poles).
    """
    if n_lat < 1 or n_long < 1:
        raise ValueError("n_lat and n_long must be >= 1")
    lats = (np.arange(n_lat) + 0.5) / n_lat * np.pi  # (0, pi)
    longs = np.arange(n_long) / n_long * 2.0 * np.pi
    lat, lon = np.meshgrid(lats, longs, indexing="ij")
    x = np.sin(lat) * np.cos(lon)
    y = np.sin(lat) * np.sin(lon)
    z = np.cos(lat)
    return np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)


def spherical_to_cartesian(theta: np.ndarray, phi: np.ndarray, r: np.ndarray = 1.0) -> np.ndarray:
    """Convert polar angle ``theta`` (from +z) and azimuth ``phi`` to xyz."""
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    st = np.sin(theta)
    return np.stack([r * st * np.cos(phi), r * st * np.sin(phi), r * np.cos(theta)], axis=-1)


def cartesian_to_spherical(v: np.ndarray) -> tuple:
    """Return ``(theta, phi, r)`` for xyz vectors (theta from +z, phi azimuth)."""
    v = np.asarray(v, dtype=np.float64)
    r = np.linalg.norm(v, axis=-1)
    safe_r = np.where(r < _EPS, 1.0, r)
    theta = np.arccos(np.clip(v[..., 2] / safe_r, -1.0, 1.0))
    phi = np.arctan2(v[..., 1], v[..., 0])
    return theta, phi, r


def rotation_matrix_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix about unit ``axis`` by ``angle`` radians."""
    axis = np.asarray(axis, dtype=np.float64)
    n = np.linalg.norm(axis)
    if n < _EPS:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / n
    c, s = np.cos(angle), np.sin(angle)
    C = 1.0 - c
    return np.array(
        [
            [c + x * x * C, x * y * C - z * s, x * z * C + y * s],
            [y * x * C + z * s, c + y * y * C, y * z * C - x * s],
            [z * x * C - y * s, z * y * C + x * s, c + z * z * C],
        ]
    )


def perpendicular_unit_vector(v: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """A unit vector perpendicular to ``v`` (deterministic unless ``rng`` given)."""
    v = normalize(np.asarray(v, dtype=np.float64))
    if rng is not None:
        cand = rng.standard_normal(3)
    else:
        # Pick the coordinate axis least aligned with v for stability.
        cand = np.zeros(3)
        cand[int(np.argmin(np.abs(v)))] = 1.0
    perp = cand - np.dot(cand, v) * v
    n = np.linalg.norm(perp)
    if n < _EPS:  # pragma: no cover - cand is chosen to avoid this
        raise ValueError("degenerate perpendicular")
    return perp / n


def random_unit_vectors(n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` unit vectors drawn uniformly on the sphere."""
    v = rng.standard_normal((n, 3))
    return normalize(v)


def points_in_ball(center: np.ndarray, radius: float, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points uniform inside the ball of ``radius`` around ``center``.

    Used to sample the vicinal points ``v'`` inside the spherical domain
    ``phi`` of the paper's Step 1 (Fig. 6).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    center = np.asarray(center, dtype=np.float64)
    dirs = random_unit_vectors(n, rng)
    # Cube-root transform makes the radial distribution uniform in volume.
    radii = radius * rng.random(n) ** (1.0 / 3.0)
    return center[None, :] + dirs * radii[:, None]


def great_circle_step(position: np.ndarray, axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotate ``position`` about ``axis`` through the origin by ``angle`` radians.

    The workhorse of spherical camera paths: successive calls with a fixed
    axis and step angle walk a great circle at constant angular speed.
    """
    return rotation_matrix_axis_angle(axis, angle) @ np.asarray(position, dtype=np.float64)
