"""Deterministic random-number handling.

Every stochastic component in the library (synthetic fields, random camera
paths, vicinal sampling) takes a ``seed`` or ``rng`` argument and resolves it
through :func:`resolve_rng`, so whole experiments replay bit-identically.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["resolve_rng", "spawn_rngs", "derive_seed", "SeedLike"]


def derive_seed(base: int, *indices: int) -> int:
    """A decorrelated child seed for position ``indices`` under ``base``.

    ``SeedSequence``-mixes ``(base, *indices)`` into one 63-bit integer, so
    suites that fan out over cells/repeats give every position statistically
    independent draws while staying reproducible from a single base seed.
    ``derive_seed(base, i)`` is the bench tier's historical per-cell fault
    seed (``derive_fault_seed`` delegates here).
    """
    ss = np.random.SeedSequence([base & (2**63 - 1), *indices])
    return int(ss.generate_state(1, np.uint64)[0] & (2**63 - 1))


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    ``None`` gives a fresh nondeterministic generator; an ``int`` or
    ``SeedSequence`` gives a deterministic one; a ``Generator`` passes
    through unchanged (so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """``n`` independent child generators derived from ``seed``.

    Used when a sweep runs many configurations that must not share a random
    stream (e.g. one RNG per camera path in a parameter sweep).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
