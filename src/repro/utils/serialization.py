"""Save/load helpers for preprocessing artefacts.

``T_visible`` and ``T_important`` are one-time preprocessing products
(paper Steps 1-2); persisting them lets an interactive session start
without re-running the sampling.  The format is a single ``.npz`` with a
JSON metadata blob, so no pickle is involved and files are portable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping

import numpy as np

__all__ = ["save_arrays", "load_arrays"]

_META_KEY = "__meta_json__"


def save_arrays(path: "str | Path", arrays: Mapping[str, np.ndarray], meta: Dict[str, Any] | None = None) -> Path:
    """Write named arrays plus a JSON ``meta`` dict to ``path`` (.npz).

    Returns the resolved path (with ``.npz`` appended if missing, matching
    ``np.savez`` behaviour).
    """
    path = Path(path)
    payload = dict(arrays)
    if _META_KEY in payload:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload[_META_KEY] = np.frombuffer(json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_arrays(path: "str | Path") -> "tuple[dict, dict]":
    """Read back ``(arrays, meta)`` written by :func:`save_arrays`."""
    with np.load(Path(path)) as data:
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
        if _META_KEY in data.files:
            meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        else:
            meta = {}
    return arrays, meta
