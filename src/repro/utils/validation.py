"""Small argument-validation helpers.

Centralising these keeps error messages consistent ("<name> must be ...")
and keeps the numeric modules free of repetitive guard clauses.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape_3d",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    return check_in_range(name, value, 0.0, 1.0)


def check_shape_3d(name: str, shape: Sequence[int]) -> Tuple[int, int, int]:
    """Require a length-3 sequence of positive ints; return it as a tuple."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != 3:
        raise ValueError(f"{name} must have 3 dimensions, got {shape}")
    if any(s <= 0 for s in shape):
        raise ValueError(f"{name} dimensions must all be > 0, got {shape}")
    return shape
