"""The prefetcher interface.

A prefetcher sees what the pipeline sees at each view point — the camera
position, the blocks that turned out to be visible — and returns ranked
candidate block ids to pull toward fast memory during rendering.  It also
reports its per-query *compute* cost on the simulated clock, so strategies
with expensive prediction (frustum evaluation, table scans) are charged
fairly against cheap ones.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Prefetcher"]


class Prefetcher(abc.ABC):
    """Predicts the blocks the next view point will need."""

    name: str = "base"

    @abc.abstractmethod
    def predict(self, step: int, position: np.ndarray, visible_ids: np.ndarray) -> np.ndarray:
        """Ranked candidate block ids for the upcoming view(s).

        Called once per step *after* the demand fetch of ``visible_ids``.
        The returned ids may include currently-resident blocks; the driver
        skips those.
        """

    def query_cost_s(self) -> float:
        """Simulated seconds of prediction compute per step (default free)."""
        return 0.0

    def prime(self, positions: np.ndarray) -> None:
        """Offer the whole camera path up front (wall-clock batching hint).

        Strategies that resolve per-step queries against a spatial index
        may precompute them in one batch here; the per-step ``predict``
        results and simulated costs must not change.  Default: ignore.
        """

    def reset(self) -> None:
        """Forget accumulated history (between replays)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
