"""Concrete prefetch strategies."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional

import numpy as np

from repro.camera.frustum import visible_blocks
from repro.prefetch.base import Prefetcher
from repro.tables.importance_table import ImportanceTable
from repro.tables.visible_table import LookupCostModel, VisibleTable
from repro.utils.geometry import angle_between, normalize, rotation_matrix_axis_angle
from repro.volume.blocks import BlockGrid

__all__ = [
    "NoPrefetcher",
    "TableLookupPrefetcher",
    "MotionExtrapolationPrefetcher",
    "MarkovPrefetcher",
]

_EMPTY = np.empty(0, dtype=np.int64)


class NoPrefetcher(Prefetcher):
    """Caching only — the regime of the paper's FIFO/LRU baselines."""

    name = "none"

    def predict(self, step: int, position: np.ndarray, visible_ids: np.ndarray) -> np.ndarray:
        return _EMPTY


class TableLookupPrefetcher(Prefetcher):
    """The paper's strategy: nearest ``T_visible`` entry, σ-filtered.

    This is Algorithm 1 line 22 packaged as a strategy; the cost per query
    comes from the same :class:`LookupCostModel` the optimizer charges.
    """

    name = "table"

    def __init__(
        self,
        visible_table: VisibleTable,
        importance: Optional[ImportanceTable] = None,
        sigma: float = float("-inf"),
        lookup_cost: Optional[LookupCostModel] = None,
    ) -> None:
        self.visible_table = visible_table
        self.importance = importance
        self.sigma = float(sigma)
        self.lookup_cost = lookup_cost or LookupCostModel()
        self._primed_keys: Optional[np.ndarray] = None
        self._primed_positions: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._primed_keys = None
        self._primed_positions = None

    def prime(self, positions: np.ndarray) -> None:
        """Resolve the whole path's nearest keys in one KD-tree query.

        Per-point results are bit-identical to single queries, so
        ``predict`` is unchanged — it just reads the precomputed key when
        the queried position matches the primed path entry.
        """
        positions = np.asarray(positions, dtype=np.float64)
        self._primed_keys, _ = self.visible_table.nearest_entries(positions)
        self._primed_positions = positions

    def _nearest(self, step: int, position: np.ndarray) -> int:
        keys = self._primed_keys
        if (
            keys is not None
            and 0 <= step < len(keys)
            and np.array_equal(self._primed_positions[step], position)
        ):
            return int(keys[step])
        idx, _ = self.visible_table.nearest_entry(position)
        return idx

    def predict(self, step: int, position: np.ndarray, visible_ids: np.ndarray) -> np.ndarray:
        predicted = self.visible_table.entry(self._nearest(step, position))
        if self.importance is not None:
            return self.importance.filter_and_rank(predicted, self.sigma)
        return predicted

    def query_cost_s(self) -> float:
        return self.lookup_cost.query_time(self.visible_table.n_entries)


class MotionExtrapolationPrefetcher(Prefetcher):
    """Dead reckoning: repeat the camera's last rotation, evaluate Eq. 1.

    Predicts the next position by applying the previous step's rotation
    (about the axis perpendicular to both positions) once more, scaling the
    radius by the same ratio, then computes the frustum visibility of that
    extrapolated position directly.  No preprocessing table — but every
    step pays a full visibility evaluation, whose simulated cost scales
    with the block count.
    """

    name = "motion"

    def __init__(
        self,
        grid: BlockGrid,
        view_angle_deg: float,
        per_block_test_s: float = 30e-9,
    ) -> None:
        self.grid = grid
        self.view_angle_deg = float(view_angle_deg)
        self.per_block_test_s = float(per_block_test_s)
        self._prev: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._prev = None

    def _extrapolate(self, position: np.ndarray) -> Optional[np.ndarray]:
        if self._prev is None:
            return None
        prev, cur = self._prev, position
        d_prev = np.linalg.norm(prev)
        d_cur = np.linalg.norm(cur)
        if d_prev == 0.0 or d_cur == 0.0:
            return None
        u, v = prev / d_prev, cur / d_cur
        angle = float(angle_between(u, v))
        if angle < 1e-9:  # pure zoom or stationary: keep direction
            nxt_dir = v
        else:
            axis = np.cross(u, v)
            nxt_dir = rotation_matrix_axis_angle(axis, angle) @ v
            nxt_dir = normalize(nxt_dir)
        d_next = d_cur * (d_cur / d_prev)  # continue the zoom ratio
        return nxt_dir * d_next

    def predict(self, step: int, position: np.ndarray, visible_ids: np.ndarray) -> np.ndarray:
        position = np.asarray(position, dtype=np.float64)
        guess = self._extrapolate(position)
        self._prev = position
        if guess is None:
            return _EMPTY
        return visible_blocks(guess, self.grid, self.view_angle_deg)

    def query_cost_s(self) -> float:
        return self.per_block_test_s * self.grid.n_blocks


class MarkovPrefetcher(Prefetcher):
    """First-order successor prediction on block appearances.

    Application-agnostic history baseline: when block ``b`` is visible at
    step *i* and block ``b'`` *newly appears* at step *i+1*, credit the
    transition ``b -> b'``.  At prediction time, the successors of the
    currently visible blocks are ranked by accumulated credit.  Memory is
    bounded by keeping only the ``max_successors`` strongest successors per
    block.
    """

    name = "markov"

    def __init__(self, max_successors: int = 8, max_predictions: int = 256) -> None:
        if max_successors < 1:
            raise ValueError(f"max_successors must be >= 1, got {max_successors}")
        self.max_successors = int(max_successors)
        self.max_predictions = int(max_predictions)
        self._succ: Dict[int, Counter] = defaultdict(Counter)
        self._prev_visible: Optional[set] = None

    def reset(self) -> None:
        self._succ.clear()
        self._prev_visible = None

    def _learn(self, visible: set) -> None:
        if self._prev_visible is not None:
            new = visible - self._prev_visible
            if new:
                for b in self._prev_visible:
                    counter = self._succ[b]
                    counter.update(new)
                    if len(counter) > 4 * self.max_successors:
                        # Periodically shed the weak tail to bound memory.
                        kept = counter.most_common(self.max_successors)
                        counter.clear()
                        counter.update(dict(kept))
        self._prev_visible = visible

    def predict(self, step: int, position: np.ndarray, visible_ids: np.ndarray) -> np.ndarray:
        visible = set(int(b) for b in visible_ids)
        self._learn(visible)
        votes: Counter = Counter()
        for b in visible:
            counter = self._succ.get(b)
            if counter:
                for succ, weight in counter.most_common(self.max_successors):
                    votes[succ] += weight
        if not votes:
            return _EMPTY
        ranked = [b for b, _ in votes.most_common(self.max_predictions)]
        return np.asarray(ranked, dtype=np.int64)
