"""Prefetch strategies.

The paper's prefetcher is the ``T_visible`` lookup (Algorithm 1 line 22).
This package frames it as one of several interchangeable strategies so the
ablation benches can ask *how much of the win is the table* versus generic
prediction:

- :class:`NoPrefetcher` — caching only (the paper's FIFO/LRU regime);
- :class:`TableLookupPrefetcher` — the paper's method;
- :class:`MotionExtrapolationPrefetcher` — dead reckoning: extrapolate the
  camera and evaluate the frustum directly (no table, more compute);
- :class:`MarkovPrefetcher` — application-agnostic history-based
  prediction (first-order successor counting on block appearances).

:func:`repro.runtime.run_with_prefetcher` replays a camera path with
any strategy under the same accounting as the core pipeline (the
``repro.prefetch.driver`` path is a deprecation shim).
"""

from repro.prefetch.base import Prefetcher
from repro.prefetch.strategies import (
    NoPrefetcher,
    TableLookupPrefetcher,
    MotionExtrapolationPrefetcher,
    MarkovPrefetcher,
)
from repro.runtime.drivers import run_with_prefetcher

__all__ = [
    "Prefetcher",
    "NoPrefetcher",
    "TableLookupPrefetcher",
    "MotionExtrapolationPrefetcher",
    "MarkovPrefetcher",
    "run_with_prefetcher",
]
