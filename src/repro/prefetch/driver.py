"""Deprecated import path for the prefetch replay driver.

The driver moved to :func:`repro.runtime.run_with_prefetcher`, where it is
a :class:`~repro.runtime.engine.SimulationEngine` recipe (demand fetch →
render → strategy prefetch) instead of a hand-rolled loop.  This shim
delegates unchanged — results are pinned identical by the runtime
equivalence suite.  For the shared ``tracer``/``registry``/``profiler``
and ``engine="batched"|"scalar"`` semantics see the
:mod:`repro.runtime.engine` reference.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.metrics import RunResult
from repro.core.pipeline import PipelineContext
from repro.prefetch.base import Prefetcher
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable

__all__ = ["run_with_prefetcher"]


def run_with_prefetcher(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    prefetcher: Prefetcher,
    preload_importance: Optional[ImportanceTable] = None,
    preload_sigma: float = float("-inf"),
    max_prefetch_per_step: Optional[int] = None,
    name: Optional[str] = None,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
    ctx=None,
) -> RunResult:
    """Deprecated shim: use :func:`repro.runtime.run_with_prefetcher`."""
    warnings.warn(
        "repro.prefetch.driver.run_with_prefetcher is deprecated; "
        "use repro.runtime.run_with_prefetcher",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime.drivers import run_with_prefetcher as _impl

    return _impl(
        context,
        hierarchy,
        prefetcher,
        preload_importance=preload_importance,
        preload_sigma=preload_sigma,
        max_prefetch_per_step=max_prefetch_per_step,
        name=name,
        tracer=tracer,
        registry=registry,
        profiler=profiler,
        engine=engine,
        ctx=ctx,
    )
