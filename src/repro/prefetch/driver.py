"""Replay a camera path with any prefetch strategy.

Generalises the core pipeline: per step, demand-fetch the visible blocks
(Algorithm 1's protected eviction), render, and overlap the strategy's
prediction + prefetch with the render, charging the strategy's own query
cost.  The paper's optimizer is equivalent to this driver with
:class:`~repro.prefetch.strategies.TableLookupPrefetcher` plus the
importance preload.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.metrics import RunResult, StepMetrics
from repro.core.pipeline import PipelineContext, _resolve_engine
from repro.obs.profiler import resolve_profiler
from repro.prefetch.base import Prefetcher
from repro.storage.hierarchy import MemoryHierarchy
from repro.tables.importance_table import ImportanceTable

__all__ = ["run_with_prefetcher"]


def run_with_prefetcher(
    context: PipelineContext,
    hierarchy: MemoryHierarchy,
    prefetcher: Prefetcher,
    preload_importance: Optional[ImportanceTable] = None,
    preload_sigma: float = float("-inf"),
    max_prefetch_per_step: Optional[int] = None,
    name: Optional[str] = None,
    tracer=None,
    registry=None,
    profiler=None,
    engine: str = "batched",
) -> RunResult:
    """Replay ``context.path`` using ``prefetcher`` for predictions.

    ``preload_importance``/``preload_sigma`` optionally run the Step 2
    importance preload first (pass the table the paper's method uses, or
    ``None`` for a cold start).

    ``tracer`` is installed on the hierarchy for the replay and receives
    one ``render`` event per step.  ``registry`` is installed likewise and
    records per-step frame times, prefetch queue depth, and prefetch
    precision/recall counters (a prefetch at step *i* is *useful* when the
    block is demanded at step *i + 1*).  ``profiler`` records wall-clock
    preload/fetch/render/predict/prefetch spans.

    ``engine="batched"`` (default) drives demand fetches through
    :meth:`~repro.storage.hierarchy.MemoryHierarchy.fetch_many` and the
    prefetch loop through ``prefetch_many``; ``"scalar"`` keeps the
    per-block loops.  Results are identical either way.
    """
    prefetcher.reset()
    if tracer is not None:
        hierarchy.set_tracer(tracer)
    tracer = hierarchy.tracer
    if registry is not None:
        hierarchy.set_registry(registry)
    registry = hierarchy.registry
    profiler = resolve_profiler(profiler)
    frame_hist = registry.histogram("frame_time_seconds", kind="sim")
    queue_gauge = registry.gauge("prefetch_queue_depth")
    issued_counter = registry.counter("prefetch_evaluated_total")
    useful_counter = registry.counter("prefetch_useful_total")
    demanded_counter = registry.counter("prefetch_demand_window_total")
    batched = _resolve_engine(engine)
    issued_prev: "set[int]" = set()  # scalar engine
    issued_prev_arr = np.empty(0, dtype=np.int64)  # batched engine
    if preload_importance is not None:
        with profiler.span("preload"):
            hierarchy.preload(preload_importance.ids_above(preload_sigma))

    fastest = hierarchy.fastest
    cap = max_prefetch_per_step if max_prefetch_per_step is not None else fastest.capacity

    steps: List[StepMetrics] = []
    positions = context.path.positions
    faulty = hierarchy.fault_injector is not None
    dropped_blocks = 0
    degraded_frames = 0
    for i, ids in enumerate(context.visible_sets):
        if registry.enabled:
            # Prefetch usefulness: blocks prefetched at step i-1 that the
            # demand stream touches at step i were correct predictions.
            if batched:
                if issued_prev_arr.size:
                    issued_counter.inc(issued_prev_arr.size)
                    # Set membership beats np.isin at visible-set sizes.
                    demand_now = set(np.asarray(ids).tolist())
                    useful_counter.inc(
                        sum(1 for b in issued_prev_arr.tolist() if b in demand_now)
                    )
                issued_prev_arr = np.empty(0, dtype=np.int64)
            else:
                demand_now = {int(b) for b in ids}
                if issued_prev:
                    issued_counter.inc(len(issued_prev))
                    useful_counter.inc(len(issued_prev & demand_now))
                issued_prev = set()
            if i > 0:
                demanded_counter.inc(len(ids))

        fast_misses_before = fastest.stats.misses
        step_dropped = 0
        with profiler.span("fetch"):
            if batched:
                res = hierarchy.fetch_many(ids, i, min_free_step=i)
                io = res.time_s
                step_dropped = res.n_dropped
            else:
                io = 0.0
                for b in ids:
                    r = hierarchy.fetch(int(b), i, min_free_step=i)
                    io += r.time_s
                    if r.dropped:
                        step_dropped += 1
        n_fast_misses = fastest.stats.misses - fast_misses_before
        if step_dropped:
            dropped_blocks += step_dropped
            degraded_frames += 1

        with profiler.span("render"):
            # Dropped blocks are holes this frame: render what arrived.
            render = context.render_model.render_time(len(ids) - step_dropped)
        if tracer.enabled:
            tracer.record("render", i, time_s=render)

        with profiler.span("predict"):
            candidates = prefetcher.predict(i, positions[i], ids)
        lookup_time = prefetcher.query_cost_s()
        if registry.enabled:
            queue_gauge.set(len(candidates))
        with profiler.span("prefetch"):
            if batched:
                # dedupe=True: a predictor may repeat ids; fetch each at most once
                issued, prefetch_time = hierarchy.prefetch_many(
                    candidates, i, min_free_step=i, max_fetch=cap, dedupe=True
                )
                n_prefetched = len(issued)
                if registry.enabled:
                    issued_prev_arr = np.asarray(issued, dtype=np.int64)
            else:
                prefetch_time = 0.0
                n_prefetched = 0
                attempted = set()  # a predictor may repeat ids; fetch each at most once
                for b in candidates:
                    if n_prefetched >= cap:
                        break
                    b = int(b)
                    if b in attempted or hierarchy.contains_fast(b):
                        continue
                    attempted.add(b)
                    prefetch_time += hierarchy.fetch(
                        b, i, prefetch=True, min_free_step=i
                    ).time_s
                    n_prefetched += 1
                    if registry.enabled:
                        issued_prev.add(b)

        step_metrics = StepMetrics(
            step=i,
            n_visible=len(ids),
            n_fast_misses=n_fast_misses,
            io_time_s=io,
            lookup_time_s=lookup_time,
            prefetch_time_s=prefetch_time,
            render_time_s=render,
            n_prefetched=n_prefetched,
        )
        if registry.enabled:
            frame_hist.observe(step_metrics.step_total_overlapped_s)
        steps.append(step_metrics)

    if profiler.enabled:
        profiler.charge_sim("io", sum(s.io_time_s for s in steps))
        profiler.charge_sim("lookup", sum(s.lookup_time_s for s in steps))
        profiler.charge_sim("prefetch", sum(s.prefetch_time_s for s in steps))
        profiler.charge_sim("render", sum(s.render_time_s for s in steps))
    extras = {
        "backing_bytes": float(hierarchy.backing_bytes),
        "bytes_moved": float(
            hierarchy.backing_bytes + hierarchy.stats().total_bytes_read
        ),
    }
    if faulty:
        # Gated on the injector so fault-free summaries stay byte-identical.
        extras["dropped_blocks"] = float(dropped_blocks)
        extras["degraded_frames"] = float(degraded_frames)
        extras["fault_stats"] = hierarchy.fault_injector.stats.as_dict()
    return RunResult(
        name=name or f"prefetch-{prefetcher.name}",
        policy=f"prefetch-{prefetcher.name}",
        overlap_prefetch=True,
        steps=steps,
        hierarchy_stats=hierarchy.stats(),
        extras=extras,
    )
