"""Replacement-policy interface.

A policy is pure bookkeeping: the :class:`repro.storage.cache.CacheLevel`
owns residency and statistics, and notifies the policy of hits, inserts and
evictions.  When the cache is full it asks :meth:`choose_victim`, passing an
*evictability predicate* — this is how Algorithm 1's constraint that a
victim's last-used time must be ``< i`` (i.e. not touched at the current
view point) is enforced uniformly across all policies.

Batch hooks (:meth:`on_hit_many` / :meth:`on_insert_many`) let the batched
replay engine notify a whole array of keys in one call; the defaults loop
over the scalar hooks *in array order*, so a policy that only implements
the scalar interface sees exactly the per-key call sequence the scalar
engine would have produced.  Policies that can rank victims from dense
per-key state (LRU) additionally set ``supports_masked_victim`` and
implement :meth:`choose_victim_masked`, which receives a boolean
evictability mask indexed by key instead of a predicate.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

EvictablePredicate = Callable[[int], bool]

__all__ = ["ReplacementPolicy", "EvictablePredicate", "always_evictable"]


def always_evictable(key: int) -> bool:
    """Default predicate: every resident block may be evicted."""
    return True


class ReplacementPolicy(abc.ABC):
    """Base class for replacement policies over integer block ids.

    Contract (enforced by the cache, relied on by subclasses):

    - ``on_insert(key)`` is only called for keys not currently tracked;
    - ``on_hit(key)`` only for tracked keys;
    - ``on_evict(key)`` exactly once per eviction, with a tracked key;
    - ``choose_victim`` must return a tracked key satisfying the predicate,
      or ``None`` when no tracked key satisfies it (the cache then bypasses
      the insert rather than thrash the working set).
    """

    name: str = "base"

    def set_capacity(self, capacity: int) -> None:
        """Hook for policies that need to know the cache size (ARC)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all tracked keys and adaptive state."""

    @abc.abstractmethod
    def on_hit(self, key: int, step: int) -> None:
        """A resident ``key`` was accessed at logical time ``step``."""

    @abc.abstractmethod
    def on_insert(self, key: int, step: int) -> None:
        """``key`` became resident at logical time ``step``."""

    @abc.abstractmethod
    def on_evict(self, key: int) -> None:
        """``key`` was removed from the cache."""

    @abc.abstractmethod
    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        """Pick a victim among tracked keys, or ``None`` if none qualifies."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of tracked (resident) keys — used by invariant checks."""

    # -- batch hooks (compatibility defaults loop over the scalar hooks) ------

    #: True when :meth:`choose_victim_masked` ranks victims directly from a
    #: dense evictability mask (no per-key predicate calls).
    supports_masked_victim: bool = False

    def on_hit_many(self, keys: "np.ndarray", step: int) -> None:
        """Batch form of :meth:`on_hit`; keys accessed in array order."""
        for k in keys:
            self.on_hit(int(k), step)

    def on_insert_many(self, keys: "np.ndarray", step: int) -> None:
        """Batch form of :meth:`on_insert`; keys inserted in array order."""
        for k in keys:
            self.on_insert(int(k), step)

    def on_evict_many(self, keys: "np.ndarray") -> None:
        """Batch form of :meth:`on_evict`; keys evicted in array order."""
        for k in keys:
            self.on_evict(int(k))

    def choose_victim_masked(self, evictable_mask: "np.ndarray") -> Optional[int]:
        """Pick a victim given a dense boolean evictability mask.

        ``evictable_mask[k]`` is True when resident key ``k`` may be
        evicted.  The default delegates to :meth:`choose_victim` with a
        predicate view of the mask; array-native policies override it.
        """
        n = len(evictable_mask)

        def _pred(key: int) -> bool:
            return key < n and bool(evictable_mask[key])

        return self.choose_victim(_pred)

    #: True when :meth:`victim_order` can enumerate the full eviction order
    #: up-front from a mask — i.e. victim choice has no side effects and
    #: depends only on per-key state that accesses *between* evictions can
    #: invalidate but never reorder (LRU).  Lets the cache amortise victim
    #: selection over a whole step (see ``CacheLevel._pop_victim``).
    supports_victim_order: bool = False

    def victim_order(self, evictable_mask: "np.ndarray") -> "np.ndarray":
        """Candidate keys in eviction order (``supports_victim_order`` only)."""
        raise NotImplementedError

    def victim_order_token(self) -> int:
        """Opaque marker for *when* :meth:`victim_order` was computed.

        Used by the unconstrained (``min_free_step=None``) eviction queue:
        an entry is still the true next victim iff
        :meth:`victim_still_ordered` holds for the token captured at
        order-build time (``supports_victim_order`` only).
        """
        raise NotImplementedError

    def victim_still_ordered(self, key: int, token: int) -> bool:
        """Has ``key`` kept its rank since ``token`` was captured?"""
        raise NotImplementedError

    def victim_still_ordered_many(self, keys: "np.ndarray", token: int) -> "np.ndarray":
        """Vectorized :meth:`victim_still_ordered` over a key array."""
        return np.array(
            [self.victim_still_ordered(int(k), token) for k in keys], dtype=bool
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(tracked={len(self)})"
