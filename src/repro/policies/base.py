"""Replacement-policy interface.

A policy is pure bookkeeping: the :class:`repro.storage.cache.CacheLevel`
owns residency and statistics, and notifies the policy of hits, inserts and
evictions.  When the cache is full it asks :meth:`choose_victim`, passing an
*evictability predicate* — this is how Algorithm 1's constraint that a
victim's last-used time must be ``< i`` (i.e. not touched at the current
view point) is enforced uniformly across all policies.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

EvictablePredicate = Callable[[int], bool]

__all__ = ["ReplacementPolicy", "EvictablePredicate", "always_evictable"]


def always_evictable(key: int) -> bool:
    """Default predicate: every resident block may be evicted."""
    return True


class ReplacementPolicy(abc.ABC):
    """Base class for replacement policies over integer block ids.

    Contract (enforced by the cache, relied on by subclasses):

    - ``on_insert(key)`` is only called for keys not currently tracked;
    - ``on_hit(key)`` only for tracked keys;
    - ``on_evict(key)`` exactly once per eviction, with a tracked key;
    - ``choose_victim`` must return a tracked key satisfying the predicate,
      or ``None`` when no tracked key satisfies it (the cache then bypasses
      the insert rather than thrash the working set).
    """

    name: str = "base"

    def set_capacity(self, capacity: int) -> None:
        """Hook for policies that need to know the cache size (ARC)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all tracked keys and adaptive state."""

    @abc.abstractmethod
    def on_hit(self, key: int, step: int) -> None:
        """A resident ``key`` was accessed at logical time ``step``."""

    @abc.abstractmethod
    def on_insert(self, key: int, step: int) -> None:
        """``key`` became resident at logical time ``step``."""

    @abc.abstractmethod
    def on_evict(self, key: int) -> None:
        """``key`` was removed from the cache."""

    @abc.abstractmethod
    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        """Pick a victim among tracked keys, or ``None`` if none qualifies."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of tracked (resident) keys — used by invariant checks."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(tracked={len(self)})"
