"""Most-Recently-Used replacement.

Not in the paper's comparison, but a useful adversarial baseline: for
looping access patterns MRU can beat LRU, and the ablation benches use it
to show that the app-aware gains are not an artefact of one baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["MRUPolicy"]


class MRUPolicy(ReplacementPolicy):
    """Evict the most recently used evictable key."""

    name = "mru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def reset(self) -> None:
        self._order.clear()

    def on_hit(self, key: int, step: int) -> None:
        self._order.move_to_end(key)

    def on_insert(self, key: int, step: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key} already tracked")
        self._order[key] = None

    def on_evict(self, key: int) -> None:
        del self._order[key]

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        for key in reversed(self._order):
            if evictable(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)
