"""Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

Cited in the paper's related work (§II) as a strong generic policy; we
include it so the benches can show the app-aware policy also beats an
*adaptive* recency/frequency baseline, not just FIFO/LRU.

This is the standard ARC algorithm adapted to this library's cache/policy
split: the cache owns residency, so ARC's REPLACE step is realised through
``choose_victim`` (pick from T1 or T2 per the adaptation target ``p``) and
``on_evict`` (move the evicted key into the matching ghost list).  Ghost
hits adjust ``p`` inside ``on_insert`` exactly as in the original CASES
II/III; ghost-list trimming follows CASE IV.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["ARCPolicy"]


class ARCPolicy(ReplacementPolicy):
    name = "arc"

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._c = capacity
        self._p = 0.0  # adaptation target for |T1|
        self._t1: "OrderedDict[int, None]" = OrderedDict()  # recency (seen once)
        self._t2: "OrderedDict[int, None]" = OrderedDict()  # frequency (seen 2+)
        self._b1: "OrderedDict[int, None]" = OrderedDict()  # ghosts of T1
        self._b2: "OrderedDict[int, None]" = OrderedDict()  # ghosts of T2

    # -- lifecycle -------------------------------------------------------------

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._c = capacity

    def reset(self) -> None:
        self._p = 0.0
        for lst in (self._t1, self._t2, self._b1, self._b2):
            lst.clear()

    def _require_capacity(self) -> int:
        if self._c is None:
            raise RuntimeError("ARCPolicy needs set_capacity() before use")
        return self._c

    # -- policy events -----------------------------------------------------------

    def on_hit(self, key: int, step: int) -> None:
        # CASE I: hit in T1 or T2 -> MRU of T2.
        if key in self._t1:
            del self._t1[key]
        elif key in self._t2:
            del self._t2[key]
        else:
            raise KeyError(f"hit on untracked key {key}")
        self._t2[key] = None

    def on_insert(self, key: int, step: int) -> None:
        c = self._require_capacity()
        if key in self._t1 or key in self._t2:
            raise KeyError(f"key {key} already tracked")
        if key in self._b1:
            # CASE II: ghost hit in B1 -> grow p, promote to T2.
            delta = max(len(self._b2) / max(len(self._b1), 1), 1.0)
            self._p = min(float(c), self._p + delta)
            del self._b1[key]
            self._t2[key] = None
            return
        if key in self._b2:
            # CASE III: ghost hit in B2 -> shrink p, promote to T2.
            delta = max(len(self._b1) / max(len(self._b2), 1), 1.0)
            self._p = max(0.0, self._p - delta)
            del self._b2[key]
            self._t2[key] = None
            return
        # CASE IV: completely new key -> trim ghost lists, insert into T1.
        l1 = len(self._t1) + len(self._b1)
        if l1 >= c:
            if self._b1:
                self._b1.popitem(last=False)
            # (If B1 is empty the resident eviction is the cache's job.)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= 2 * c and self._b2:
                self._b2.popitem(last=False)
        self._t1[key] = None

    def on_evict(self, key: int) -> None:
        # REPLACE epilogue: evicted residents become ghosts (LRU->MRU order).
        if key in self._t1:
            del self._t1[key]
            self._b1[key] = None
        elif key in self._t2:
            del self._t2[key]
            self._b2[key] = None
        else:
            raise KeyError(f"evict of untracked key {key}")

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        self._require_capacity()
        prefer_t1 = len(self._t1) >= max(1.0, self._p)
        lists = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for lst in lists:
            for key in lst:  # LRU end first
                if evictable(key):
                    return key
        return None

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    # -- diagnostics ---------------------------------------------------------

    @property
    def p(self) -> float:
        """Current adaptation target for the size of T1."""
        return self._p

    def list_sizes(self) -> "dict[str, int]":
        """Sizes of T1/T2/B1/B2 (testing/diagnostics)."""
        return {
            "t1": len(self._t1),
            "t2": len(self._t2),
            "b1": len(self._b1),
            "b2": len(self._b2),
        }
