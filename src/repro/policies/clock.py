"""CLOCK (second-chance) replacement (extension baseline).

An LRU approximation: resident keys sit on a ring with a reference bit;
the hand sweeps, clearing set bits and evicting the first clear-bit key
that is evictable.  Protected keys are skipped without touching their bit,
so the sweep is bounded by two full revolutions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["ClockPolicy"]


class ClockPolicy(ReplacementPolicy):
    name = "clock"

    def __init__(self) -> None:
        self._ring: List[int] = []
        self._pos_of: Dict[int, int] = {}
        self._ref: Dict[int, bool] = {}
        self._hand = 0

    def reset(self) -> None:
        self._ring.clear()
        self._pos_of.clear()
        self._ref.clear()
        self._hand = 0

    def on_hit(self, key: int, step: int) -> None:
        self._ref[key] = True

    def on_insert(self, key: int, step: int) -> None:
        if key in self._pos_of:
            raise KeyError(f"key {key} already tracked")
        self._pos_of[key] = len(self._ring)
        self._ring.append(key)
        self._ref[key] = True

    def on_evict(self, key: int) -> None:
        # Swap-remove from the ring to keep eviction O(1).
        pos = self._pos_of.pop(key)
        last = self._ring.pop()
        if last != key:
            self._ring[pos] = last
            self._pos_of[last] = pos
        del self._ref[key]
        if self._ring and self._hand >= len(self._ring):
            self._hand = 0

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        n = len(self._ring)
        if n == 0:
            return None
        # Two revolutions suffice: the first may clear every ref bit, the
        # second must then find an evictable clear-bit key if one exists.
        for _ in range(2 * n):
            key = self._ring[self._hand]
            if not evictable(key):
                self._hand = (self._hand + 1) % n
                continue
            if self._ref[key]:
                self._ref[key] = False
                self._hand = (self._hand + 1) % n
                continue
            return key
        return None

    def __len__(self) -> int:
        return len(self._ring)
