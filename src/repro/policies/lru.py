"""Least-Recently-Used replacement (paper baseline, §V).

Array-native: recency is a dense ``int64`` sequence array indexed by block
id (``-1`` = not tracked), bumped from a monotone clock on every insert and
hit.  The least-recent tracked key is the argmin of the sequence values —
no per-access ``OrderedDict`` churn, and the batched replay engine can
refresh a whole hit array with one fancy-indexed assignment
(:meth:`on_hit_many`) and pick victims via a masked argmin
(:meth:`choose_victim_masked`).

Recency order is identical to the classic ``OrderedDict`` formulation:
``move_to_end`` ⇔ assigning the next clock tick, and scanning from the
front ⇔ ascending sequence order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["LRUPolicy"]

_NOT_TRACKED = -1


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over a dense per-key sequence array (min = least recent).

    ``choose_victim`` visits keys in ascending recency and returns the first
    evictable one; :meth:`choose_victim_masked` computes the same answer as
    a single masked argmin, which is how the batched engine calls it.
    """

    name = "lru"
    supports_masked_victim = True
    supports_victim_order = True

    def __init__(self) -> None:
        self._seq = np.full(64, _NOT_TRACKED, dtype=np.int64)
        self._clock = 0  # next sequence number to hand out (monotone)
        self._n = 0

    def _ensure(self, key: int) -> None:
        if key >= len(self._seq):
            grown = np.full(max(len(self._seq) * 2, key + 1), _NOT_TRACKED, dtype=np.int64)
            grown[: len(self._seq)] = self._seq
            self._seq = grown

    def reset(self) -> None:
        self._seq.fill(_NOT_TRACKED)
        self._clock = 0
        self._n = 0

    def on_hit(self, key: int, step: int) -> None:
        if key >= len(self._seq) or self._seq[key] == _NOT_TRACKED:
            raise KeyError(key)
        self._seq[key] = self._clock
        self._clock += 1

    def on_insert(self, key: int, step: int) -> None:
        self._ensure(key)
        if self._seq[key] != _NOT_TRACKED:
            raise KeyError(f"key {key} already tracked")
        self._seq[key] = self._clock
        self._clock += 1
        self._n += 1

    def on_evict(self, key: int) -> None:
        if key >= len(self._seq) or self._seq[key] == _NOT_TRACKED:
            raise KeyError(key)
        self._seq[key] = _NOT_TRACKED
        self._n -= 1

    def on_hit_many(self, keys: np.ndarray, step: int) -> None:
        n = len(keys)
        if n == 0:
            return
        self._seq[keys] = np.arange(self._clock, self._clock + n, dtype=np.int64)
        self._clock += n

    def on_insert_many(self, keys: np.ndarray, step: int) -> None:
        n = len(keys)
        if n == 0:
            return
        try:
            tracked = self._seq[keys] != _NOT_TRACKED
        except IndexError:
            self._ensure(int(keys.max()))
            tracked = self._seq[keys] != _NOT_TRACKED
        if tracked.any():
            raise KeyError("on_insert_many: key already tracked")
        self._seq[keys] = np.arange(self._clock, self._clock + n, dtype=np.int64)
        self._clock += n
        self._n += n

    def on_evict_many(self, keys: np.ndarray) -> None:
        n = len(keys)
        if n == 0:
            return
        if (self._seq[keys] == _NOT_TRACKED).any():
            raise KeyError("on_evict_many: key not tracked")
        self._seq[keys] = _NOT_TRACKED
        self._n -= n

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        tracked = np.flatnonzero(self._seq != _NOT_TRACKED)
        if tracked.size == 0:
            return None
        for key in tracked[np.argsort(self._seq[tracked], kind="stable")]:
            k = int(key)
            if evictable(k):
                return k
        return None

    def choose_victim_masked(self, evictable_mask: np.ndarray) -> Optional[int]:
        # Tracked keys are always covered by both arrays (the cache ensures
        # its arrays before admitting), so trimming to the shorter is safe.
        n = min(len(evictable_mask), len(self._seq))
        cand = np.flatnonzero(evictable_mask[:n] & (self._seq[:n] != _NOT_TRACKED))
        if cand.size == 0:
            return None
        return int(cand[np.argmin(self._seq[cand])])

    def victim_order(self, evictable_mask: np.ndarray) -> np.ndarray:
        """All current candidates, least-recent first (one sort, no argmins).

        Victim choice has no side effects in LRU, and later accesses can
        only *remove* keys from candidacy (a touch makes the key most
        recent; an insert is never an immediate candidate) — never reorder
        the survivors — so the cache may walk this once-sorted queue
        instead of recomputing :meth:`choose_victim_masked` per eviction.
        """
        n = min(len(evictable_mask), len(self._seq))
        cand = np.flatnonzero(evictable_mask[:n] & (self._seq[:n] != _NOT_TRACKED))
        return cand[np.argsort(self._seq[cand], kind="stable")]

    def victim_order_token(self) -> int:
        """Clock value delimiting the order: entries all have ``seq < clock``."""
        return self._clock

    def victim_still_ordered(self, key: int, token: int) -> bool:
        """True while ``key`` has not been touched/re-inserted since ``token``.

        Every access after the token bumps the key's seq to ``>= token``,
        i.e. *more recent than every queue entry* — so the first entry that
        passes this check is the global least-recent key, exactly what
        :meth:`choose_victim_masked` over the live state would return.
        """
        seq = self._seq[key]
        return seq != _NOT_TRACKED and seq < token

    def victim_still_ordered_many(self, keys: np.ndarray, token: int) -> np.ndarray:
        seq = self._seq[keys]
        return (seq != _NOT_TRACKED) & (seq < token)

    def __len__(self) -> int:
        return self._n

    def recency_order(self) -> "list[int]":
        """Keys from least to most recently used (testing/diagnostics)."""
        tracked = np.flatnonzero(self._seq != _NOT_TRACKED)
        return [int(k) for k in tracked[np.argsort(self._seq[tracked], kind="stable")]]
