"""Least-Recently-Used replacement (paper baseline, §V)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an :class:`OrderedDict` (front = least recent).

    ``choose_victim`` scans from the LRU end and returns the first evictable
    key; protected keys (e.g. blocks used at the current view point) are
    usually at the MRU end, so the scan terminates almost immediately in the
    pipeline's access pattern.
    """

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def reset(self) -> None:
        self._order.clear()

    def on_hit(self, key: int, step: int) -> None:
        self._order.move_to_end(key)

    def on_insert(self, key: int, step: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key} already tracked")
        self._order[key] = None

    def on_evict(self, key: int) -> None:
        del self._order[key]

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        for key in self._order:
            if evictable(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def recency_order(self) -> "list[int]":
        """Keys from least to most recently used (testing/diagnostics)."""
        return list(self._order)
