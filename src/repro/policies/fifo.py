"""First-In-First-Out replacement (paper baseline, §V)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["FIFOPolicy"]


class FIFOPolicy(ReplacementPolicy):
    """Evict in insertion order; hits do not refresh a block's position."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def reset(self) -> None:
        self._order.clear()

    def on_hit(self, key: int, step: int) -> None:
        # FIFO ignores recency by definition.
        pass

    def on_insert(self, key: int, step: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key} already tracked")
        self._order[key] = None

    def on_evict(self, key: int) -> None:
        del self._order[key]

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        for key in self._order:
            if evictable(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._order)

    def insertion_order(self) -> "list[int]":
        """Keys from oldest to newest insertion (testing/diagnostics)."""
        return list(self._order)
