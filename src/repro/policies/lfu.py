"""Least-Frequently-Used replacement (extension baseline).

Implemented with a lazy min-heap of ``(count, tiebreak, key)`` entries:
stale entries (superseded counts, evicted keys) are discarded on pop, and
entries that are valid but currently protected are pushed back after the
scan.  Ties break by least-recent insertion/access order.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["LFUPolicy"]


class LFUPolicy(ReplacementPolicy):
    name = "lfu"

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._heap: List[Tuple[int, int, int]] = []
        self._seq = 0

    def reset(self) -> None:
        self._counts.clear()
        self._heap.clear()
        self._seq = 0

    def _push(self, key: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._counts[key], self._seq, key))

    def on_hit(self, key: int, step: int) -> None:
        self._counts[key] += 1
        self._push(key)

    def on_insert(self, key: int, step: int) -> None:
        if key in self._counts:
            raise KeyError(f"key {key} already tracked")
        self._counts[key] = 1
        self._push(key)

    def on_evict(self, key: int) -> None:
        # Heap entries for this key become stale and are skipped lazily.
        del self._counts[key]

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        skipped: List[Tuple[int, int, int]] = []
        victim: Optional[int] = None
        while self._heap:
            count, seq, key = heapq.heappop(self._heap)
            current = self._counts.get(key)
            if current is None or current != count:
                continue  # stale entry (evicted, or count has grown)
            if evictable(key):
                victim = key
                skipped.append((count, seq, key))  # keep entry until on_evict
                break
            skipped.append((count, seq, key))
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return victim

    def __len__(self) -> int:
        return len(self._counts)

    def frequency(self, key: int) -> int:
        """Access count of a tracked key (testing/diagnostics)."""
        return self._counts[key]
