"""Name-based policy construction for experiment configs and the CLI."""

from __future__ import annotations

from typing import Callable, Dict

from repro.policies.arc import ARCPolicy
from repro.policies.base import ReplacementPolicy
from repro.policies.clock import ClockPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.random_policy import RandomPolicy

__all__ = ["make_policy", "POLICY_NAMES", "register_policy"]

_FACTORIES: Dict[str, Callable[[], ReplacementPolicy]] = {
    "fifo": FIFOPolicy,
    "lru": LRUPolicy,
    "mru": MRUPolicy,
    "lfu": LFUPolicy,
    "clock": ClockPolicy,
    "random": RandomPolicy,
    "arc": ARCPolicy,
    # "belady" is intentionally absent: it needs a trace argument, see
    # repro.policies.belady.BeladyPolicy.
}

POLICY_NAMES = tuple(sorted(_FACTORIES))


def register_policy(name: str, factory: Callable[[], ReplacementPolicy]) -> None:
    """Register a custom policy factory under ``name`` (overwrites rejected)."""
    if name in _FACTORIES:
        raise ValueError(f"policy {name!r} already registered")
    _FACTORIES[name] = factory


def make_policy(name: str) -> ReplacementPolicy:
    """A fresh policy instance by name (``'lru'``, ``'fifo'``, ``'arc'``, ...)."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {list(POLICY_NAMES)}") from None
    return factory()
