"""Uniform-random replacement (control baseline for the ablation benches)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable
from repro.utils.rng import SeedLike, resolve_rng

__all__ = ["RandomPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random evictable key.

    Keys live in a list with a position index for O(1) insert/remove;
    victim selection rejection-samples, falling back to a full scan in
    random order when the evictable fraction is tiny.
    """

    name = "random"

    def __init__(self, seed: SeedLike = 0) -> None:
        self._rng = resolve_rng(seed)
        self._keys: List[int] = []
        self._pos_of: Dict[int, int] = {}

    def reset(self) -> None:
        self._keys.clear()
        self._pos_of.clear()

    def on_hit(self, key: int, step: int) -> None:
        pass

    def on_insert(self, key: int, step: int) -> None:
        if key in self._pos_of:
            raise KeyError(f"key {key} already tracked")
        self._pos_of[key] = len(self._keys)
        self._keys.append(key)

    def on_evict(self, key: int) -> None:
        pos = self._pos_of.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[pos] = last
            self._pos_of[last] = pos

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        n = len(self._keys)
        if n == 0:
            return None
        for _ in range(8):  # cheap attempts before the exhaustive fallback
            key = self._keys[int(self._rng.integers(n))]
            if evictable(key):
                return key
        order = self._rng.permutation(n)
        for i in order:
            key = self._keys[int(i)]
            if evictable(key):
                return key
        return None

    def __len__(self) -> int:
        return len(self._keys)
