"""Cache replacement policies.

``FIFO`` and ``LRU`` are the paper's baselines (§V).  ``ARC`` (Megiddo &
Modha, cited in §II) and offline ``Belady-OPT`` (Belady 1966, cited in §II)
are included as a stronger online baseline and an optimality bound for the
ablation benches.  The application-aware policy itself lives in
:mod:`repro.core` — it composes camera prediction and importance with the
constrained-LRU eviction these classes provide.
"""

from repro.policies.base import ReplacementPolicy, EvictablePredicate
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.clock import ClockPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.arc import ARCPolicy
from repro.policies.belady import BeladyPolicy
from repro.policies.registry import make_policy, POLICY_NAMES

__all__ = [
    "ReplacementPolicy",
    "EvictablePredicate",
    "FIFOPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "RandomPolicy",
    "ARCPolicy",
    "BeladyPolicy",
    "make_policy",
    "POLICY_NAMES",
]
