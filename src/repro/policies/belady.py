"""Belady's offline optimal replacement (MIN).

Cited in the paper's related work (§II); we use it as the unbeatable lower
bound on miss rate in the ablation benches.  It requires the *future*: the
demand trace of a pipeline run is policy-independent (visible sets depend
only on the camera path), so the trace can be collected once with
:func:`repro.core.pipeline.collect_demand_trace` and fed to this policy.

The victim is the resident key whose next use lies farthest in the future
(never-used-again keys first).  Next-use positions are precomputed per
trace position; candidate selection uses a lazy max-heap.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.policies.base import EvictablePredicate, ReplacementPolicy, always_evictable

__all__ = ["BeladyPolicy"]

_NEVER = float("inf")


class BeladyPolicy(ReplacementPolicy):
    """Offline MIN over a fixed access ``trace`` (int array or sequence).

    Every ``on_hit``/``on_insert`` must correspond, in order, to the next
    element of the trace; a mismatch raises, catching desynchronised
    experiments early instead of silently producing a non-optimal victim.
    """

    name = "belady"

    def __init__(self, trace: Union[np.ndarray, Sequence[int]]) -> None:
        arr = np.ascontiguousarray(trace, dtype=np.int64)
        self._trace: List[int] = arr.tolist()
        self._next_use: List[float] = self._compute_next_use(arr)
        self._pos = 0
        self._resident_next: Dict[int, float] = {}
        self._heap: List[tuple] = []  # (-next_use, key), lazy

    @staticmethod
    def _compute_next_use(trace: Union[np.ndarray, Sequence[int]]) -> List[float]:
        """``next_use[t]`` = position of the next occurrence of trace[t] after t.

        Vectorized: a stable sort groups equal keys while keeping their
        trace positions ascending, so each position's successor within its
        group is its next use (``inf`` at group ends).
        """
        trace = np.ascontiguousarray(trace, dtype=np.int64)
        n = trace.size
        next_use = np.full(n, _NEVER)
        if n > 1:
            idx = np.argsort(trace, kind="stable")
            sorted_keys = trace[idx]
            same = sorted_keys[:-1] == sorted_keys[1:]
            next_use[idx[:-1][same]] = idx[1:][same]
        return next_use.tolist()

    def reset(self) -> None:
        self._pos = 0
        self._resident_next.clear()
        self._heap.clear()

    def _advance(self, key: int) -> None:
        if self._pos >= len(self._trace):
            raise RuntimeError("access beyond end of Belady trace")
        expected = self._trace[self._pos]
        if key != expected:
            raise RuntimeError(
                f"Belady trace desync at position {self._pos}: expected key {expected}, got {key}"
            )
        nxt = self._next_use[self._pos]
        self._pos += 1
        self._resident_next[key] = nxt
        heapq.heappush(self._heap, (-nxt, key))

    def on_hit(self, key: int, step: int) -> None:
        if key not in self._resident_next:
            raise KeyError(f"hit on untracked key {key}")
        self._advance(key)

    def on_insert(self, key: int, step: int) -> None:
        if key in self._resident_next:
            raise KeyError(f"key {key} already tracked")
        self._advance(key)

    def on_evict(self, key: int) -> None:
        del self._resident_next[key]

    def choose_victim(self, evictable: EvictablePredicate = always_evictable) -> Optional[int]:
        skipped: List[tuple] = []
        victim: Optional[int] = None
        while self._heap:
            neg_next, key = heapq.heappop(self._heap)
            current = self._resident_next.get(key)
            if current is None or -neg_next != current:
                continue  # stale: evicted or next-use updated by a later access
            if evictable(key):
                victim = key
                skipped.append((neg_next, key))  # keep until on_evict removes it
                break
            skipped.append((neg_next, key))
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return victim

    def __len__(self) -> int:
        return len(self._resident_next)

    @property
    def position(self) -> int:
        """How many trace accesses have been consumed (testing/diagnostics)."""
        return self._pos
