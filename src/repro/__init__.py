"""repro — application-aware data replacement for interactive scientific visualization.

A from-scratch reproduction of *"An Application-Aware Data Replacement
Policy for Interactive Large-Scale Scientific Visualization"* (Yu, Yu,
Jiang, Wang; IPDPS workshops 2017): volume blocking, a simulated
DRAM/SSD/HDD hierarchy with pluggable replacement policies, camera-path
visibility prediction (``T_visible``), entropy-based block importance
(``T_important``), the application-aware optimizer (Algorithm 1), and an
experiment harness regenerating every table and figure of the paper's
evaluation.

Quickstart::

    from repro import ExperimentSetup, random_path, compare_policies

    setup = ExperimentSetup.for_dataset("3d_ball", target_n_blocks=512)
    path = random_path(n_positions=50, degree_change=(5, 10), distance=3.0,
                       view_angle_deg=setup.view_angle_deg)
    results = compare_policies(setup, path)
    print({k: r.total_miss_rate for k, r in results.items()})
"""

from repro.volume import (
    Volume,
    BlockGrid,
    make_dataset,
    DATASETS,
    dataset_table,
    InMemoryBlockStore,
    FileBlockStore,
)
from repro.storage import (
    StorageDevice,
    DRAM,
    SSD,
    HDD,
    CacheLevel,
    MemoryHierarchy,
    make_standard_hierarchy,
)
from repro.policies import (
    ReplacementPolicy,
    FIFOPolicy,
    LRUPolicy,
    ARCPolicy,
    BeladyPolicy,
    make_policy,
    POLICY_NAMES,
)
from repro.camera import (
    Camera,
    CameraPath,
    spherical_path,
    random_path,
    zoom_path,
    visible_blocks,
    visible_mask,
    SamplingConfig,
    optimal_radius,
)
from repro.importance import block_entropies, compute_importance
from repro.tables import (
    VisibleTable,
    ImportanceTable,
    LookupCostModel,
    build_visible_table,
    build_importance_table,
    build_tables,
)
from repro.render import (
    TransferFunction,
    RenderCostModel,
    Raycaster,
    RenderSettings,
    visible_histogram,
    visible_correlation_matrix,
    visible_statistics,
    BlockRangeIndex,
    RangeQuery,
    evaluate_query,
)
from repro.core import (
    AppAwareOptimizer,
    OptimizerConfig,
    PipelineContext,
    run_baseline,
    compute_visible_sets,
    collect_demand_trace,
    RunResult,
    StepMetrics,
    run_temporal,
    run_budgeted,
    render_quality_series,
    BudgetedResult,
    OutOfCoreSession,
)
from repro.prefetch import (
    Prefetcher,
    NoPrefetcher,
    TableLookupPrefetcher,
    MotionExtrapolationPrefetcher,
    MarkovPrefetcher,
    run_with_prefetcher,
)
from repro.experiments import (
    ExperimentSetup,
    compare_policies,
    fresh_hierarchy,
    belady_hierarchy,
)
from repro.trace import (
    TraceEvent,
    Tracer,
    NullTracer,
    NULL_TRACER,
    TraceSummary,
    aggregate,
    write_jsonl,
    read_jsonl,
    write_chrome_trace,
)
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    PhaseProfiler,
    NullProfiler,
    NULL_PROFILER,
)

__version__ = "1.1.0"

__all__ = [
    # volume
    "Volume",
    "BlockGrid",
    "make_dataset",
    "DATASETS",
    "dataset_table",
    "InMemoryBlockStore",
    "FileBlockStore",
    # storage
    "StorageDevice",
    "DRAM",
    "SSD",
    "HDD",
    "CacheLevel",
    "MemoryHierarchy",
    "make_standard_hierarchy",
    # policies
    "ReplacementPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "ARCPolicy",
    "BeladyPolicy",
    "make_policy",
    "POLICY_NAMES",
    # camera
    "Camera",
    "CameraPath",
    "spherical_path",
    "random_path",
    "zoom_path",
    "visible_blocks",
    "visible_mask",
    "SamplingConfig",
    "optimal_radius",
    # importance & tables
    "block_entropies",
    "compute_importance",
    "VisibleTable",
    "ImportanceTable",
    "LookupCostModel",
    "build_visible_table",
    "build_importance_table",
    "build_tables",
    # render
    "TransferFunction",
    "RenderCostModel",
    "Raycaster",
    "RenderSettings",
    "visible_histogram",
    "visible_correlation_matrix",
    "visible_statistics",
    "BlockRangeIndex",
    "RangeQuery",
    "evaluate_query",
    # core
    "AppAwareOptimizer",
    "OptimizerConfig",
    "PipelineContext",
    "run_baseline",
    "compute_visible_sets",
    "collect_demand_trace",
    "RunResult",
    "StepMetrics",
    "run_temporal",
    "run_budgeted",
    "render_quality_series",
    "BudgetedResult",
    "OutOfCoreSession",
    # prefetch
    "Prefetcher",
    "NoPrefetcher",
    "TableLookupPrefetcher",
    "MotionExtrapolationPrefetcher",
    "MarkovPrefetcher",
    "run_with_prefetcher",
    # experiments
    "ExperimentSetup",
    "compare_policies",
    "fresh_hierarchy",
    "belady_hierarchy",
    # trace
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSummary",
    "aggregate",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    # obs
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "__version__",
]
