"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands mirror a real out-of-core visualization workflow:

- ``info``       — datasets, policies, version;
- ``preprocess`` — build and save ``T_visible`` / ``T_important`` (Steps 1-2);
- ``replay``     — replay a camera path under several policies, print the
  comparison (optionally reusing saved tables);
- ``render``     — ray-cast one frame of a dataset to a PPM file;
- ``trace``      — replay one policy with the event tracer on, write a
  Chrome-trace JSON (and optionally JSONL) plus a per-step summary table;
  ``--from-jsonl`` re-reports on a previously written JSONL instead;
- ``analyze``    — eviction forensics + per-frame latency attribution:
  consumes a ``BENCH_``/``SERVE_`` snapshot or a JSONL trace (or runs the
  quick suite in-process) and writes a self-contained HTML report, plus a
  Prometheus text dump with ``--prom``; exits non-zero when any section
  fails the exact ledger reconciliation;
- ``bench``      — run the pinned regression suite and write a
  schema-versioned ``BENCH_<label>.json``, or compare two such snapshots
  (``--compare old.json new.json``, non-zero exit on regression);
- ``serve-sim``  — simulate N concurrent viewer sessions over one shared
  hierarchy (tenant quotas, fairness, per-tenant tail latencies) and
  write ``SERVE_<label>.json``, or compare two such snapshots;
- ``matrix``     — the declarative experiment-matrix runner:
  ``matrix run`` expands a TOML/JSON spec (bundled name or path) into
  cells and writes ``MATRIX_<label>.json``; ``matrix report`` renders a
  matrix document as a self-contained HTML report; ``matrix compare``
  gates two matrix documents on their simulated metrics.

Experiment regeneration lives under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.camera.sampling import SamplingConfig
from repro.experiments.report import format_run_summaries
from repro.cluster.shardmap import SHARD_STRATEGIES
from repro.experiments.runner import ExperimentSetup, compare_policies
from repro.faults import FAULT_PROFILES
from repro.policies.registry import POLICY_NAMES
from repro.runtime.config import REPLAY_ENGINES, WORKLOAD_NAMES, RunConfig
from repro.runtime.registries import WORKLOADS, make_workload
from repro.volume.datasets import DATASETS, dataset_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Application-aware data replacement for interactive scientific visualization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="datasets, policies, version")

    pre = sub.add_parser("preprocess", help="build and save T_visible / T_important")
    _add_dataset_args(pre)
    pre.add_argument("--out", type=Path, default=Path("tables"), help="output directory")
    pre.add_argument("--directions", type=int, default=256, help="sampled view directions")
    pre.add_argument("--distances", type=int, default=2, help="sampled distance shells")

    rep = sub.add_parser("replay", help="compare policies on a camera path")
    _add_dataset_args(rep)
    _add_path_args(rep)
    rep.add_argument("--cache-ratio", type=float, default=0.5)
    rep.add_argument("--policies", nargs="+", default=["fifo", "lru"],
                     choices=list(POLICY_NAMES))
    rep.add_argument("--belady", action="store_true", help="include the offline bound")
    rep.add_argument("--no-app-aware", action="store_true")
    rep.add_argument("--engine", choices=REPLAY_ENGINES, default="batched",
                     help="replay engine: vectorized fast path (default) or the "
                          "per-block scalar compatibility path")
    rep.add_argument("--shards", type=_positive_int, default=1,
                     help="simulated cluster nodes (1 = single box; >1 shards the "
                          "block grid and charges peer fetches on network links)")
    rep.add_argument("--shard-map", choices=list(SHARD_STRATEGIES), default="slab",
                     help="block-ownership strategy for --shards > 1")
    rep.add_argument("--record", type=Path, default=None, metavar="PATH",
                     help="also write the camera path as a JSONL trace, "
                          "replayable with --path-type recorded --trace-file")
    _add_fault_args(rep)

    tra = sub.add_parser(
        "trace",
        help="replay one policy with event tracing; write a Chrome trace + summary",
    )
    _add_dataset_args(tra)
    _add_path_args(tra)
    tra.add_argument("--cache-ratio", type=float, default=0.5)
    tra.add_argument("--policy", default="app-aware",
                     choices=["app-aware"] + list(POLICY_NAMES))
    tra.add_argument("--out", type=Path, default=Path("trace.json"),
                     help="Chrome-trace JSON output (chrome://tracing / Perfetto)")
    tra.add_argument("--jsonl", type=Path, default=None,
                     help="also write raw events as JSON lines")
    tra.add_argument("--capacity", type=_positive_int, default=1_000_000,
                     help="tracer ring-buffer capacity (events)")
    tra.add_argument("--from-jsonl", type=Path, default=None, metavar="PATH",
                     help="skip the replay: load events from a JSONL trace "
                          "written earlier (with --jsonl) and report on those")

    ana = sub.add_parser(
        "analyze",
        help="forensics + latency-attribution report (HTML, optional Prometheus "
             "dump) from a bench/serve snapshot or a JSONL trace",
    )
    ana.add_argument("source", nargs="?", default=None,
                     help="BENCH_/SERVE_ snapshot (.json) or trace events "
                          "(.jsonl); omitted: run the quick pinned suite "
                          "in-process and analyze it")
    ana.add_argument("--out", type=Path, default=Path("report.html"),
                     help="self-contained HTML report path (default report.html)")
    ana.add_argument("--prom", type=Path, default=None, metavar="PATH",
                     help="also write a Prometheus text-exposition dump "
                          "(registry metrics + attribution/forensics series)")
    ana.add_argument("--title", default=None, help="report title override")

    ben = sub.add_parser(
        "bench",
        help="run the pinned regression suite (BENCH_<label>.json) or compare snapshots",
    )
    ben.add_argument("--tier", choices=("default", "fullscale", "cluster"), default="default",
                     help="default: the pinned simulated-clock suite; fullscale: "
                          "paper-scale geometry with wall-clock/RSS metrics "
                          "(ratcheting raw-speed tier)")
    ben.add_argument("--quick", action="store_true",
                     help="CI-smoke variant: same suite shape, a fraction of the work")
    ben.add_argument("--label", default="local",
                     help="snapshot label: writes BENCH_<label>.json")
    ben.add_argument("--out", type=Path, default=Path("."),
                     help="directory the snapshot is written into (default: cwd)")
    ben.add_argument("--workers", type=_positive_int, default=1,
                     help="worker processes for the suite cells (default 1: serial)")
    ben.add_argument("--engine", choices=REPLAY_ENGINES, default="batched",
                     help="replay engine: vectorized fast path (default) or the "
                          "per-block scalar compatibility path")
    ben.add_argument("--profile", type=Path, default=None, metavar="PATH",
                     help="also re-run one pinned cell with a span timeline and "
                          "write a Chrome-trace JSON there")
    _add_fault_args(ben)
    ben.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                     help="compare two snapshots instead of running the suite")
    ben.add_argument("--threshold", type=float, default=0.10,
                     help="relative regression threshold for --compare (default 0.10)")
    ben.add_argument("--warn-only", action="store_true",
                     help="report regressions but exit 0 (PR-gate mode)")
    ben.add_argument("--verbose", action="store_true",
                     help="show unchanged metrics in the comparison table")

    srv = sub.add_parser(
        "serve-sim",
        help="simulate N concurrent viewer sessions over a shared hierarchy "
             "(SERVE_<label>.json) or compare snapshots",
    )
    srv.add_argument("--sessions", type=_positive_int, default=8,
                     help="number of concurrent viewer sessions (default 8)")
    srv.add_argument("--session-steps", type=_positive_int, default=24,
                     help="camera positions per session (default 24)")
    srv.add_argument("--mix", type=float, nargs=3, default=(0.5, 0.25, 0.25),
                     metavar=("ORBIT", "ZOOM", "FLYTHROUGH"),
                     help="workload mix weights (default 0.5 0.25 0.25)")
    srv.add_argument("--arrival-rate", type=float, default=2.0,
                     help="mean session arrivals per simulated second "
                          "(exponential inter-arrivals; <= 0: all at t=0)")
    srv.add_argument("--serve-blocks", type=_positive_int, default=256,
                     help="target block count of the shared dataset (default 256)")
    srv.add_argument("--serve-scale", type=float, default=0.08,
                     help="per-axis shrink of the paper resolution (default 0.08)")
    srv.add_argument("--cache-ratio", type=float, default=0.5)
    srv.add_argument("--policy", choices=list(POLICY_NAMES), default="lru")
    srv.add_argument("--partition", choices=("equal", "none"), default="equal",
                     help="tenant cache partition: equal per-tenant quotas "
                          "(default) or none (free-for-all sharing)")
    srv.add_argument("--serve-seed", type=int, default=0,
                     help="seed of the whole scenario (mix, arrivals, paths)")
    srv.add_argument("--label", default="local",
                     help="snapshot label: writes SERVE_<label>.json")
    srv.add_argument("--out", type=Path, default=Path("."),
                     help="directory the snapshot is written into (default: cwd)")
    srv.add_argument("--engine", choices=REPLAY_ENGINES, default="batched")
    srv.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                     help="compare two snapshots instead of running the scenario")
    srv.add_argument("--threshold", type=float, default=0.25,
                     help="relative regression threshold for --compare (default 0.25)")
    srv.add_argument("--warn-only", action="store_true",
                     help="report regressions but exit 0 (PR-gate mode)")
    srv.add_argument("--verbose", action="store_true",
                     help="show unchanged metrics in the comparison table")

    mat = sub.add_parser(
        "matrix",
        help="declarative experiment-matrix runner: run a spec, render its "
             "HTML report, or compare two matrix documents",
    )
    mat_sub = mat.add_subparsers(dest="matrix_command", required=True)
    mrun = mat_sub.add_parser(
        "run", help="expand and run a matrix spec; write MATRIX_<label>.json"
    )
    mrun.add_argument("spec",
                      help="bundled spec name (e.g. 'smoke') or a .toml/.json path")
    mrun.add_argument("--workers", type=_positive_int, default=1,
                      help="worker processes for the matrix cells (default 1: serial)")
    mrun.add_argument("--out", type=Path, default=Path("."),
                      help="directory the document is written into (default: cwd)")
    mrun.add_argument("--label", default=None,
                      help="override the spec's label (names the output file)")
    mrun.add_argument("--report", type=Path, default=None, metavar="PATH",
                      help="also write the self-contained HTML report there")
    mrep = mat_sub.add_parser(
        "report", help="render a MATRIX_<label>.json as a self-contained HTML report"
    )
    mrep.add_argument("doc", help="MATRIX_<label>.json path")
    mrep.add_argument("--out", type=Path, default=Path("matrix_report.html"),
                      help="HTML output path (default matrix_report.html)")
    mrep.add_argument("--title", default=None, help="report title override")
    mcmp = mat_sub.add_parser(
        "compare", help="compare two matrix documents on their simulated metrics"
    )
    mcmp.add_argument("old", help="baseline MATRIX_<label>.json")
    mcmp.add_argument("new", help="candidate MATRIX_<label>.json")
    mcmp.add_argument("--threshold", type=float, default=0.10,
                      help="relative regression threshold (default 0.10)")
    mcmp.add_argument("--warn-only", action="store_true",
                      help="report regressions but exit 0 (PR-gate mode)")
    mcmp.add_argument("--verbose", action="store_true",
                      help="show unchanged metrics in the comparison table")

    ren = sub.add_parser("render", help="ray-cast one frame to a PPM image")
    _add_dataset_args(ren)
    ren.add_argument("--out", type=Path, default=Path("frame.ppm"))
    ren.add_argument("--camera", type=float, nargs=3, default=(2.5, 0.0, 0.0),
                     metavar=("X", "Y", "Z"))
    ren.add_argument("--view-angle", type=float, default=30.0)
    ren.add_argument("--size", type=int, default=160, help="image width=height")
    ren.add_argument("--tf", choices=("grayscale", "fire", "coolwarm"), default="fire")
    return parser


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_dataset_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=sorted(DATASETS), default="3d_ball")
    p.add_argument("--blocks", type=int, default=512, help="target block count")
    p.add_argument("--scale", type=float, default=None,
                   help="per-axis shrink of the paper resolution (default per dataset)")
    p.add_argument("--seed", type=int, default=0)


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", choices=list(FAULT_PROFILES), default="none",
                   help="inject seeded storage faults from a named profile "
                        "(default: none — fault-free fast path)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the deterministic fault draws (default 0)")


def _add_path_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--path-type", choices=WORKLOAD_NAMES, default="random")
    p.add_argument("--steps", type=int, default=120, help="camera positions on the path")
    p.add_argument("--degrees", type=float, nargs=2, default=(5.0, 10.0),
                   metavar=("LO", "HI"), help="per-step direction change range")
    p.add_argument("--distance", type=float, default=2.5)
    p.add_argument("--trace-file", type=Path, default=None, metavar="PATH",
                   help="camera-trace JSONL replayed by --path-type recorded")


def _make_path(args, setup: ExperimentSetup):
    kwargs = {}
    if getattr(args, "trace_file", None) is not None:
        kwargs["trace_file"] = str(args.trace_file)
    return WORKLOADS.create(
        args.path_type,
        steps=args.steps,
        degrees=tuple(args.degrees),
        distance=args.distance,
        view_angle_deg=setup.view_angle_deg,
        seed=args.seed,
        **kwargs,
    )


def _make_setup(args, sampling: Optional[SamplingConfig] = None) -> ExperimentSetup:
    return ExperimentSetup.for_dataset(
        args.dataset,
        target_n_blocks=args.blocks,
        scale=args.scale,
        sampling=sampling or SamplingConfig(),
        seed=args.seed,
    )


def _cmd_info(args) -> int:
    from repro import __version__

    print(f"repro {__version__}")
    print()
    print(dataset_table())
    print()
    print(f"policies: {', '.join(POLICY_NAMES)} (+ belady with a trace, + app-aware)")
    return 0


def _cmd_preprocess(args) -> int:
    sampling = SamplingConfig(n_directions=args.directions, n_distances=args.distances)
    setup = _make_setup(args, sampling)
    args.out.mkdir(parents=True, exist_ok=True)
    vpath = setup.visible_table.save(args.out / f"{args.dataset}_t_visible.npz")
    ipath = setup.importance_table.save(args.out / f"{args.dataset}_t_important.npz")
    print(f"T_visible:   {vpath}  ({setup.visible_table.n_entries} entries, "
          f"mean set size {setup.visible_table.entry_sizes().mean():.1f})")
    print(f"T_important: {ipath}  ({setup.importance_table.n_blocks} blocks)")
    return 0


def _cmd_replay(args) -> int:
    try:
        config = RunConfig.from_cli(args, command="replay")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    setup = _make_setup(args)
    path = make_workload(config, setup.view_angle_deg)
    if args.record is not None:
        from repro.camera.recorded import write_camera_trace

        write_camera_trace(path, args.record)
        print(f"camera trace: {args.record} ({len(path)} positions)")
    results = compare_policies(
        setup,
        path,
        baselines=config.policies,
        include_belady=config.belady,
        include_app_aware=config.app_aware,
        cache_ratio=config.cache_ratio,
        faults=config.faults,
        fault_seed=config.fault_seed,
        engine=config.engine,
        shards=config.shards,
        shard_map=config.shard_map,
    )
    title = (f"{config.dataset} ({setup.grid.n_blocks} blocks), {path.name}, "
             f"{config.steps} steps, cache ratio {config.cache_ratio}")
    if config.shards > 1:
        title += f", {config.shards} shards ({config.shard_map})"
    if config.faults != "none":
        title += f", faults {config.faults} (seed {config.fault_seed})"
    print(format_run_summaries(results, title=title))
    if config.faults != "none":
        for res in results.values():
            dropped = int(res.extras.get("dropped_blocks", 0))
            degraded = int(res.extras.get("degraded_frames", 0))
            stats = res.extras.get("fault_stats", {})
            print(f"{res.name}: {stats.get('errors', 0)} injected errors, "
                  f"{stats.get('retries', 0)} retries, "
                  f"{stats.get('breaker_opens', 0)} breaker opens, "
                  f"{dropped} dropped blocks over {degraded} degraded frames")
    return 0


def _cmd_trace(args) -> int:
    from repro.runtime.drivers import run_baseline
    from repro.experiments.report import format_trace_report
    from repro.trace import Tracer, aggregate, read_jsonl, write_chrome_trace, write_jsonl

    if args.from_jsonl is not None:
        try:
            events = read_jsonl(args.from_jsonl)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = aggregate(events)
        print(format_trace_report(summary, title=f"trace {args.from_jsonl}"))
        out = write_chrome_trace(events, args.out)
        print(f"chrome trace: {out} ({len(events)} events; open in chrome://tracing "
              f"or https://ui.perfetto.dev)")
        return 0

    setup = _make_setup(args)
    path = _make_path(args, setup)
    context = setup.context(path)
    tracer = Tracer(capacity=args.capacity)
    if args.policy == "app-aware":
        result = setup.optimizer().run(
            context, setup.hierarchy("lru", args.cache_ratio), tracer=tracer
        )
    else:
        result = run_baseline(
            context, setup.hierarchy(args.policy, args.cache_ratio), tracer=tracer
        )

    events = tracer.events()
    summary = aggregate(events)
    title = (f"{args.dataset} ({setup.grid.n_blocks} blocks), {path.name}, "
             f"{args.steps} steps, policy {args.policy}")
    print(format_trace_report(summary, result, title=title))
    drops = tracer.drop_stats()
    print(f"tracer: {drops['n_recorded']} events recorded, "
          f"{drops['n_retained']} retained, {drops['n_dropped']} dropped "
          f"(capacity {drops['capacity']})")
    if tracer.n_dropped:
        print(f"warning: ring buffer dropped {tracer.n_dropped} events — "
              f"per-step aggregates above are skewed toward the end of the run "
              f"(raise --capacity for an exact ledger)")
    out = write_chrome_trace(events, args.out)
    print(f"chrome trace: {out} ({len(events)} events; open in chrome://tracing "
          f"or https://ui.perfetto.dev)")
    if args.jsonl is not None:
        print(f"jsonl: {write_jsonl(events, args.jsonl)}")
    return 0


def _attribution_sections(doc):
    """Yield ``(label, attribution_doc)`` from any analyzable document."""
    mt = {}
    if "runs" in doc:
        for key, run in doc["runs"].items():
            attr = run.get("attribution")
            if attr:
                yield key, attr
        mt = doc.get("multi_tenant") or {}
    elif "multi_tenant" in doc:
        mt = doc["multi_tenant"]
    elif "demand_components" in doc:
        yield "run", doc
    tenants = (mt.get("attribution") or {}).get("tenants") or {}
    for tenant, attr in sorted(tenants.items()):
        yield f"tenant:{tenant}", attr


def _analysis_prom_snapshot(doc) -> dict:
    """Registry metrics + synthetic attribution/forensics series for --prom."""
    from repro.obs.prometheus import labeled_key, merge_snapshots, relabel_snapshot

    counters, gauges = {}, {}

    def counter(name, labels, value):
        counters[labeled_key(name, labels)] = {"value": float(value)}

    def gauge(name, labels, value):
        gauges[labeled_key(name, labels)] = {"value": float(value)}

    snaps = []
    if "runs" in doc:
        for key, run in doc["runs"].items():
            metrics = run.get("metrics")
            if metrics:
                snaps.append(relabel_snapshot(metrics, {"run": key}))
    for label, attr in _attribution_sections(doc):
        sec = {"section": label}
        for comp, v in (attr.get("demand_components") or {}).items():
            counter("attribution_component_seconds",
                    {**sec, "channel": "demand", "component": comp}, v)
        for comp, v in (attr.get("prefetch_components") or {}).items():
            counter("attribution_component_seconds",
                    {**sec, "channel": "prefetch", "component": comp}, v)
        for kind, v in (attr.get("totals") or {}).items():
            counter("attribution_time_seconds",
                    {**sec, "kind": kind.removesuffix("_s")}, v)
        counter("attribution_re_miss_total", sec, attr.get("n_re_miss", 0))
        counter("attribution_degraded_total", sec, attr.get("n_degraded", 0))
        counter("attribution_degraded_extra_seconds", sec,
                attr.get("degraded_extra_s", 0.0))
        if attr.get("reconciled") is not None:
            gauge("attribution_reconciled", sec, 1 if attr["reconciled"] else 0)
        gauge("attribution_exact", sec, 1 if attr.get("exact", True) else 0)
        gauge("attribution_incomplete", sec, 1 if attr.get("incomplete") else 0)
        forensics = attr.get("forensics")
        if forensics:
            counter("eviction_lineage_evictions_total", sec,
                    forensics.get("n_evictions", 0))
            counter("eviction_lineage_re_misses_total", sec,
                    forensics.get("n_re_misses", 0))
            counter("eviction_lineage_premature_total", sec,
                    forensics.get("n_premature", 0))
        regret = attr.get("regret")
        if regret:
            rl = {**sec, "policy": str(regret.get("policy", ""))}
            gauge("cache_regret_misses", rl, regret.get("regret", 0))
            gauge("cache_actual_fast_misses", rl, regret.get("actual_fast_misses", 0))
            gauge("cache_belady_misses", rl, regret.get("belady_misses", 0))
    snaps.append({"counters": counters, "gauges": gauges})
    return merge_snapshots(*snaps)


def _cmd_analyze(args) -> int:
    import json

    from repro.obs.report import write_report

    source = args.source
    if source is None:
        from repro.obs.bench import run_bench

        print("no source given: running the quick pinned suite in-process")
        doc = run_bench(label="analyze", quick=True, progress=print)
        title = args.title or "repro analyze — quick suite"
    elif str(source).endswith(".jsonl"):
        from repro.obs.attribution import attribute_run
        from repro.trace import read_jsonl

        try:
            events = read_jsonl(source)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        doc = attribute_run(events).as_dict(include_frames=True)
        title = args.title or f"repro analyze — trace {source}"
    else:
        try:
            doc = json.loads(Path(source).read_text())
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not isinstance(doc, dict):
            print(f"error: {source}: not a JSON object", file=sys.stderr)
            return 2
        title = args.title or f"repro analyze — {source}"

    path = write_report(doc, args.out, title=title)
    sections = list(_attribution_sections(doc))
    print(f"wrote {path} ({len(sections)} attribution section(s))")
    failed = []
    for label, attr in sections:
        rec = attr.get("reconciled")
        line = (f"  {label}: reconciled={rec} exact={attr.get('exact', True)} "
                f"incomplete={attr.get('incomplete', False)}")
        regret = attr.get("regret")
        if regret:
            line += f" regret={regret.get('regret')}"
        print(line)
        if rec is False:
            failed.append(label)
    if args.prom is not None:
        from repro.obs.prometheus import write_prometheus

        print(f"prometheus: {write_prometheus(_analysis_prom_snapshot(doc), args.prom)}")
    if failed:
        print(f"error: {len(failed)} section(s) failed ledger reconciliation: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import (
        compare_bench,
        format_comparison,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            old, new = load_bench(old_path), load_bench(new_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: {exc}")
            return 2
        rows = compare_bench(old, new, threshold=args.threshold)
        print(f"comparing {old_path} ({old['label']}) -> {new_path} ({new['label']}), "
              f"threshold {args.threshold:.0%}")
        print(format_comparison(rows, verbose=args.verbose))
        n_regressions = sum(1 for r in rows if r["status"] == "regression")
        if n_regressions and args.warn_only:
            print(f"warn-only: {n_regressions} regression(s) ignored")
            return 0
        return 1 if n_regressions else 0

    try:
        config = RunConfig.from_cli(args, command="bench")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.tier == "cluster":
        from repro.obs.bench_cluster import run_cluster

        if config.faults != "none":
            print("error: --faults is not supported on the cluster tier "
                  "(the scenario pins its own link-partition fault profile)",
                  file=sys.stderr)
            return 2
        doc = run_cluster(
            label=args.label,
            quick=args.quick,
            progress=print,
            engine=config.engine,
        )
        path = write_bench(doc, args.out)
        cl = doc["cluster"]
        print(f"wrote {path} ({len(doc['runs'])} runs, tier cluster, "
              f"{cl['n_nodes']} nodes, map {cl['shard_map']['strategy']}, "
              f"schema v{doc['schema_version']})")
        print(f"locality {cl['shard_map']['locality_score']:.3f}; "
              f"local {cl['split_bytes']['local'] / 1e6:.2f} MB, "
              f"peer {cl['split_bytes']['peer'] / 1e6:.2f} MB over "
              f"{cl['peer_transfers']} transfers, "
              f"cold fallback {cl['split_bytes']['cold'] / 1e6:.2f} MB "
              f"({cl['link_fallbacks']} severed-link fallbacks)")
        assert cl["ledger_reconciles"], "per-link ledger failed to reconcile"
        return 0
    if args.tier == "fullscale":
        from repro.obs.bench_fullscale import run_fullscale

        if config.faults != "none":
            print("error: --faults is not supported on the fullscale tier "
                  "(wall-clock numbers would measure the injector)", file=sys.stderr)
            return 2
        doc = run_fullscale(
            label=args.label,
            quick=args.quick,
            progress=print,
            workers=args.workers,
            engine=config.engine,
            profile_path=args.profile,
        )
        path = write_bench(doc, args.out)
        fs = doc["fullscale"]
        print(f"wrote {path} ({len(doc['runs'])} runs, tier fullscale, "
              f"kernel {fs['kernel']}, {fs['n_blocks']} blocks, "
              f"schema v{doc['schema_version']})")
        print(f"table build {fs['table_build_wall_s']:.2f}s wall "
              f"({fs['n_samples']} samples, mean set {fs['mean_set_size']:.1f}); "
              f"importance {fs['importance_wall_s']:.2f}s; "
              f"peak RSS {fs['peak_rss_bytes'] / 2**30:.2f} GiB; "
              f"suite {doc['suite_wall_s']:.2f}s wall")
        for key, run in sorted(doc["runs"].items()):
            print(f"  {key}: {run['wall_s']:.2f}s wall "
                  f"({run['per_step_wall_s'] * 1e3:.2f} ms/step)")
        if "profile" in doc:
            print(f"profile: {doc['profile']['path']} (cell {doc['profile']['cell']})")
        return 0
    doc = run_bench(
        label=args.label,
        quick=args.quick,
        progress=print,
        workers=args.workers,
        engine=config.engine,
        profile_path=args.profile,
        faults=config.faults,
        fault_seed=config.fault_seed,
    )
    path = write_bench(doc, args.out)
    n_runs = len(doc["runs"])
    dropped = sum(r["trace"]["n_dropped"] for r in doc["runs"].values())
    print(f"wrote {path} ({n_runs} runs, engine {doc['engine']}, "
          f"{doc['workers']} worker(s), schema v{doc['schema_version']}, "
          f"{dropped} trace events dropped, suite {doc['suite_wall_s']:.2f}s wall)")
    if args.faults != "none":
        for key, run in sorted(doc["runs"].items()):
            fs = run["faults"]["stats"]
            print(f"faults[{key}]: {fs['errors']} errors, {fs['retries']} retries, "
                  f"{fs['timeouts']} timeouts, {fs['dropped_blocks']} dropped blocks")
    if "profile" in doc:
        print(f"profile: {doc['profile']['path']} (cell {doc['profile']['cell']})")
    return 0


def _cmd_serve_sim(args) -> int:
    from repro.experiments.loadgen import (
        LoadGenConfig,
        compare_serve,
        format_serve_comparison,
        load_serve,
        run_load,
        write_serve,
    )

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            old, new = load_serve(old_path), load_serve(new_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: {exc}")
            return 2
        rows = compare_serve(old, new, threshold=args.threshold)
        print(f"comparing {old_path} -> {new_path}, threshold {args.threshold:.0%}")
        print(format_serve_comparison(rows, verbose=args.verbose))
        n_regressions = sum(1 for r in rows if r["status"] == "regressed")
        if n_regressions and args.warn_only:
            print(f"warn-only: {n_regressions} regression(s) ignored")
            return 0
        return 1 if n_regressions else 0

    try:
        config = LoadGenConfig(
            n_sessions=args.sessions,
            mix=tuple(args.mix),
            arrival_rate_hz=args.arrival_rate,
            steps=args.session_steps,
            blocks=args.serve_blocks,
            scale=args.serve_scale,
            cache_ratio=args.cache_ratio,
            policy=args.policy,
            partition=args.partition,
            seed=args.serve_seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    doc = run_load(config, engine=args.engine, attribution=True)
    path = write_serve(doc, args.label, args.out)
    mt = doc["multi_tenant"]
    frames = mt["frame_times"]
    print(f"wrote {path} ({mt['n_sessions']} sessions, partition {args.partition}, "
          f"schema v{doc['schema_version']}, makespan {mt['makespan_s']:.3f}s sim)")
    print(f"fairness (Jain, hit rate): {frames['fairness_jain']:.4f}; "
          f"pooled frame time p99 {frames['pooled']['p99'] * 1e3:.2f} ms; "
          f"cross-tenant evictions: {mt['cross_evictions']}")
    for tenant in sorted(frames["per_tenant"]):
        s = frames["per_tenant"][tenant]
        print(f"  {tenant}: p50 {s['p50'] * 1e3:7.2f} ms  p95 {s['p95'] * 1e3:7.2f} ms  "
              f"p99 {s['p99'] * 1e3:7.2f} ms  ({s['count']} frames, "
              f"{doc['workloads'].get(tenant, '?')})")
    return 0


def _cmd_matrix(args) -> int:
    import dataclasses

    from repro.experiments.matrix import (
        compare_matrix,
        format_matrix_comparison,
        load_matrix,
        load_spec,
        run_matrix,
        write_matrix,
    )

    if args.matrix_command == "compare":
        try:
            old, new = load_matrix(args.old), load_matrix(args.new)
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: {exc}")
            return 2
        rows = compare_matrix(old, new, threshold=args.threshold)
        print(f"comparing {args.old} ({old['label']}) -> {args.new} "
              f"({new['label']}), threshold {args.threshold:.0%}")
        print(format_matrix_comparison(rows, verbose=args.verbose))
        n_regressions = sum(1 for r in rows if r["status"] == "regression")
        if n_regressions and args.warn_only:
            print(f"warn-only: {n_regressions} regression(s) ignored")
            return 0
        return 1 if n_regressions else 0

    if args.matrix_command == "report":
        import json

        from repro.experiments.matrix_report import write_matrix_report

        try:
            doc = load_matrix(args.doc)
        except (ValueError, OSError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        path = write_matrix_report(doc, args.out, title=args.title)
        print(f"wrote {path} ({doc['n_cells']} cells, label {doc['label']})")
        return 0

    try:
        spec = load_spec(args.spec)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.label is not None:
        spec = dataclasses.replace(spec, label=args.label)
    doc = run_matrix(spec, workers=args.workers, progress=print)
    path = write_matrix(doc, args.out)
    print(f"wrote {path} ({doc['n_cells']} cells, runner {doc['runner']}, "
          f"{doc['workers']} worker(s), schema v{doc['schema_version']}, "
          f"suite {doc['suite_wall_s']:.2f}s wall)")
    if args.report is not None:
        from repro.experiments.matrix_report import write_matrix_report

        print(f"report: {write_matrix_report(doc, args.report)}")
    return 0


def _cmd_render(args) -> int:
    from repro.camera.model import Camera
    from repro.render.raycast import Raycaster, RenderSettings
    from repro.render.transfer_function import TransferFunction

    setup = _make_setup(args)
    tf = {
        "grayscale": TransferFunction.grayscale_ramp,
        "fire": TransferFunction.fire,
        "coolwarm": TransferFunction.cool_warm,
    }[args.tf]()
    rc = Raycaster(
        setup.volume, tf,
        RenderSettings(width=args.size, height=args.size, n_samples=args.size),
    )
    cam = Camera(tuple(args.camera), args.view_angle)
    image = rc.render(cam)
    Raycaster.to_ppm(image, str(args.out))
    print(f"wrote {args.out} ({args.size}x{args.size}, camera d={cam.distance:.2f})")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "preprocess": _cmd_preprocess,
    "replay": _cmd_replay,
    "trace": _cmd_trace,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
    "serve-sim": _cmd_serve_sim,
    "matrix": _cmd_matrix,
    "render": _cmd_render,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
